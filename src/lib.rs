//! # anycast — distributed admission control for anycast flows with QoS
//!
//! A from-scratch Rust reproduction of *Distributed Admission Control for
//! Anycast Flows with QoS Requirements* (Dong Xuan & Weijia Jia,
//! ICDCS 2001): the DAC procedure with its three destination-selection
//! algorithms (ED, WD/D+H, WD/D+B), the SP and GDI baselines, an
//! RSVP-style reservation substrate, a deterministic discrete-event
//! simulator, and the Appendix-A analytical model (reduced-load fixed
//! point with Erlang-B / UAA link blocking).
//!
//! This crate is a facade: it re-exports the workspace member crates under
//! stable module names and provides a [`prelude`] for examples and quick
//! experiments.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`net`] | `anycast-net` | topologies, link ledger, groups, routing |
//! | [`sim`] | `anycast-sim` | event engine, RNG, workload, statistics |
//! | [`rsvp`] | `anycast-rsvp` | PATH/RESV reservation walks, message ledger |
//! | [`dac`] | `anycast-dac` | the DAC procedure, policies, baselines, experiments |
//! | [`telemetry`] | `anycast-telemetry` | structured events, recorders, exporters, metrics registry |
//! | [`chaos`] | `anycast-chaos` | fault plans, deterministic fault timelines, outage ledger |
//! | [`analysis`] | `anycast-analysis` | Erlang-B, UAA, fixed point, AP prediction |
//! | [`estimator`] | `anycast-estimator` | calibrated link-decomposition fast path (Parsimon-style) |
//!
//! # Quickstart
//!
//! ```rust
//! use anycast::prelude::*;
//!
//! // The paper's §5.1 setup at 20 requests/second with <WD/D+H, 2>.
//! let topo = topologies::mci();
//! let config = ExperimentConfig::paper_defaults(
//!     20.0,
//!     SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
//! )
//! .with_warmup_secs(100.0)
//! .with_measure_secs(200.0);
//! let metrics = run_experiment(&topo, &config);
//! assert!(metrics.admission_probability > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anycast_analysis as analysis;
pub use anycast_chaos as chaos;
pub use anycast_dac as dac;
pub use anycast_estimator as estimator;
pub use anycast_net as net;
pub use anycast_rsvp as rsvp;
pub use anycast_sim as sim;
pub use anycast_telemetry as telemetry;

/// The most commonly used items, re-exported flat for examples and tests.
pub mod prelude {
    pub use anycast_analysis::scenario::{
        build_paper_scenario, build_scenario, AnalyzedSystem, ScenarioSpec,
    };
    pub use anycast_analysis::{erlang_b, predict_ap, uaa_blocking, BlockingModel};
    pub use anycast_chaos::{FaultAction, FaultPlan};
    pub use anycast_dac::baselines::{GlobalDynamicSystem, ShortestPathSystem};
    pub use anycast_dac::experiment::{
        run_experiment, run_experiment_traced, ArrivalProcess, DemandClass, ExperimentConfig,
        GroupSpec, Metrics, SystemSpec,
    };
    pub use anycast_dac::multipath::{MultipathController, MultipathRouteTable};
    pub use anycast_dac::policy::{HistoryMode, PolicySpec};
    pub use anycast_dac::{AdmissionController, RetrialPolicy};
    pub use anycast_estimator::{CalibrationOptions, CalibrationTable, Estimate, Estimator};
    pub use anycast_net::routing::RouteTable;
    pub use anycast_net::{
        topologies, AnycastGroup, Bandwidth, LinkId, LinkStateTable, NodeId, Path, Topology,
        TopologyBuilder,
    };
    pub use anycast_rsvp::{MessageKind, ReservationEngine};
    pub use anycast_sim::{SimRng, SimTime};
    pub use anycast_telemetry::{
        registry_from_events, Event, NullRecorder, Recorder, RingRecorder, TelemetryMode,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_modules_resolve() {
        let topo = crate::net::topologies::mci();
        assert_eq!(topo.node_count(), 19);
        let b = crate::analysis::erlang_b(1.0, 1);
        assert_eq!(b, 0.5);
    }
}
