//! A labelled metrics registry built on the `sim::stats` primitives.
//!
//! Counters, gauges and integer-valued histograms, each addressed by a
//! [`MetricKey`] — a metric name plus an ordered list of `(label, value)`
//! pairs (`policy`, `group`, `link`, …). Keys are kept in `BTreeMap`s so
//! iteration, merging and JSON export are deterministic regardless of
//! insertion order.

use crate::json::JsonValue;
use anycast_sim::stats::Histogram;
use std::collections::BTreeMap;

/// A metric name plus its labels, e.g. `probes_total{policy=wddh,outcome=admitted}`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (snake_case by convention).
    pub name: String,
    /// Ordered `(label, value)` pairs; order is part of the key identity,
    /// so always build labels in one canonical order per metric.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key without labels.
    pub fn plain(name: impl Into<String>) -> Self {
        MetricKey {
            name: name.into(),
            labels: Vec::new(),
        }
    }

    /// A key with labels.
    pub fn labelled<I, K, V>(name: impl Into<String>, labels: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        MetricKey {
            name: name.into(),
            labels: labels
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// Renders the key in the conventional `name{k=v,...}` form.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Counters, gauges and histograms for one run (or one merged sweep).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, f64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter at `key` (creating it at zero).
    pub fn inc(&mut self, key: MetricKey, delta: f64) {
        *self.counters.entry(key).or_insert(0.0) += delta;
    }

    /// Reads a counter; zero when never incremented.
    pub fn counter(&self, key: &MetricKey) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// Sets the gauge at `key` to `value`.
    pub fn set_gauge(&mut self, key: MetricKey, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Reads a gauge; `None` when never set.
    pub fn gauge(&self, key: &MetricKey) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Raises the gauge at `key` to `value` if `value` is larger (creating
    /// it at `value`): a high-water-mark gauge, used for peak queue depth
    /// and peak journal size in the admission daemon.
    pub fn set_gauge_max(&mut self, key: MetricKey, value: f64) {
        let g = self.gauges.entry(key).or_insert(value);
        if value > *g {
            *g = value;
        }
    }

    /// Records `value` into the histogram at `key` (creating it empty).
    pub fn observe(&mut self, key: MetricKey, value: u32) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Reads a histogram; `None` when nothing was observed.
    pub fn histogram(&self, key: &MetricKey) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value (last writer wins), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Exports the registry as a JSON object with `counters`, `gauges` and
    /// `histograms` sections, keys rendered `name{k=v,...}`, in
    /// deterministic (sorted) order.
    pub fn to_json(&self) -> JsonValue {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.render(), JsonValue::Num(*v)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.render(), JsonValue::Num(*v)))
                .collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.render(),
                        JsonValue::obj([
                            ("total", JsonValue::Num(h.total() as f64)),
                            ("mean", JsonValue::Num(h.mean())),
                            (
                                "buckets",
                                JsonValue::nums(h.buckets().iter().map(|&c| c as f64)),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        JsonValue::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// Builds a registry of headline metrics from a recorded event stream:
/// per-kind event counts, per-group request/rejection counters, per-member
/// probe outcomes, a tries histogram over admitted flows, teardown
/// reasons, and a decile histogram of sampled link utilization — all
/// labelled with `policy`.
pub fn registry_from_events(policy: &str, events: &[crate::event::TimedEvent]) -> MetricsRegistry {
    use crate::event::{Event, ProbeResult};
    let mut reg = MetricsRegistry::new();
    let key = |name: &str, extra: &[(&str, String)]| {
        let mut labels = vec![("policy".to_string(), policy.to_string())];
        labels.extend(extra.iter().map(|(k, v)| (k.to_string(), v.clone())));
        MetricKey {
            name: name.to_string(),
            labels,
        }
    };
    for timed in events {
        reg.inc(
            key("events_total", &[("kind", timed.event.kind().to_string())]),
            1.0,
        );
        match &timed.event {
            Event::RequestArrival { group, .. } => {
                reg.inc(key("requests_total", &[("group", group.to_string())]), 1.0);
            }
            Event::DestinationProbe {
                member_index,
                result,
                ..
            } => {
                let outcome = match result {
                    ProbeResult::Admitted => "admitted".to_string(),
                    ProbeResult::Skipped(skip) => format!("skipped_{}", skip.label()),
                };
                reg.inc(
                    key(
                        "probes_total",
                        &[("member", member_index.to_string()), ("outcome", outcome)],
                    ),
                    1.0,
                );
            }
            Event::ReservationSetup { tries, .. } => {
                reg.inc(key("admitted_total", &[]), 1.0);
                reg.observe(key("tries_to_admit", &[]), *tries);
            }
            Event::ReservationTeardown { reason, .. } => {
                reg.inc(
                    key("teardowns_total", &[("reason", reason.label().to_string())]),
                    1.0,
                );
            }
            Event::Rejection { tries, .. } => {
                reg.inc(key("rejections_total", &[]), 1.0);
                reg.observe(key("tries_to_reject", &[]), *tries);
            }
            Event::LinkSample {
                link,
                reserved_bps,
                capacity_bps,
                ..
            } => {
                let utilization = if *capacity_bps > 0 {
                    *reserved_bps as f64 / *capacity_bps as f64
                } else {
                    0.0
                };
                // Decile bucket 0..=10 so the histogram stays dense.
                let decile = (utilization * 10.0).round().clamp(0.0, 10.0) as u32;
                reg.observe(key("link_utilization_decile", &[]), decile);
                reg.set_gauge(
                    key("link_utilization", &[("link", link.index().to_string())]),
                    utilization,
                );
            }
            Event::FaultFired { .. } => {
                reg.inc(key("faults_fired_total", &[]), 1.0);
            }
            Event::FaultHealed { .. } => {
                reg.inc(key("faults_healed_total", &[]), 1.0);
            }
            Event::Retrial { .. } => {
                reg.inc(key("retrials_total", &[]), 1.0);
            }
            Event::MsgLost { message, .. } => {
                reg.inc(
                    key("messages_lost_total", &[("message", message.to_string())]),
                    1.0,
                );
            }
            Event::HoldExpired { .. } => {
                reg.inc(key("holds_expired_total", &[]), 1.0);
            }
            Event::SetupCompleted { latency_secs, .. } => {
                // Millisecond buckets keep sub-second latencies dense.
                reg.observe(
                    key("setup_latency_ms", &[]),
                    (latency_secs * 1000.0).round().clamp(0.0, u32::MAX as f64) as u32,
                );
            }
            // Per-crossing sends and placements are already visible in
            // events_total by kind; no dedicated counter needed.
            Event::MsgSent { .. } | Event::HoldPlaced { .. } => {}
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey::labelled(name, labels.iter().map(|&(k, v)| (k, v)))
    }

    #[test]
    fn key_rendering() {
        assert_eq!(MetricKey::plain("up").render(), "up");
        assert_eq!(
            key(
                "probes_total",
                &[("policy", "wddh"), ("outcome", "admitted")]
            )
            .render(),
            "probes_total{policy=wddh,outcome=admitted}"
        );
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc(MetricKey::plain("x"), 2.0);
        a.inc(MetricKey::plain("x"), 3.0);
        assert_eq!(a.counter(&MetricKey::plain("x")), 5.0);
        assert_eq!(a.counter(&MetricKey::plain("missing")), 0.0);

        let mut b = MetricsRegistry::new();
        b.inc(MetricKey::plain("x"), 1.0);
        b.set_gauge(MetricKey::plain("g"), 9.0);
        b.observe(MetricKey::plain("h"), 3);
        a.merge(&b);
        assert_eq!(a.counter(&MetricKey::plain("x")), 6.0);
        assert_eq!(a.gauge(&MetricKey::plain("g")), Some(9.0));
        assert_eq!(a.histogram(&MetricKey::plain("h")).unwrap().total(), 1);
    }

    #[test]
    fn registry_from_events_counts_kinds_and_outcomes() {
        use crate::event::{Event, ProbeResult, TimedEvent};
        use anycast_net::{LinkId, NodeId};
        let events = vec![
            TimedEvent {
                time_secs: 0.0,
                event: Event::RequestArrival {
                    request: 0,
                    source: NodeId::new(1),
                    group: 0,
                    demand_bps: 1,
                },
            },
            TimedEvent {
                time_secs: 0.0,
                event: Event::DestinationProbe {
                    request: 0,
                    member_index: 2,
                    weight: 1.0,
                    result: ProbeResult::Admitted,
                },
            },
            TimedEvent {
                time_secs: 1.0,
                event: Event::LinkSample {
                    link: LinkId::new(4),
                    reserved_bps: 50,
                    capacity_bps: 100,
                    flows: 1,
                    failed: false,
                },
            },
        ];
        let reg = registry_from_events("wddh", &events);
        assert_eq!(
            reg.counter(&key(
                "events_total",
                &[("policy", "wddh"), ("kind", "arrival")]
            )),
            1.0
        );
        assert_eq!(
            reg.counter(&key(
                "probes_total",
                &[("policy", "wddh"), ("member", "2"), ("outcome", "admitted")]
            )),
            1.0
        );
        assert_eq!(
            reg.gauge(&key(
                "link_utilization",
                &[("policy", "wddh"), ("link", "4")]
            )),
            Some(0.5)
        );
        assert_eq!(
            reg.histogram(&key("link_utilization_decile", &[("policy", "wddh")]))
                .unwrap()
                .count(5),
            1
        );
    }

    #[test]
    fn json_export_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.inc(key("b", &[]), 1.0);
        r.inc(key("a", &[("l", "2")]), 1.0);
        r.inc(key("a", &[("l", "1")]), 1.0);
        r.observe(MetricKey::plain("tries"), 1);
        r.observe(MetricKey::plain("tries"), 1);
        r.observe(MetricKey::plain("tries"), 3);
        let rendered = r.to_json().render();
        assert_eq!(
            rendered,
            concat!(
                r#"{"counters":{"a{l=1}":1,"a{l=2}":1,"b":1},"gauges":{},"#,
                r#""histograms":{"tries":{"total":3,"mean":1.6666666666666667,"#,
                r#""buckets":[0,2,0,1]}}}"#
            )
        );
    }
}
