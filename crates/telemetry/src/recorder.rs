//! Recorder trait and its two implementations: the no-op [`NullRecorder`]
//! and the per-run [`RingRecorder`].
//!
//! The design contract is *zero overhead when disabled*: every hook in the
//! simulation first asks [`Recorder::enabled`] and only then constructs an
//! event, so a [`NullRecorder`] run executes the exact instruction stream
//! of a build without telemetry — no allocation, no branch beyond the one
//! `enabled()` check, and bit-identical metrics (asserted by the
//! zero-overhead guard test in `anycast-dac`).

use crate::event::{Event, TimedEvent};

/// A sink for telemetry events.
///
/// Recorders are owned per run (one recorder per `(config, seed)` cell),
/// so no locking is needed even under a parallel sweep: "lock-free" by
/// construction. Determinism under `--jobs N` follows from the same
/// ownership — each cell's stream is a pure function of its config and
/// substream seed, and the sweep layer reassembles cells in input order.
pub trait Recorder {
    /// Whether events should be constructed at all. Hooks gate on this
    /// before building an [`Event`], so a disabled recorder costs one
    /// predictable branch.
    fn enabled(&self) -> bool;

    /// Records `event` at `time_secs` simulated seconds.
    fn record(&mut self, time_secs: f64, event: Event);

    /// Interval in simulated seconds between periodic link-state samples,
    /// or `None` to disable the sampler (the default).
    fn link_sample_interval(&self) -> Option<f64> {
        None
    }
}

/// Forwarding impl so generic simulation code (`Sim<R: Recorder>`) can be
/// driven through a borrowed recorder — in particular a `&mut dyn
/// Recorder` — without wrapping it.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, time_secs: f64, event: Event) {
        (**self).record(time_secs, event)
    }

    #[inline]
    fn link_sample_interval(&self) -> Option<f64> {
        (**self).link_sample_interval()
    }
}

/// The disabled recorder: `enabled()` is `false` and `record` is a no-op
/// the optimizer removes entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _time_secs: f64, _event: Event) {}
}

/// An allow-list over [`Event::kind`] labels: a recorder carrying a
/// filter retains only the listed kinds and discards the rest at
/// `record` time (without touching the ring or the drop counter).
///
/// Consumers that read back a narrow slice of the stream — the
/// calibration extractors read only `arrival`, `probe` and `link_sample`
/// — use this to keep ring pressure and copy volume proportional to what
/// they actually consume instead of to everything the run emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventFilter {
    keep: Vec<&'static str>,
}

impl EventFilter {
    /// A filter retaining exactly the listed [`Event::kind`] labels.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty — a recorder that keeps nothing is a
    /// misconfiguration, not a use case ([`NullRecorder`] covers "record
    /// nothing" without the ring).
    pub fn keep(kinds: &[&'static str]) -> Self {
        assert!(!kinds.is_empty(), "an event filter must keep something");
        EventFilter {
            keep: kinds.to_vec(),
        }
    }

    /// Whether events of this kind are retained.
    pub fn retains(&self, kind: &str) -> bool {
        self.keep.contains(&kind)
    }
}

/// A bounded in-memory event buffer with ring semantics: once `capacity`
/// events are held, each new event overwrites the oldest and the
/// [`dropped`](RingRecorder::dropped) counter grows, so a runaway run can
/// never exhaust memory while the most recent window is always intact.
///
/// The recorder carries the run's substream `seed` so exported events can
/// be attributed to the replication that produced them.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    seed: u64,
    capacity: usize,
    events: Vec<TimedEvent>,
    head: usize,
    dropped: u64,
    sample_every_secs: Option<f64>,
    filter: Option<EventFilter>,
}

/// Default ring capacity: 2²⁰ events (≈ tens of MB), enough for every
/// paper-scale scenario without truncation.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

impl RingRecorder {
    /// A ring with the default capacity for the run with this substream
    /// seed.
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(seed, DEFAULT_RING_CAPACITY)
    }

    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(seed: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "ring recorder needs a positive capacity");
        RingRecorder {
            seed,
            capacity,
            events: Vec::new(),
            head: 0,
            dropped: 0,
            sample_every_secs: None,
            filter: None,
        }
    }

    /// Restricts the ring to the kinds `filter` retains; everything else
    /// is discarded on arrival without consuming capacity or counting as
    /// dropped.
    pub fn with_filter(mut self, filter: EventFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Enables the periodic link-state sampler at `secs` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive and finite.
    pub fn with_sample_interval(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs > 0.0,
            "sample interval must be positive and finite, got {secs}"
        );
        self.sample_every_secs = Some(secs);
        self
    }

    /// The substream seed of the run this recorder captured.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retained events in chronological (recording) order.
    pub fn events(&self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Consumes the recorder, returning `(seed, events, dropped)`.
    pub fn into_parts(self) -> (u64, Vec<TimedEvent>, u64) {
        let events = self.events();
        (self.seed, events, self.dropped)
    }
}

impl Recorder for RingRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, time_secs: f64, event: Event) {
        if let Some(filter) = &self.filter {
            if !filter.retains(event.kind()) {
                return;
            }
        }
        let timed = TimedEvent { time_secs, event };
        if self.events.len() < self.capacity {
            self.events.push(timed);
        } else {
            self.events[self.head] = timed;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn link_sample_interval(&self) -> Option<f64> {
        self.sample_every_secs
    }
}

/// How a sweep should record telemetry for each cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryMode {
    /// No recorder at all — the pre-telemetry hot path.
    Off,
    /// A [`NullRecorder`] per cell: exercises the hooks, keeps them
    /// disabled. Used by the overhead benchmark.
    Null,
    /// A [`RingRecorder`] per cell.
    Ring {
        /// Periodic link-sampler interval, if any.
        sample_interval_secs: Option<f64>,
        /// Ring capacity in events.
        capacity: usize,
    },
}

impl TelemetryMode {
    /// A ring mode with the default capacity and no sampler.
    pub fn ring() -> Self {
        TelemetryMode::Ring {
            sample_interval_secs: None,
            capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::LinkId;

    fn sample(i: u64) -> Event {
        Event::LinkSample {
            link: LinkId::new(i as u32),
            reserved_bps: i,
            capacity_bps: 100,
            flows: 0,
            failed: false,
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        assert_eq!(r.link_sample_interval(), None);
        r.record(1.0, sample(0)); // no-op, must not panic
    }

    #[test]
    fn ring_keeps_chronological_order_within_capacity() {
        let mut r = RingRecorder::with_capacity(7, 10);
        for i in 0..5 {
            r.record(i as f64, sample(i));
        }
        let events = r.events();
        assert_eq!(events.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert!(events.windows(2).all(|w| w[0].time_secs < w[1].time_secs));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut r = RingRecorder::with_capacity(7, 4);
        for i in 0..10 {
            r.record(i as f64, sample(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let times: Vec<f64> = r.events().iter().map(|e| e.time_secs).collect();
        // The newest 4 events survive, oldest first.
        assert_eq!(times, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn sample_interval_builder() {
        let r = RingRecorder::new(1).with_sample_interval(60.0);
        assert_eq!(r.link_sample_interval(), Some(60.0));
        assert_eq!(r.seed(), 1);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = RingRecorder::with_capacity(0, 0);
    }

    #[test]
    fn filter_discards_without_counting_drops() {
        let mut r =
            RingRecorder::with_capacity(3, 4).with_filter(EventFilter::keep(&["link_sample"]));
        r.record(0.5, sample(0));
        r.record(
            1.0,
            Event::RequestArrival {
                request: 0,
                source: anycast_net::NodeId::new(1),
                group: 0,
                demand_bps: 64_000,
            },
        );
        r.record(1.5, sample(1));
        let events = r.events();
        assert_eq!(events.len(), 2, "arrival must be filtered out");
        assert_eq!(r.dropped(), 0, "filtered events are not ring drops");
        assert!(events
            .iter()
            .all(|e| matches!(e.event, Event::LinkSample { .. })));
    }

    #[test]
    fn filter_retains_listed_kinds() {
        let f = EventFilter::keep(&["arrival", "probe"]);
        assert!(f.retains("arrival"));
        assert!(f.retains("probe"));
        assert!(!f.retains("rejection"));
    }

    #[test]
    #[should_panic(expected = "must keep something")]
    fn empty_filter_rejected() {
        let _ = EventFilter::keep(&[]);
    }
}
