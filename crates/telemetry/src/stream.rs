//! Streaming JSONL export: a bounded channel into a writer thread.
//!
//! The [`RingRecorder`](crate::RingRecorder) holds a run's events in
//! memory and exports them at the end — fine for paper-scale runs, but a
//! long soak with message-level telemetry (five extra event kinds per
//! setup) outgrows any ring. A [`StreamRecorder`] instead renders each
//! event to one JSON line on a dedicated writer thread, fed through a
//! *bounded* channel. What happens when the writer falls behind is the
//! recorder's [`StreamPolicy`]:
//!
//! * [`StreamPolicy::Block`] (the default) — [`record`] blocks until the
//!   writer catches up: backpressure, never loss. Offline runs want this;
//!   the simulation simply slows to disk speed.
//! * [`StreamPolicy::DropNewest`] — [`record`] never blocks: when the
//!   channel is full the event is discarded and counted in
//!   [`dropped`](StreamRecorder::dropped). A live service wants this; a
//!   slow disk must not stall admission decisions.
//!
//! Under **either** policy, loss is never silent: every event that did not
//! reach the file — a full channel under `DropNewest`, or any policy after
//! the writer thread died on an I/O error — increments the `dropped`
//! counter, so `recorded() == lines written + dropped()` always holds.
//! Consumers export the counter as the `telemetry_dropped` metric.
//!
//! Determinism is unaffected under `Block`: the simulation thread hands
//! events over in recording order and the writer preserves it, so the
//! streamed file is byte-identical to `to_jsonl` over the same run's full
//! event sequence.
//!
//! [`record`]: Recorder::record

use crate::event::{Event, TimedEvent};
use crate::export::event_json;
use crate::recorder::Recorder;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Default channel capacity (events in flight between simulation and
/// writer) — large enough to ride out short I/O stalls, small enough to
/// bound memory at a few MB.
pub const DEFAULT_STREAM_CAPACITY: usize = 8192;

/// What [`Recorder::record`] does when the bounded channel to the writer
/// thread is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamPolicy {
    /// Block until the writer drains a slot: backpressure, never loss.
    #[default]
    Block,
    /// Drop the new event and count it in
    /// [`dropped`](StreamRecorder::dropped): the simulation (or service)
    /// never stalls on telemetry I/O.
    DropNewest,
}

/// A [`Recorder`] that streams events to a JSONL file as they happen.
#[derive(Debug)]
pub struct StreamRecorder {
    seed: u64,
    tx: Option<SyncSender<TimedEvent>>,
    writer: Option<JoinHandle<io::Result<u64>>>,
    sample_every_secs: Option<f64>,
    recorded: u64,
    policy: StreamPolicy,
    dropped: u64,
}

impl StreamRecorder {
    /// Creates the output file at `path` and spawns the writer thread,
    /// with a channel holding at most `capacity` in-flight events.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn create(path: &Path, seed: u64, capacity: usize) -> io::Result<Self> {
        assert!(capacity > 0, "stream recorder needs a positive capacity");
        let file = File::create(path)?;
        let (tx, rx) = sync_channel::<TimedEvent>(capacity);
        let writer = std::thread::spawn(move || -> io::Result<u64> {
            let mut out = BufWriter::new(file);
            let mut written = 0u64;
            while let Ok(timed) = rx.recv() {
                out.write_all(event_json(seed, &timed).render().as_bytes())?;
                out.write_all(b"\n")?;
                written += 1;
            }
            out.flush()?;
            Ok(written)
        });
        Ok(StreamRecorder {
            seed,
            tx: Some(tx),
            writer: Some(writer),
            sample_every_secs: None,
            recorded: 0,
            policy: StreamPolicy::Block,
            dropped: 0,
        })
    }

    /// Creates a stream with the default channel capacity.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create_default(path: &Path, seed: u64) -> io::Result<Self> {
        Self::create(path, seed, DEFAULT_STREAM_CAPACITY)
    }

    /// Enables the periodic link-state sampler at `secs` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive and finite.
    pub fn with_sample_interval(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs > 0.0,
            "sample interval must be positive and finite, got {secs}"
        );
        self.sample_every_secs = Some(secs);
        self
    }

    /// Replaces the full-channel policy (the default is
    /// [`StreamPolicy::Block`]).
    pub fn with_policy(mut self, policy: StreamPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The substream seed stamped on every exported line.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events handed to [`Recorder::record`] so far (written + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events that did not reach the file: discarded by
    /// [`StreamPolicy::DropNewest`] on a full channel, or (under either
    /// policy) recorded after the writer thread died on an I/O error.
    /// This is the `telemetry_dropped` metric; it is never silently zero
    /// when lines are missing, because `recorded() == written + dropped()`
    /// is an invariant.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Closes the channel, joins the writer and returns the number of
    /// lines written (equal to [`recorded`](Self::recorded) unless the
    /// writer hit an I/O error mid-run).
    ///
    /// # Errors
    ///
    /// The writer thread's first I/O error, if any.
    pub fn finish(mut self) -> io::Result<u64> {
        drop(self.tx.take());
        match self.writer.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("stream writer thread panicked"))),
            None => Ok(0),
        }
    }
}

impl Recorder for StreamRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, time_secs: f64, event: Event) {
        self.recorded += 1;
        let Some(tx) = &self.tx else {
            // The writer already died on an I/O error; the event cannot
            // reach the file. Account for it — never drop silently.
            self.dropped += 1;
            return;
        };
        let timed = TimedEvent { time_secs, event };
        match self.policy {
            StreamPolicy::Block => {
                // Blocks when the channel is full — backpressure, not
                // loss. A send error means the writer died on an I/O
                // error; count the loss, keep simulating, and surface the
                // error at finish().
                if tx.send(timed).is_err() {
                    self.tx = None;
                    self.dropped += 1;
                }
            }
            StreamPolicy::DropNewest => match tx.try_send(timed) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => self.dropped += 1,
                Err(TrySendError::Disconnected(_)) => {
                    self.tx = None;
                    self.dropped += 1;
                }
            },
        }
    }

    fn link_sample_interval(&self) -> Option<f64> {
        self.sample_every_secs
    }
}

impl Drop for StreamRecorder {
    /// Best-effort flush when the recorder is dropped without
    /// [`finish`](Self::finish): closes the channel and joins the writer,
    /// discarding its result.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_jsonl;
    use anycast_net::LinkId;

    fn sample(i: u64) -> Event {
        Event::LinkSample {
            link: LinkId::new(i as u32),
            reserved_bps: i,
            capacity_bps: 100,
            flows: 0,
            failed: false,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anycast-telemetry-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn streams_byte_identical_to_batch_export() {
        let path = temp_path("stream.jsonl");
        let events: Vec<TimedEvent> = (0..100)
            .map(|i| TimedEvent {
                time_secs: i as f64,
                event: sample(i),
            })
            .collect();
        let mut rec = StreamRecorder::create(&path, 42, 8).unwrap();
        assert!(rec.enabled());
        for ev in &events {
            rec.record(ev.time_secs, ev.event.clone());
        }
        assert_eq!(rec.recorded(), 100);
        assert_eq!(rec.finish().unwrap(), 100);
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, to_jsonl(42, &events));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_channel_applies_backpressure_without_loss() {
        let path = temp_path("backpressure.jsonl");
        let mut rec = StreamRecorder::create(&path, 7, 1).unwrap();
        for i in 0..500 {
            rec.record(i as f64, sample(i));
        }
        assert_eq!(rec.finish().unwrap(), 500);
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed.lines().count(), 500);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_without_finish_still_flushes() {
        let path = temp_path("dropped.jsonl");
        {
            let mut rec = StreamRecorder::create(&path, 1, 4).unwrap();
            rec.record(0.0, sample(0));
        }
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sample_interval_builder() {
        let path = temp_path("interval.jsonl");
        let rec = StreamRecorder::create(&path, 1, 4)
            .unwrap()
            .with_sample_interval(30.0);
        assert_eq!(rec.link_sample_interval(), Some(30.0));
        assert_eq!(rec.seed(), 1);
        drop(rec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn block_policy_never_drops() {
        let path = temp_path("block-policy.jsonl");
        let mut rec = StreamRecorder::create(&path, 3, 2)
            .unwrap()
            .with_policy(StreamPolicy::Block);
        for i in 0..300 {
            rec.record(i as f64, sample(i));
        }
        assert_eq!(rec.recorded(), 300);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.finish().unwrap(), 300);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_newest_accounts_for_every_missing_line() {
        // The writer may or may not keep up with the burst; whichever
        // events it misses under DropNewest MUST show up in dropped(), so
        // recorded == written + dropped is exact, not best-effort.
        let path = temp_path("drop-newest.jsonl");
        let mut rec = StreamRecorder::create(&path, 9, 1)
            .unwrap()
            .with_policy(StreamPolicy::DropNewest);
        for i in 0..2_000 {
            rec.record(i as f64, sample(i));
        }
        assert_eq!(rec.recorded(), 2_000);
        let dropped = rec.dropped();
        let written = rec.finish().unwrap();
        assert_eq!(
            written + dropped,
            2_000,
            "every event is either written or counted dropped"
        );
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed.lines().count() as u64, written);
        std::fs::remove_file(&path).ok();
    }
}
