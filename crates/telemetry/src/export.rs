//! JSONL and CSV exporters for recorded event streams.
//!
//! Both exporters are pure functions of `(seed, events)` and write events
//! in the order given, so exporting the per-cell streams of a parallel
//! sweep in input order yields byte-identical files for any `--jobs`
//! value. Every record carries the run's substream seed so merged logs
//! stay attributable.

use crate::event::{Event, FaultKind, ProbeResult, SkipReason, TimedEvent};
use crate::json::JsonValue;
use anycast_rsvp::MessageKind;
use std::fmt::Write as _;

/// Stable lowercase label for a signaling message kind.
fn msg_label(kind: MessageKind) -> &'static str {
    match kind {
        MessageKind::Path => "path",
        MessageKind::Resv => "resv",
        MessageKind::ResvErr => "resv_err",
        MessageKind::PathTear => "path_tear",
    }
}

fn skip_json(skip: &SkipReason) -> JsonValue {
    match skip {
        SkipReason::LinkBlocked {
            link,
            hop_index,
            available_bps,
        } => JsonValue::obj([
            ("reason", JsonValue::Str("link_blocked".into())),
            ("link", JsonValue::Num(link.index() as f64)),
            ("hop_index", JsonValue::Num(*hop_index as f64)),
            ("available_bps", JsonValue::Num(*available_bps as f64)),
        ]),
        SkipReason::NoFeasiblePath => {
            JsonValue::obj([("reason", JsonValue::Str("no_feasible_path".into()))])
        }
        SkipReason::NotSelected => {
            JsonValue::obj([("reason", JsonValue::Str("not_selected".into()))])
        }
    }
}

fn fault_json(entity: &FaultKind) -> JsonValue {
    match entity {
        FaultKind::Link(l) => JsonValue::obj([
            ("type", JsonValue::Str("link".into())),
            ("id", JsonValue::Num(l.index() as f64)),
        ]),
        FaultKind::Node(n) => JsonValue::obj([
            ("type", JsonValue::Str("node".into())),
            ("id", JsonValue::Num(n.index() as f64)),
        ]),
    }
}

/// Renders one event as a JSON object.
///
/// Every object starts with `t` (simulated seconds), `seed` (the run's
/// substream seed) and `kind` (the [`Event::kind`] discriminant); the
/// remaining fields are variant-specific — see the crate-level schema
/// docs.
pub fn event_json(seed: u64, timed: &TimedEvent) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("t".into(), JsonValue::Num(timed.time_secs)),
        ("seed".into(), JsonValue::Num(seed as f64)),
        ("kind".into(), JsonValue::Str(timed.event.kind().into())),
    ];
    match &timed.event {
        Event::RequestArrival {
            request,
            source,
            group,
            demand_bps,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("source".into(), JsonValue::Num(source.index() as f64)));
            fields.push(("group".into(), JsonValue::Num(*group as f64)));
            fields.push(("demand_bps".into(), JsonValue::Num(*demand_bps as f64)));
        }
        Event::DestinationProbe {
            request,
            member_index,
            weight,
            result,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("member".into(), JsonValue::Num(*member_index as f64)));
            fields.push(("weight".into(), JsonValue::Num(*weight)));
            match result {
                ProbeResult::Admitted => {
                    fields.push(("outcome".into(), JsonValue::Str("admitted".into())));
                }
                ProbeResult::Skipped(skip) => {
                    fields.push(("outcome".into(), JsonValue::Str("skipped".into())));
                    fields.push(("skip".into(), skip_json(skip)));
                }
            }
        }
        Event::Retrial {
            request,
            tries_so_far,
            remaining_weight,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("tries_so_far".into(), JsonValue::Num(*tries_so_far as f64)));
            fields.push(("remaining_weight".into(), JsonValue::Num(*remaining_weight)));
        }
        Event::ReservationSetup {
            request,
            session,
            member_index,
            hops,
            tries,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("session".into(), JsonValue::Num(session.raw() as f64)));
            fields.push(("member".into(), JsonValue::Num(*member_index as f64)));
            fields.push(("hops".into(), JsonValue::Num(*hops as f64)));
            fields.push(("tries".into(), JsonValue::Num(*tries as f64)));
        }
        Event::ReservationTeardown { session, reason } => {
            fields.push(("session".into(), JsonValue::Num(session.raw() as f64)));
            fields.push(("reason".into(), JsonValue::Str(reason.label().into())));
        }
        Event::Rejection {
            request,
            tries,
            trace,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("tries".into(), JsonValue::Num(*tries as f64)));
            let steps = trace
                .steps
                .iter()
                .map(|s| {
                    JsonValue::obj([
                        ("member", JsonValue::Num(s.member_index as f64)),
                        ("weight", JsonValue::Num(s.weight)),
                        ("skip", skip_json(&s.skip)),
                    ])
                })
                .collect();
            fields.push((
                "trace".into(),
                JsonValue::obj([
                    ("weights", JsonValue::nums(trace.weights.iter().copied())),
                    ("steps", JsonValue::Arr(steps)),
                ]),
            ));
        }
        Event::LinkSample {
            link,
            reserved_bps,
            capacity_bps,
            flows,
            failed,
        } => {
            fields.push(("link".into(), JsonValue::Num(link.index() as f64)));
            fields.push(("reserved_bps".into(), JsonValue::Num(*reserved_bps as f64)));
            fields.push(("capacity_bps".into(), JsonValue::Num(*capacity_bps as f64)));
            fields.push(("flows".into(), JsonValue::Num(*flows as f64)));
            fields.push(("failed".into(), JsonValue::Bool(*failed)));
            let utilization = if *capacity_bps > 0 {
                *reserved_bps as f64 / *capacity_bps as f64
            } else {
                0.0
            };
            fields.push(("utilization".into(), JsonValue::Num(utilization)));
        }
        Event::FaultFired { entity } | Event::FaultHealed { entity } => {
            fields.push(("entity".into(), fault_json(entity)));
        }
        Event::MsgSent {
            request,
            message,
            link,
        }
        | Event::MsgLost {
            request,
            message,
            link,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("message".into(), JsonValue::Str(msg_label(*message).into())));
            fields.push(("link".into(), JsonValue::Num(link.index() as f64)));
        }
        Event::HoldPlaced {
            request,
            link,
            bw_bps,
        }
        | Event::HoldExpired {
            request,
            link,
            bw_bps,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("link".into(), JsonValue::Num(link.index() as f64)));
            fields.push(("bw_bps".into(), JsonValue::Num(*bw_bps as f64)));
        }
        Event::SetupCompleted {
            request,
            session,
            latency_secs,
        } => {
            fields.push(("request".into(), JsonValue::Num(*request as f64)));
            fields.push(("session".into(), JsonValue::Num(session.raw() as f64)));
            fields.push(("latency_secs".into(), JsonValue::Num(*latency_secs)));
        }
    }
    JsonValue::Obj(fields)
}

/// Renders an event stream as JSON Lines: one compact object per line, in
/// input order, with a trailing newline after every record.
pub fn to_jsonl(seed: u64, events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(seed, ev).render());
        out.push('\n');
    }
    out
}

/// RFC 4180 field escaping: fields containing commas, quotes or newlines
/// are wrapped in double quotes with inner quotes doubled.
pub fn csv_escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The CSV header the exporter writes.
pub const CSV_HEADER: &str = "t,seed,kind,request,session,member,link,value,detail";

fn fault_detail(entity: &FaultKind) -> String {
    match entity {
        FaultKind::Link(l) => format!("link={}", l.index()),
        FaultKind::Node(n) => format!("node={}", n.index()),
    }
}

/// Renders an event stream as CSV with the fixed [`CSV_HEADER`] columns.
///
/// Columns that do not apply to a variant are left empty; `value` holds
/// the variant's headline number (demand, weight, tries, utilization) and
/// `detail` a compact `k=v;...` summary of the rest.
pub fn to_csv(seed: u64, events: &[TimedEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for ev in events {
        let kind = ev.event.kind();
        let (request, session, member, link, value, detail) = match &ev.event {
            Event::RequestArrival {
                request,
                source,
                group,
                demand_bps,
            } => (
                Some(*request),
                None,
                None,
                None,
                Some(*demand_bps as f64),
                format!("source={};group={}", source.index(), group),
            ),
            Event::DestinationProbe {
                request,
                member_index,
                weight,
                result,
            } => (
                Some(*request),
                None,
                Some(*member_index),
                None,
                Some(*weight),
                match result {
                    ProbeResult::Admitted => "admitted".to_string(),
                    ProbeResult::Skipped(skip) => format!("skipped:{}", skip.label()),
                },
            ),
            Event::Retrial {
                request,
                tries_so_far,
                remaining_weight,
            } => (
                Some(*request),
                None,
                None,
                None,
                Some(*remaining_weight),
                format!("tries_so_far={tries_so_far}"),
            ),
            Event::ReservationSetup {
                request,
                session,
                member_index,
                hops,
                tries,
            } => (
                Some(*request),
                Some(session.raw()),
                Some(*member_index),
                None,
                Some(*tries as f64),
                format!("hops={hops}"),
            ),
            Event::ReservationTeardown { session, reason } => (
                None,
                Some(session.raw()),
                None,
                None,
                None,
                reason.label().to_string(),
            ),
            Event::Rejection {
                request,
                tries,
                trace,
            } => (
                Some(*request),
                None,
                None,
                None,
                Some(*tries as f64),
                format!("skipped_candidates={}", trace.steps.len()),
            ),
            Event::LinkSample {
                link,
                reserved_bps,
                capacity_bps,
                flows,
                failed,
            } => (
                None,
                None,
                None,
                Some(link.index()),
                Some(if *capacity_bps > 0 {
                    *reserved_bps as f64 / *capacity_bps as f64
                } else {
                    0.0
                }),
                format!("reserved_bps={reserved_bps};capacity_bps={capacity_bps};flows={flows};failed={failed}"),
            ),
            Event::FaultFired { entity } | Event::FaultHealed { entity } => {
                let link = match entity {
                    FaultKind::Link(l) => Some(l.index()),
                    FaultKind::Node(_) => None,
                };
                (None, None, None, link, None, fault_detail(entity))
            }
            Event::MsgSent {
                request,
                message,
                link,
            }
            | Event::MsgLost {
                request,
                message,
                link,
            } => (
                Some(*request),
                None,
                None,
                Some(link.index()),
                None,
                format!("message={}", msg_label(*message)),
            ),
            Event::HoldPlaced {
                request,
                link,
                bw_bps,
            }
            | Event::HoldExpired {
                request,
                link,
                bw_bps,
            } => (
                Some(*request),
                None,
                None,
                Some(link.index()),
                Some(*bw_bps as f64),
                String::new(),
            ),
            Event::SetupCompleted {
                request,
                session,
                latency_secs,
            } => (
                Some(*request),
                Some(session.raw()),
                None,
                None,
                Some(*latency_secs),
                String::new(),
            ),
        };
        let num = |v: Option<f64>| match v {
            Some(x) if x.fract() == 0.0 && x.abs() < 9.0e15 => format!("{}", x as i64),
            Some(x) => format!("{x}"),
            None => String::new(),
        };
        let idx = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_default();
        let id = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            ev.time_secs,
            seed,
            kind,
            id(request),
            id(session),
            idx(member),
            idx(link),
            num(value),
            csv_escape(&detail)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionStep, DecisionTrace, TeardownReason};
    use anycast_net::{LinkId, NodeId};
    use anycast_rsvp::SessionId;

    fn stream() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                time_secs: 0.5,
                event: Event::RequestArrival {
                    request: 0,
                    source: NodeId::new(3),
                    group: 0,
                    demand_bps: 64_000,
                },
            },
            TimedEvent {
                time_secs: 0.5,
                event: Event::DestinationProbe {
                    request: 0,
                    member_index: 1,
                    weight: 0.75,
                    result: ProbeResult::Skipped(SkipReason::LinkBlocked {
                        link: LinkId::new(9),
                        hop_index: 2,
                        available_bps: 32_000,
                    }),
                },
            },
            TimedEvent {
                time_secs: 0.5,
                event: Event::Rejection {
                    request: 0,
                    tries: 1,
                    trace: DecisionTrace {
                        weights: vec![0.25, 0.75],
                        steps: vec![DecisionStep {
                            member_index: 1,
                            weight: 0.75,
                            skip: SkipReason::LinkBlocked {
                                link: LinkId::new(9),
                                hop_index: 2,
                                available_bps: 32_000,
                            },
                        }],
                    },
                },
            },
            TimedEvent {
                time_secs: 2.0,
                event: Event::ReservationTeardown {
                    session: SessionId::for_tests(4),
                    reason: TeardownReason::SoftStateExpired,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line_in_order() {
        let text = to_jsonl(77, &stream());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(text.ends_with('\n'));
        for line in &lines {
            let v = crate::json::parse(line).expect("every line must parse");
            let JsonValue::Obj(fields) = v else {
                panic!("every line must be an object");
            };
            assert_eq!(fields[0].0, "t");
            assert_eq!(fields[1], ("seed".to_string(), JsonValue::Num(77.0)));
            assert_eq!(fields[2].0, "kind");
        }
        assert!(lines[0].contains(r#""kind":"arrival""#));
        assert!(lines[1].contains(
            r#""skip":{"reason":"link_blocked","link":9,"hop_index":2,"available_bps":32000}"#
        ));
        assert!(lines[2].contains(r#""weights":[0.25,0.75]"#));
        assert!(lines[3].contains(r#""reason":"soft_state_expired""#));
    }

    #[test]
    fn csv_has_fixed_header_and_row_per_event() {
        let text = to_csv(5, &stream());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "0.5,5,arrival,0,,,,64000,source=3;group=0");
        assert_eq!(lines[2], "0.5,5,probe,0,,1,,0.75,skipped:link_blocked");
        assert_eq!(lines[4], "2,5,teardown,,4,,,,soft_state_expired");
    }

    #[test]
    fn signaling_events_export_on_both_formats() {
        let events = vec![
            TimedEvent {
                time_secs: 1.0,
                event: Event::MsgSent {
                    request: 7,
                    message: MessageKind::Path,
                    link: LinkId::new(3),
                },
            },
            TimedEvent {
                time_secs: 1.2,
                event: Event::MsgLost {
                    request: 7,
                    message: MessageKind::Resv,
                    link: LinkId::new(5),
                },
            },
            TimedEvent {
                time_secs: 1.0,
                event: Event::HoldPlaced {
                    request: 7,
                    link: LinkId::new(3),
                    bw_bps: 64_000,
                },
            },
            TimedEvent {
                time_secs: 2.0,
                event: Event::HoldExpired {
                    request: 7,
                    link: LinkId::new(3),
                    bw_bps: 64_000,
                },
            },
            TimedEvent {
                time_secs: 1.5,
                event: Event::SetupCompleted {
                    request: 8,
                    session: SessionId::for_tests(2),
                    latency_secs: 0.25,
                },
            },
        ];
        let jsonl = to_jsonl(9, &events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains(r#""kind":"msg_sent""#));
        assert!(lines[0].contains(r#""message":"path""#));
        assert!(lines[1].contains(r#""kind":"msg_lost""#));
        assert!(lines[1].contains(r#""message":"resv""#));
        assert!(lines[2].contains(r#""kind":"hold_placed""#));
        assert!(lines[2].contains(r#""bw_bps":64000"#));
        assert!(lines[3].contains(r#""kind":"hold_expired""#));
        assert!(lines[4].contains(r#""kind":"setup_completed""#));
        assert!(lines[4].contains(r#""latency_secs":0.25"#));
        for line in &lines {
            crate::json::parse(line).expect("every line must parse");
        }
        let csv = to_csv(9, &events);
        let rows: Vec<&str> = csv.lines().collect();
        assert_eq!(rows[1], "1,9,msg_sent,7,,,3,,message=path");
        assert_eq!(rows[2], "1.2,9,msg_lost,7,,,5,,message=resv");
        assert_eq!(rows[3], "1,9,hold_placed,7,,,3,64000,");
        assert_eq!(rows[4], "2,9,hold_expired,7,,,3,64000,");
        assert_eq!(rows[5], "1.5,9,setup_completed,8,2,,,0.25,");
    }

    #[test]
    fn csv_escaping_doubles_quotes_and_wraps() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn exporters_are_order_preserving_pure_functions() {
        let events = stream();
        assert_eq!(to_jsonl(1, &events), to_jsonl(1, &events));
        let reversed: Vec<TimedEvent> = events.iter().rev().cloned().collect();
        assert_ne!(to_jsonl(1, &events), to_jsonl(1, &reversed));
    }
}
