//! Calibration extractors: per-link occupancy distributions and
//! per-source destination-attempt profiles from a recorded event stream.
//!
//! The parsimon-style fast path (`anycast-estimator`) replaces full
//! discrete-event runs with a reduced-load fixed point whose per-link
//! blocking terms are *calibrated* rather than closed-form. The two
//! ingredients it needs both live in the ordinary telemetry stream a
//! short burst already produces:
//!
//! * [`link_occupancy`] folds the periodic [`Event::LinkSample`] series
//!   into per-link occupancy moments — mean flows in flight, variance,
//!   and the peakedness ratio `z = Var/E` that drives the
//!   Fredericks–Hayward blocking correction (`z = 1` recovers pure
//!   Erlang-B, the Poisson case);
//! * [`source_attempt_profiles`] joins `arrival` events (request →
//!   source) with `probe` events (request → member) to recover how each
//!   admission policy actually spread its attempts over the group —
//!   first-attempt counts, total attempt counts and admissions per
//!   (source, member) pair.
//!
//! Both extractors are pure functions of the event slice, so equal
//! streams (same seed) give byte-identical outputs — the property the
//! calibration-determinism tests pin down.

use crate::event::{Event, ProbeResult, TimedEvent};
use anycast_net::NodeId;
use std::collections::HashMap;

/// Occupancy moments of one link, folded from its `link_sample` series.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkOccupancy {
    /// Number of samples that contributed.
    pub samples: u64,
    /// Mean flows in flight.
    pub mean_flows: f64,
    /// Population variance of flows in flight.
    pub var_flows: f64,
    /// Mean reserved/capacity bandwidth ratio.
    pub mean_utilization: f64,
    /// Peakedness `Var/E` of the occupancy distribution; `1.0` when the
    /// link saw no flows (the Poisson default).
    pub peakedness: f64,
}

impl LinkOccupancy {
    fn empty() -> Self {
        LinkOccupancy {
            samples: 0,
            mean_flows: 0.0,
            var_flows: 0.0,
            mean_utilization: 0.0,
            peakedness: 1.0,
        }
    }
}

/// Folds the `link_sample` events at `time_secs >= start_secs` into
/// per-link occupancy moments, indexed by dense link id.
///
/// Links that were never sampled (or whose samples all fall before
/// `start_secs`, e.g. inside the warmup) report zero samples and the
/// neutral peakedness `1.0`.
///
/// # Panics
///
/// Panics if a sample references a link index `>= link_count`.
pub fn link_occupancy(
    events: &[TimedEvent],
    link_count: usize,
    start_secs: f64,
) -> Vec<LinkOccupancy> {
    // Two-pass moments (mean, then centred variance) keep the variance
    // non-negative without Welford state per link.
    let mut count = vec![0u64; link_count];
    let mut sum_flows = vec![0.0f64; link_count];
    let mut sum_util = vec![0.0f64; link_count];
    for te in events {
        if te.time_secs < start_secs {
            continue;
        }
        if let Event::LinkSample {
            link,
            reserved_bps,
            capacity_bps,
            flows,
            ..
        } = &te.event
        {
            let l = link.index();
            assert!(
                l < link_count,
                "link sample references link {l} outside link_count {link_count}"
            );
            count[l] += 1;
            sum_flows[l] += *flows as f64;
            if *capacity_bps > 0 {
                sum_util[l] += *reserved_bps as f64 / *capacity_bps as f64;
            }
        }
    }
    let mut sum_sq_dev = vec![0.0f64; link_count];
    for te in events {
        if te.time_secs < start_secs {
            continue;
        }
        if let Event::LinkSample { link, flows, .. } = &te.event {
            let l = link.index();
            let mean = sum_flows[l] / count[l] as f64;
            let dev = *flows as f64 - mean;
            sum_sq_dev[l] += dev * dev;
        }
    }
    (0..link_count)
        .map(|l| {
            if count[l] == 0 {
                return LinkOccupancy::empty();
            }
            let n = count[l] as f64;
            let mean_flows = sum_flows[l] / n;
            let var_flows = sum_sq_dev[l] / n;
            let peakedness = if mean_flows > 0.0 {
                var_flows / mean_flows
            } else {
                1.0
            };
            LinkOccupancy {
                samples: count[l],
                mean_flows,
                var_flows,
                mean_utilization: sum_util[l] / n,
                peakedness,
            }
        })
        .collect()
}

/// How one source's requests were spread over the group members, joined
/// from its `arrival` and `probe` events.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceAttempts {
    /// Requests that arrived at this source (after `start_secs`).
    pub requests: u64,
    /// Per-member count of *first* probes — the policy's initial pick.
    pub first_attempts: Vec<u64>,
    /// Per-member count of all probes (first picks plus retrials).
    pub attempts: Vec<u64>,
    /// Per-member count of probes that admitted the flow.
    pub admissions: Vec<u64>,
}

impl SourceAttempts {
    fn new(members: usize) -> Self {
        SourceAttempts {
            requests: 0,
            first_attempts: vec![0; members],
            attempts: vec![0; members],
            admissions: vec![0; members],
        }
    }
}

/// Joins arrivals with probes into one [`SourceAttempts`] per entry of
/// `sources` (same order), counting only requests that arrived at
/// `time_secs >= start_secs`.
///
/// Requests from nodes outside `sources` are ignored, as are probes whose
/// arrival was never seen (e.g. recorded before `start_secs` or evicted
/// from a saturated ring) — the join is strict so warmup transients can
/// be excluded exactly.
///
/// # Panics
///
/// Panics if a probe references a member index `>= members`.
pub fn source_attempt_profiles(
    events: &[TimedEvent],
    sources: &[NodeId],
    members: usize,
    start_secs: f64,
) -> Vec<SourceAttempts> {
    let index_of: HashMap<NodeId, usize> =
        sources.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut profiles: Vec<SourceAttempts> = (0..sources.len())
        .map(|_| SourceAttempts::new(members))
        .collect();
    // request id → (source slot, probes seen so far for the request).
    let mut open: HashMap<u64, (usize, u32)> = HashMap::new();
    for te in events {
        match &te.event {
            Event::RequestArrival {
                request, source, ..
            } => {
                if te.time_secs < start_secs {
                    continue;
                }
                if let Some(&slot) = index_of.get(source) {
                    profiles[slot].requests += 1;
                    open.insert(*request, (slot, 0));
                }
            }
            Event::DestinationProbe {
                request,
                member_index,
                result,
                ..
            } => {
                let Some(entry) = open.get_mut(request) else {
                    continue;
                };
                assert!(
                    *member_index < members,
                    "probe references member {member_index} outside group of {members}"
                );
                let (slot, probes_seen) = (entry.0, entry.1);
                entry.1 += 1;
                let p = &mut profiles[slot];
                if probes_seen == 0 {
                    p.first_attempts[*member_index] += 1;
                }
                p.attempts[*member_index] += 1;
                if matches!(result, ProbeResult::Admitted) {
                    p.admissions[*member_index] += 1;
                }
            }
            _ => {}
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SkipReason;
    use anycast_net::LinkId;

    fn sample(t: f64, link: u32, flows: u32) -> TimedEvent {
        TimedEvent {
            time_secs: t,
            event: Event::LinkSample {
                link: LinkId::new(link),
                reserved_bps: flows as u64 * 64_000,
                capacity_bps: 640_000,
                flows,
                failed: false,
            },
        }
    }

    fn arrival(t: f64, request: u64, source: u32) -> TimedEvent {
        TimedEvent {
            time_secs: t,
            event: Event::RequestArrival {
                request,
                source: NodeId::new(source),
                group: 0,
                demand_bps: 64_000,
            },
        }
    }

    fn probe(t: f64, request: u64, member: usize, admitted: bool) -> TimedEvent {
        TimedEvent {
            time_secs: t,
            event: Event::DestinationProbe {
                request,
                member_index: member,
                weight: 0.2,
                result: if admitted {
                    ProbeResult::Admitted
                } else {
                    ProbeResult::Skipped(SkipReason::NoFeasiblePath)
                },
            },
        }
    }

    #[test]
    fn occupancy_moments() {
        let events = vec![
            sample(1.0, 0, 2),
            sample(2.0, 0, 4),
            sample(3.0, 0, 6),
            sample(1.0, 1, 0),
        ];
        let occ = link_occupancy(&events, 3, 0.0);
        assert_eq!(occ[0].samples, 3);
        assert!((occ[0].mean_flows - 4.0).abs() < 1e-12);
        // Population variance of {2, 4, 6} = 8/3.
        assert!((occ[0].var_flows - 8.0 / 3.0).abs() < 1e-12);
        assert!((occ[0].peakedness - (8.0 / 3.0) / 4.0).abs() < 1e-12);
        assert!((occ[0].mean_utilization - 4.0 * 64_000.0 / 640_000.0).abs() < 1e-12);
        // Link 1: sampled but empty → neutral peakedness.
        assert_eq!(occ[1].samples, 1);
        assert_eq!(occ[1].peakedness, 1.0);
        // Link 2: never sampled.
        assert_eq!(occ[2].samples, 0);
        assert_eq!(occ[2].peakedness, 1.0);
    }

    #[test]
    fn occupancy_respects_start_time() {
        let events = vec![sample(1.0, 0, 100), sample(10.0, 0, 2)];
        let occ = link_occupancy(&events, 1, 5.0);
        assert_eq!(occ[0].samples, 1);
        assert!((occ[0].mean_flows - 2.0).abs() < 1e-12);
    }

    #[test]
    fn attempt_profiles_join_and_count() {
        let s = [NodeId::new(1), NodeId::new(3)];
        let events = vec![
            arrival(1.0, 0, 1),
            probe(1.0, 0, 2, false),
            probe(1.0, 0, 4, true),
            arrival(2.0, 1, 3),
            probe(2.0, 1, 2, true),
            arrival(3.0, 2, 1),
            probe(3.0, 2, 0, false),
            probe(3.0, 2, 1, false),
            // Unknown source: ignored entirely.
            arrival(4.0, 3, 8),
            probe(4.0, 3, 0, true),
        ];
        let p = source_attempt_profiles(&events, &s, 5, 0.0);
        assert_eq!(p[0].requests, 2);
        assert_eq!(p[0].first_attempts, vec![1, 0, 1, 0, 0]);
        assert_eq!(p[0].attempts, vec![1, 1, 1, 0, 1]);
        assert_eq!(p[0].admissions, vec![0, 0, 0, 0, 1]);
        assert_eq!(p[1].requests, 1);
        assert_eq!(p[1].first_attempts, vec![0, 0, 1, 0, 0]);
        assert_eq!(p[1].admissions, vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn attempt_profiles_drop_warmup_arrivals() {
        let s = [NodeId::new(1)];
        let events = vec![
            arrival(1.0, 0, 1),
            probe(1.0, 0, 0, true),
            arrival(9.0, 1, 1),
            probe(9.0, 1, 1, true),
        ];
        let p = source_attempt_profiles(&events, &s, 2, 5.0);
        assert_eq!(p[0].requests, 1);
        assert_eq!(p[0].first_attempts, vec![0, 1]);
    }
}
