//! Minimal JSON emission for machine-readable figure output.
//!
//! The vendored `serde` is an API stub without real serialization, so the
//! experiment binaries build their JSON explicitly through [`JsonValue`]
//! — which also keeps the emitted schema an intentional, reviewed
//! artifact rather than a mirror of internal struct layout.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via Rust's shortest-round-trip formatting).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: an array of numbers.
    pub fn nums<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        JsonValue::Arr(values.into_iter().map(JsonValue::Num).collect())
    }

    /// Convenience: an array of strings.
    pub fn strs<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        JsonValue::Arr(
            values
                .into_iter()
                .map(|s| JsonValue::Str(s.into()))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Keep integers integral so downstream tools reading
                    // e.g. seeds or counts never see a float artifact.
                    if x.fract() == 0.0 && x.abs() < 9_007_199_254_740_992.0 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document into a [`JsonValue`].
///
/// A minimal recursive-descent parser covering exactly what
/// [`JsonValue::render`] emits (objects, arrays, strings with `\uXXXX`
/// escapes, numbers, booleans, `null`) — used by the trace CLI's
/// `--check` pass and by round-trip tests. Trailing input after the
/// document is an error.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogates never appear in our own output; map
                        // them to the replacement character if seen.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 mid-string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Writes `value` to `results/<name>.json` (relative to the working
/// directory, creating `results/` if needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_results(name: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(path)
}

/// Emits to `results/` and notes where on stderr — stderr so that
/// redirecting a binary's stdout into `results/<name>.txt` captures the
/// tables alone — warning instead of failing when the directory is not
/// writable (figure output must still appear).
pub fn emit_results(name: &str, value: &JsonValue) {
    match write_results(name, value) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write results/{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Num(2.5).render(), "2.5");
        assert_eq!(JsonValue::Num(42.0).render(), "42");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("fig6".into())),
            ("lambdas", JsonValue::nums([5.0, 10.0])),
            (
                "series",
                JsonValue::Arr(vec![JsonValue::obj([
                    ("label", JsonValue::Str("<ED,2>".into())),
                    ("ap", JsonValue::nums([0.99, 0.95])),
                ])]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig6","lambdas":[5,10],"series":[{"label":"<ED,2>","ap":[0.99,0.95]}]}"#
        );
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("fig6 \"quoted\"\nline".into())),
            ("seed", JsonValue::Num(101.0)),
            ("ap", JsonValue::Num(0.875)),
            (
                "flags",
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
            (
                "nested",
                JsonValue::obj([("empty", JsonValue::Arr(vec![]))]),
            ),
            ("ctl", JsonValue::Str("\u{1}bell".into())),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            JsonValue::obj([("a", JsonValue::nums([1.0, 2.0]))])
        );
        assert!(parse("").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn write_results_round_trips() {
        let v = JsonValue::nums([1.0, 2.0]);
        let path = write_results("json_unit_test", &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text, "[1,2]\n");
    }
}
