//! Per-request decision tracing.
//!
//! A [`RequestTracer`] is handed down into an admission controller for the
//! duration of one request. It accumulates the policy's weight vector and
//! every probed-and-skipped candidate, emits a probe/retrial event stream
//! as the decision unfolds, and closes the request with either a
//! `ReservationSetup` or a `Rejection` carrying the full
//! [`DecisionTrace`]. Every method early-returns when the underlying
//! recorder is disabled, so the traced admission path costs a disabled
//! run nothing beyond one boolean captured at construction.

use crate::event::{DecisionStep, DecisionTrace, Event, ProbeResult, SkipReason};
use crate::recorder::Recorder;
use anycast_rsvp::SessionId;

/// Collects the decision trail of a single admission request and forwards
/// it to a [`Recorder`].
pub struct RequestTracer<'a> {
    recorder: &'a mut dyn Recorder,
    now_secs: f64,
    request: u64,
    armed: bool,
    weights: Vec<f64>,
    steps: Vec<DecisionStep>,
}

impl<'a> RequestTracer<'a> {
    /// A tracer for `request` at simulated time `now_secs`. The tracer is
    /// armed exactly when the recorder is enabled.
    pub fn new(recorder: &'a mut dyn Recorder, now_secs: f64, request: u64) -> Self {
        let armed = recorder.enabled();
        RequestTracer {
            recorder,
            now_secs,
            request,
            armed,
            weights: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Whether this tracer records anything. Callers may gate optional
    /// bookkeeping (e.g. collecting per-candidate feasibility) on this.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The request id this tracer is attached to.
    pub fn request(&self) -> u64 {
        self.request
    }

    /// Notes the policy's weight vector. Only the first call is kept — the
    /// trace records the weights the request *arrived* to, before retrials
    /// updated the history.
    #[inline]
    pub fn note_weights(&mut self, weights: &[f64]) {
        if !self.armed || !self.weights.is_empty() {
            return;
        }
        self.weights.extend_from_slice(weights);
    }

    /// Notes a probe of `member_index` with the given selection `weight`
    /// and outcome; skipped candidates are added to the decision trace.
    #[inline]
    pub fn note_probe(&mut self, member_index: usize, weight: f64, result: ProbeResult) {
        if !self.armed {
            return;
        }
        if let ProbeResult::Skipped(skip) = result {
            self.steps.push(DecisionStep {
                member_index,
                weight,
                skip,
            });
        }
        self.recorder.record(
            self.now_secs,
            Event::DestinationProbe {
                request: self.request,
                member_index,
                weight,
                result,
            },
        );
    }

    /// Notes a considered-but-never-probed candidate (global-knowledge
    /// systems that reject candidates from routing state alone).
    #[inline]
    pub fn note_skip(&mut self, member_index: usize, weight: f64, skip: SkipReason) {
        self.note_probe(member_index, weight, ProbeResult::Skipped(skip));
    }

    /// Notes the §4.5 decision to keep retrying after a failed probe.
    #[inline]
    pub fn note_retrial(&mut self, tries_so_far: u32, remaining_weight: f64) {
        if !self.armed {
            return;
        }
        self.recorder.record(
            self.now_secs,
            Event::Retrial {
                request: self.request,
                tries_so_far,
                remaining_weight,
            },
        );
    }

    /// Closes the request as admitted.
    #[inline]
    pub fn finish_admitted(
        &mut self,
        session: SessionId,
        member_index: usize,
        hops: usize,
        tries: u32,
    ) {
        if !self.armed {
            return;
        }
        self.recorder.record(
            self.now_secs,
            Event::ReservationSetup {
                request: self.request,
                session,
                member_index,
                hops,
                tries,
            },
        );
    }

    /// Closes the request as rejected, emitting the accumulated
    /// [`DecisionTrace`].
    #[inline]
    pub fn finish_rejected(&mut self, tries: u32) {
        if !self.armed {
            return;
        }
        let trace = DecisionTrace {
            weights: std::mem::take(&mut self.weights),
            steps: std::mem::take(&mut self.steps),
        };
        self.recorder.record(
            self.now_secs,
            Event::Rejection {
                request: self.request,
                tries,
                trace,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimedEvent;
    use crate::recorder::{NullRecorder, RingRecorder};
    use anycast_net::LinkId;

    fn blocked(link: u32) -> SkipReason {
        SkipReason::LinkBlocked {
            link: LinkId::new(link),
            hop_index: 0,
            available_bps: 0,
        }
    }

    #[test]
    fn disarmed_tracer_records_nothing() {
        let mut null = NullRecorder;
        let mut t = RequestTracer::new(&mut null, 1.0, 42);
        assert!(!t.is_armed());
        t.note_weights(&[0.5, 0.5]);
        t.note_probe(0, 0.5, ProbeResult::Skipped(blocked(1)));
        t.note_retrial(1, 0.5);
        t.finish_rejected(1);
        // Nothing observable; the NullRecorder has no state to inspect,
        // which is exactly the point.
    }

    #[test]
    fn rejection_carries_full_decision_trace() {
        let mut ring = RingRecorder::new(7);
        {
            let mut t = RequestTracer::new(&mut ring, 2.5, 9);
            assert!(t.is_armed());
            t.note_weights(&[0.7, 0.3]);
            t.note_weights(&[0.0, 0.0]); // later weight vectors are ignored
            t.note_probe(0, 0.7, ProbeResult::Skipped(blocked(4)));
            t.note_retrial(1, 0.3);
            t.note_probe(1, 0.3, ProbeResult::Skipped(blocked(8)));
            t.finish_rejected(2);
        }
        let events: Vec<TimedEvent> = ring.events();
        assert_eq!(events.len(), 4); // probe, retrial, probe, rejection
        let Event::Rejection {
            request,
            tries,
            trace,
        } = &events[3].event
        else {
            panic!("last event must be the rejection, got {:?}", events[3]);
        };
        assert_eq!(*request, 9);
        assert_eq!(*tries, 2);
        assert_eq!(trace.weights, vec![0.7, 0.3]);
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].member_index, 0);
        assert_eq!(trace.steps[1].member_index, 1);
        assert_eq!(trace.steps[1].skip, blocked(8));
    }

    #[test]
    fn admission_emits_setup_not_trace() {
        let mut ring = RingRecorder::new(7);
        {
            let mut t = RequestTracer::new(&mut ring, 0.0, 1);
            t.note_weights(&[1.0]);
            t.note_probe(0, 1.0, ProbeResult::Admitted);
            t.finish_admitted(SessionId::for_tests(5), 0, 3, 1);
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].event.kind(), "setup");
    }
}
