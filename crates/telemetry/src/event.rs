//! The structured event vocabulary of the telemetry layer.
//!
//! Every observable moment of a run — a request arriving, a destination
//! being probed, a reservation being set up or torn down, a fault firing —
//! is one [`Event`] variant stamped with simulated seconds into a
//! [`TimedEvent`]. The variants carry dense ids (`u64` request counters,
//! raw [`LinkId`]/[`NodeId`]/[`SessionId`] values) rather than references,
//! so recorded streams are plain data: comparable, cloneable and
//! exportable without holding the simulation alive.

use anycast_net::{LinkId, NodeId};
use anycast_rsvp::{MessageKind, SessionId};

/// An [`Event`] stamped with the simulated time it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Simulated seconds since the start of the run.
    pub time_secs: f64,
    /// What happened.
    pub event: Event,
}

/// One structured telemetry event.
///
/// The JSONL/CSV exporters give each variant a stable `kind` discriminant
/// (listed per variant below); see the crate-level docs for the full
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `kind: "arrival"` — an anycast request entered the system.
    RequestArrival {
        /// Dense per-run request counter, assigned in arrival order.
        request: u64,
        /// Node the request originated at.
        source: NodeId,
        /// Index of the anycast group the request addresses.
        group: usize,
        /// Requested bandwidth in bits per second.
        demand_bps: u64,
    },
    /// `kind: "probe"` — one destination was probed on behalf of a request.
    DestinationProbe {
        /// The probing request.
        request: u64,
        /// Index of the probed group member (destination ordering).
        member_index: usize,
        /// Selection weight the policy assigned to this member when it was
        /// picked (0.0 for systems without weights).
        weight: f64,
        /// Whether the probe admitted the flow or was skipped, and why.
        result: ProbeResult,
    },
    /// `kind: "retrial"` — the controller decided to keep trying after a
    /// failed probe (§4.5 retrial decision).
    Retrial {
        /// The retrying request.
        request: u64,
        /// Probes attempted so far.
        tries_so_far: u32,
        /// Total selection weight still untried.
        remaining_weight: f64,
    },
    /// `kind: "setup"` — a reservation was established end to end.
    ReservationSetup {
        /// The admitted request.
        request: u64,
        /// Reservation session id.
        session: SessionId,
        /// Group member the flow was admitted to.
        member_index: usize,
        /// Hop count of the reserved route.
        hops: usize,
        /// Probes it took to find this destination.
        tries: u32,
    },
    /// `kind: "teardown"` — a reservation was released.
    ReservationTeardown {
        /// The released session.
        session: SessionId,
        /// Why the reservation ended.
        reason: TeardownReason,
    },
    /// `kind: "rejection"` — a request was rejected after exhausting its
    /// retrials; carries the full per-request decision trace.
    Rejection {
        /// The rejected request.
        request: u64,
        /// Probes attempted before giving up.
        tries: u32,
        /// Weight vector and per-candidate skip reasons.
        trace: DecisionTrace,
    },
    /// `kind: "link_sample"` — periodic link-state snapshot from the
    /// sampler.
    LinkSample {
        /// Sampled link.
        link: LinkId,
        /// Reserved bandwidth in bits per second.
        reserved_bps: u64,
        /// Link capacity in bits per second.
        capacity_bps: u64,
        /// Live flows traversing the link.
        flows: u32,
        /// Whether the link is currently failed.
        failed: bool,
    },
    /// `kind: "fault_fired"` — a chaos fault took an entity down.
    FaultFired {
        /// The failed entity.
        entity: FaultKind,
    },
    /// `kind: "fault_healed"` — a previously failed entity recovered.
    FaultHealed {
        /// The recovered entity.
        entity: FaultKind,
    },
    /// `kind: "msg_sent"` — a two-phase signaling message started one hop
    /// crossing.
    MsgSent {
        /// The request whose setup the message belongs to.
        request: u64,
        /// Message kind (PATH / RESV / RESV_ERR).
        message: MessageKind,
        /// The link being crossed.
        link: LinkId,
    },
    /// `kind: "msg_lost"` — a chaos fault dropped the message on that
    /// crossing.
    MsgLost {
        /// The request whose setup the message belongs to.
        request: u64,
        /// Message kind (PATH / RESV / RESV_ERR).
        message: MessageKind,
        /// The link the message was lost on.
        link: LinkId,
    },
    /// `kind: "hold_placed"` — a PATH crossing placed a pending hold on a
    /// link (bandwidth claimed but not yet confirmed).
    HoldPlaced {
        /// The request whose setup placed the hold.
        request: u64,
        /// The link holding the bandwidth.
        link: LinkId,
        /// Held bandwidth in bits per second.
        bw_bps: u64,
    },
    /// `kind: "hold_expired"` — an unconfirmed hold hit its setup timeout
    /// and returned its bandwidth.
    HoldExpired {
        /// The request whose setup had placed the hold.
        request: u64,
        /// The link releasing the bandwidth.
        link: LinkId,
        /// Released bandwidth in bits per second.
        bw_bps: u64,
    },
    /// `kind: "setup_completed"` — a two-phase setup's RESV reached the
    /// source and every hold was committed into a reservation.
    SetupCompleted {
        /// The admitted request.
        request: u64,
        /// The installed session.
        session: SessionId,
        /// Wall-clock of the setup in simulated seconds, from the first
        /// PATH send of the attempt to the RESV arriving at the source.
        latency_secs: f64,
    },
}

/// The entity a chaos fault acts on.
///
/// Mirrors `anycast_chaos::FaultEntity` without depending on the chaos
/// crate (chaos depends on telemetry, not the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A network link.
    Link(LinkId),
    /// A group-member node.
    Node(NodeId),
}

/// Why a reservation was torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeardownReason {
    /// The flow completed and its teardown message was delivered.
    Departure,
    /// The flow completed but its teardown was delayed in transit.
    Delayed,
    /// A fault killed the flow mid-life.
    FaultKilled,
    /// An orphaned reservation's soft state expired and was reclaimed.
    SoftStateExpired,
}

impl TeardownReason {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            TeardownReason::Departure => "departure",
            TeardownReason::Delayed => "delayed",
            TeardownReason::FaultKilled => "fault_killed",
            TeardownReason::SoftStateExpired => "soft_state_expired",
        }
    }
}

/// Outcome of probing one destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeResult {
    /// The reservation succeeded and the flow was admitted here.
    Admitted,
    /// The destination was skipped; the reason says why.
    Skipped(SkipReason),
}

/// Why a probed (or considered) destination did not admit the flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkipReason {
    /// The reservation walked the route and hit a link without capacity.
    LinkBlocked {
        /// The first link that could not take the demand.
        link: LinkId,
        /// Hop index of that link along the route.
        hop_index: usize,
        /// Bandwidth the link had available, in bits per second.
        available_bps: u64,
    },
    /// No feasible path existed at probe time (global-knowledge systems).
    NoFeasiblePath,
    /// The candidate was feasible but another destination was chosen.
    NotSelected,
}

impl SkipReason {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SkipReason::LinkBlocked { .. } => "link_blocked",
            SkipReason::NoFeasiblePath => "no_feasible_path",
            SkipReason::NotSelected => "not_selected",
        }
    }
}

/// The per-request decision record attached to a rejection: the weight
/// vector the policy assigned on the first iteration, plus one
/// [`DecisionStep`] per candidate that was probed and skipped, in probe
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionTrace {
    /// Selection weights over the group members at the first draw.
    pub weights: Vec<f64>,
    /// Every probed-and-skipped candidate, in the order tried.
    pub steps: Vec<DecisionStep>,
}

/// One skipped candidate within a [`DecisionTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionStep {
    /// Group-member index of the candidate.
    pub member_index: usize,
    /// Weight it carried when drawn.
    pub weight: f64,
    /// Why it did not admit the flow.
    pub skip: SkipReason,
}

impl Event {
    /// Stable lowercase discriminant used as the `kind` field by the
    /// exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RequestArrival { .. } => "arrival",
            Event::DestinationProbe { .. } => "probe",
            Event::Retrial { .. } => "retrial",
            Event::ReservationSetup { .. } => "setup",
            Event::ReservationTeardown { .. } => "teardown",
            Event::Rejection { .. } => "rejection",
            Event::LinkSample { .. } => "link_sample",
            Event::FaultFired { .. } => "fault_fired",
            Event::FaultHealed { .. } => "fault_healed",
            Event::MsgSent { .. } => "msg_sent",
            Event::MsgLost { .. } => "msg_lost",
            Event::HoldPlaced { .. } => "hold_placed",
            Event::HoldExpired { .. } => "hold_expired",
            Event::SetupCompleted { .. } => "setup_completed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let ev = Event::RequestArrival {
            request: 0,
            source: NodeId::new(1),
            group: 0,
            demand_bps: 1,
        };
        assert_eq!(ev.kind(), "arrival");
        assert_eq!(
            Event::FaultFired {
                entity: FaultKind::Link(LinkId::new(3))
            }
            .kind(),
            "fault_fired"
        );
        assert_eq!(
            TeardownReason::SoftStateExpired.label(),
            "soft_state_expired"
        );
        assert_eq!(
            Event::MsgLost {
                request: 1,
                message: MessageKind::Resv,
                link: LinkId::new(2)
            }
            .kind(),
            "msg_lost"
        );
        assert_eq!(
            Event::SetupCompleted {
                request: 1,
                session: SessionId::for_tests(0),
                latency_secs: 0.5
            }
            .kind(),
            "setup_completed"
        );
        assert_eq!(
            SkipReason::LinkBlocked {
                link: LinkId::new(0),
                hop_index: 2,
                available_bps: 64_000
            }
            .label(),
            "link_blocked"
        );
    }
}
