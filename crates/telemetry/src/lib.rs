//! Zero-overhead structured tracing, metrics and admission decision logs.
//!
//! The paper's evaluation (§5) reports only end-of-run aggregates, but a
//! production admission controller needs the trajectory: per-link
//! utilization time series, per-request decision traces, always-on
//! counters. This crate is that observability layer, designed so that a
//! run with telemetry disabled is **bit-and-speed identical** to one
//! compiled without it:
//!
//! * [`Recorder`] — the sink trait; hooks gate on [`Recorder::enabled`]
//!   before constructing an event, so the [`NullRecorder`] costs a single
//!   predictable branch per hook.
//! * [`RingRecorder`] — a bounded per-run buffer (no locks: one recorder
//!   per `(config, seed)` cell) with wraparound and a dropped-event count.
//! * [`StreamRecorder`] — streams each event as one JSON line through a
//!   bounded channel to a writer thread, with backpressure instead of
//!   drops; for runs whose event volume outgrows any ring.
//! * [`RequestTracer`] — accumulates one request's weight vector and
//!   skipped candidates, closing with a `ReservationSetup` or a
//!   `Rejection` that carries the full [`DecisionTrace`].
//! * [`MetricsRegistry`] — labelled counters/gauges/histograms built on
//!   `anycast_sim::stats`, deterministically ordered and JSON-exportable.
//! * [`export`] — JSONL/CSV exporters; [`json`] — the shared JSON
//!   emitter/parser (also re-exported as `anycast_bench::json`).
//!
//! Determinism under parallel sweeps: every event carries simulated time,
//! every exported record carries the run's substream seed, and the sweep
//! layer reassembles per-cell streams in input order — so trace files are
//! byte-identical for any `--jobs` value.
//!
//! # Event schema
//!
//! One JSON object per line (JSONL). Common fields: `t` (simulated
//! seconds, number), `seed` (substream seed of the run), `kind`
//! (discriminant). Variant fields:
//!
//! | `kind` | fields |
//! |--------|--------|
//! | `arrival` | `request`, `source` (node index), `group`, `demand_bps` |
//! | `probe` | `request`, `member`, `weight`, `outcome` (`admitted`\|`skipped`), `skip`? |
//! | `retrial` | `request`, `tries_so_far`, `remaining_weight` |
//! | `setup` | `request`, `session`, `member`, `hops`, `tries` |
//! | `teardown` | `session`, `reason` (`departure`\|`delayed`\|`fault_killed`\|`soft_state_expired`) |
//! | `rejection` | `request`, `tries`, `trace` (see below) |
//! | `link_sample` | `link`, `reserved_bps`, `capacity_bps`, `flows`, `failed`, `utilization` |
//! | `fault_fired` / `fault_healed` | `entity` (`{type: link\|node, id}`) |
//! | `msg_sent` / `msg_lost` | `request`, `message` (`path`\|`resv`\|`resv_err`\|`path_tear`), `link` |
//! | `hold_placed` / `hold_expired` | `request`, `link`, `bw_bps` |
//! | `setup_completed` | `request`, `session`, `latency_secs` |
//!
//! The `msg_*`, `hold_*` and `setup_completed` kinds are emitted only by
//! the two-phase signalling engine (`--signaling-delay` et al.); the
//! atomic engine performs its exchange in one instant and has no
//! per-message moments to report.
//!
//! A `rejection.trace` is `{weights: [f64; group_size], steps: [{member,
//! weight, skip}]}` — `weights` is the policy's weight vector when the
//! request arrived, `steps` lists every probed-and-skipped destination in
//! probe order, and each `skip` is `{reason: link_blocked, link,
//! hop_index, available_bps}`, `{reason: no_feasible_path}` or `{reason:
//! not_selected}`. A probe's `skip` object uses the same shape.
//!
//! The CSV exporter flattens the same stream into fixed columns
//! `t,seed,kind,request,session,member,link,value,detail` (RFC 4180
//! escaping); `value` holds the variant's headline number and `detail` a
//! compact `k=v;...` rest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod occupancy;
pub mod recorder;
pub mod registry;
pub mod stream;
pub mod tracer;

pub use event::{
    DecisionStep, DecisionTrace, Event, FaultKind, ProbeResult, SkipReason, TeardownReason,
    TimedEvent,
};
pub use occupancy::{link_occupancy, source_attempt_profiles, LinkOccupancy, SourceAttempts};
pub use recorder::{
    EventFilter, NullRecorder, Recorder, RingRecorder, TelemetryMode, DEFAULT_RING_CAPACITY,
};
pub use registry::{registry_from_events, MetricKey, MetricsRegistry};
pub use stream::{StreamPolicy, StreamRecorder, DEFAULT_STREAM_CAPACITY};
pub use tracer::RequestTracer;
