//! Special functions: the (complementary) error function of eq. (29).
//!
//! `std` has no `erf`/`erfc`, and the dependency budget excludes `libm`,
//! so we implement the classic Chebyshev-fitted rational approximation
//! (Numerical Recipes §6.2, after Hastings): fractional error below
//! `1.2 × 10⁻⁷` everywhere — far tighter than the fixed-point tolerances
//! that consume it.

/// The complementary error function `erfc(x) = (2/√π) ∫ₓ^∞ e^(−t²) dt`
/// (eq. 29 of the paper).
///
/// Accurate to a fractional error below `1.2 × 10⁻⁷` for all finite `x`.
///
/// ```rust
/// use anycast_analysis::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(10.0) < 1e-40);
/// assert!((erfc(-10.0) - 2.0).abs() < 1e-7);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The error function `erf(x) = 1 − erfc(x)`.
///
/// ```rust
/// use anycast_analysis::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The scaled complementary error function `erfcx(x) = e^{x²}·erfc(x)` for
/// `x ≥ 0`.
///
/// `erfc(x)` underflows to zero near `x ≈ 27`, but ratios like
/// `erfc(x)/e^{−x²}` stay perfectly finite; the UAA's heavy-overload branch
/// needs exactly that ratio, so it is computed without the underflowing
/// exponential (the same rational fit as [`erfc`], dropping the `e^{−x²}`
/// factor).
///
/// # Panics
///
/// Panics if `x` is negative (use [`erfc`] there — no scaling is needed).
pub fn erfcx(x: f64) -> f64 {
    assert!(x >= 0.0, "erfcx is implemented for non-negative x, got {x}");
    let t = 1.0 / (1.0 + 0.5 * x);
    t * (-1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87 + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
        .exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath to 20 digits.
    const REFERENCE: [(f64, f64); 9] = [
        (0.0, 1.0),
        (0.1, 0.887_537_083_981_715),
        (0.5, 0.479_500_122_186_953_5),
        (1.0, 0.157_299_207_050_285_13),
        (1.5, 0.033_894_853_524_689_27),
        (2.0, 0.004_677_734_981_063_32),
        (3.0, 2.209_049_699_858_544e-5),
        (4.0, 1.541_725_790_028_002e-8),
        (5.0, 1.537_459_794_428_035e-12),
    ];

    #[test]
    fn matches_reference_values() {
        for (x, expected) in REFERENCE {
            let got = erfc(x);
            let rel = ((got - expected) / expected).abs();
            assert!(
                rel < 2e-7,
                "erfc({x}) = {got}, expected {expected}, rel {rel}"
            );
        }
    }

    #[test]
    fn negative_axis_by_symmetry() {
        for (x, expected) in REFERENCE {
            let got = erfc(-x);
            assert!(
                (got - (2.0 - expected)).abs() < 3e-7,
                "erfc({}) = {got}",
                -x
            );
        }
    }

    #[test]
    fn erf_is_complement() {
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.2, 0.9, 1.7, 3.3] {
            assert!((erf(x) + erf(-x)).abs() < 3e-7);
        }
    }

    #[test]
    fn monotone_decreasing() {
        let mut prev = erfc(-6.0);
        let mut x = -6.0;
        while x < 6.0 {
            x += 0.05;
            let cur = erfc(x);
            assert!(cur <= prev + 1e-12, "erfc not monotone at {x}");
            prev = cur;
        }
    }

    #[test]
    fn erfcx_matches_unscaled_where_both_work() {
        for x in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0] {
            let scaled = erfcx(x) * (-x * x).exp();
            let rel = if erfc(x) > 0.0 {
                ((scaled - erfc(x)) / erfc(x)).abs()
            } else {
                0.0
            };
            assert!(rel < 1e-12, "erfcx({x}) inconsistent with erfc: {rel}");
        }
    }

    #[test]
    fn erfcx_survives_huge_arguments() {
        // Asymptotically erfcx(x) ≈ 1/(x·√π).
        for x in [50.0, 500.0, 5_000.0] {
            let v = erfcx(x);
            let asym = 1.0 / (x * std::f64::consts::PI.sqrt());
            assert!(
                ((v - asym) / asym).abs() < 0.01,
                "erfcx({x}) = {v}, asym {asym}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn erfcx_rejects_negative() {
        let _ = erfcx(-0.1);
    }

    #[test]
    fn bounds() {
        for i in -100..=100 {
            let x = i as f64 / 10.0;
            let v = erfc(x);
            assert!((0.0..=2.0).contains(&v), "erfc({x}) = {v} out of [0,2]");
        }
    }
}
