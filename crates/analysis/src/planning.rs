//! Capacity planning on top of the fixed point: inverting the AP curve.

use crate::scenario::{build_scenario, AnalyzedSystem, ScenarioSpec};
use crate::{predict_ap, BlockingModel};
use anycast_net::Topology;

/// Finds the largest arrival rate λ whose *predicted* admission
/// probability still meets `target_ap`, by bisection on the analytical
/// model (no simulation).
///
/// The predicted AP is monotone non-increasing in λ (each link's blocking
/// grows with offered load), so bisection converges to the unique
/// threshold; the result is accurate to `max(search window) · 2⁻⁵⁰`.
///
/// Returns 0.0 when even infinitesimal load misses the target (possible
/// only for `target_ap > 1`), and `max_lambda` when the target is met
/// across the whole window.
///
/// # Panics
///
/// Panics if `target_ap` is not in `(0, 1]`, `max_lambda` is not
/// positive/finite, or the spec/topology are inconsistent.
///
/// # Example
///
/// ```rust
/// use anycast_analysis::planning::sustainable_rate;
/// use anycast_analysis::scenario::{AnalyzedSystem, ScenarioSpec};
/// use anycast_analysis::BlockingModel;
/// use anycast_net::topologies;
///
/// let topo = topologies::mci();
/// let spec = |l| ScenarioSpec::paper_defaults(l);
/// let rate = sustainable_rate(&topo, spec, AnalyzedSystem::Ed1,
///                             BlockingModel::ErlangB, 0.95, 500.0);
/// assert!(rate > 5.0 && rate < 50.0);
/// ```
pub fn sustainable_rate(
    topo: &Topology,
    spec_at: impl Fn(f64) -> ScenarioSpec,
    system: AnalyzedSystem,
    model: BlockingModel,
    target_ap: f64,
    max_lambda: f64,
) -> f64 {
    assert!(
        target_ap > 0.0 && target_ap <= 1.0,
        "target AP must lie in (0, 1], got {target_ap}"
    );
    assert!(
        max_lambda.is_finite() && max_lambda > 0.0,
        "search window must be positive and finite, got {max_lambda}"
    );
    let ap_at = |lambda: f64| -> f64 {
        let scenario = build_scenario(topo, &spec_at(lambda), system);
        predict_ap(&scenario, model).admission_probability
    };
    if ap_at(max_lambda) >= target_ap {
        return max_lambda;
    }
    let (mut lo, mut hi) = (0.0f64, max_lambda);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if mid == lo || mid == hi {
            break;
        }
        if ap_at(mid) >= target_ap {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::{topologies, NodeId};

    fn paper_spec(lambda: f64) -> ScenarioSpec {
        ScenarioSpec::paper_defaults(lambda)
    }

    #[test]
    fn threshold_brackets_the_target() {
        let topo = topologies::mci();
        let rate = sustainable_rate(
            &topo,
            paper_spec,
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            0.95,
            500.0,
        );
        let at = |l: f64| {
            predict_ap(
                &build_scenario(&topo, &paper_spec(l), AnalyzedSystem::Ed1),
                BlockingModel::ErlangB,
            )
            .admission_probability
        };
        assert!(at(rate) >= 0.95 - 1e-6, "AP at threshold {}", at(rate));
        assert!(at(rate * 1.02) < 0.95, "AP just above {}", at(rate * 1.02));
    }

    #[test]
    fn looser_targets_allow_more_load() {
        let topo = topologies::mci();
        let tight = sustainable_rate(
            &topo,
            paper_spec,
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            0.99,
            500.0,
        );
        let loose = sustainable_rate(
            &topo,
            paper_spec,
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            0.80,
            500.0,
        );
        assert!(loose > tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn spreading_buys_capacity_over_sp_at_moderate_targets() {
        // The paper's argument as a planning statement: at moderate AP
        // targets, spreading (ED) sustains more load than concentrating
        // (SP). Interestingly this *reverses* at very strict targets:
        // SP's shortest routes block marginally less at light load, so
        // its AP shoulder sits a touch higher even though its knee is far
        // steeper — visible in Tables 1–2, where SP only falls behind
        // from λ ≈ 20 onward.
        let topo = topologies::mci();
        let at = |system, target| {
            sustainable_rate(
                &topo,
                paper_spec,
                system,
                BlockingModel::ErlangB,
                target,
                500.0,
            )
        };
        let ed = at(AnalyzedSystem::Ed1, 0.70);
        let sp = at(AnalyzedSystem::Sp, 0.70);
        assert!(ed > sp * 1.05, "ED sustains {ed}, SP {sp}");
    }

    #[test]
    fn window_saturation() {
        let topo = topologies::mci();
        let rate = sustainable_rate(
            &topo,
            paper_spec,
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            0.5,
            10.0, // window entirely below the 0.5-AP threshold
        );
        assert_eq!(rate, 10.0);
    }

    #[test]
    fn bigger_groups_sustain_more() {
        let topo = topologies::mci();
        let small = sustainable_rate(
            &topo,
            |l| {
                let mut s = paper_spec(l);
                s.group_members = vec![NodeId::new(8)];
                s
            },
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            0.95,
            500.0,
        );
        let big = sustainable_rate(
            &topo,
            paper_spec,
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            0.95,
            500.0,
        );
        assert!(big > small, "K=5 sustains {big}, K=1 {small}");
    }

    #[test]
    #[should_panic(expected = "target AP")]
    fn bad_target_panics() {
        let topo = topologies::mci();
        let _ = sustainable_rate(
            &topo,
            paper_spec,
            AnalyzedSystem::Ed1,
            BlockingModel::ErlangB,
            1.5,
            100.0,
        );
    }
}
