//! The Erlang-B loss formula.

/// Server count above which [`erlang_b`] switches from the forward
/// recursion to the log-space inverse recursion of [`erlang_b_ln`].
///
/// The forward recursion is exact and fast for the paper's link sizes
/// (312 slots), but on links with many thousands of slots its running
/// blocking estimate underflows to a hard `0.0` long before the last
/// server, losing the magnitude entirely; the log-space path keeps the
/// exponent. The two paths agree to well below the fixed-point tolerance
/// around the threshold (see the `paths_agree_at_threshold` test).
const LOG_SPACE_SERVERS: u32 = 4_096;

/// Blocking probability of an Erlang loss system offered `load` erlangs
/// with `servers` circuits — `L(b, v_l, C_l)` of eq. (16) evaluated
/// exactly.
///
/// Because every anycast flow in the paper's experiments demands the same
/// bandwidth (64 kb/s), a link with capacity `C_l` behaves as an
/// `M/M/C_l/C_l` system in units of flow slots and Erlang-B is *exact* for
/// an isolated link; the UAA of Appendix A is its asymptotic
/// approximation. Computed with the standard numerically stable recursion
/// `E_k = a·E_{k−1} / (k + a·E_{k−1})`, which never overflows; above
/// [`LOG_SPACE_SERVERS`] circuits it switches to `exp` of
/// [`erlang_b_ln`], whose log-space inverse recursion cannot underflow to
/// zero prematurely, so 10k-server links still return the correctly
/// rounded (possibly subnormal) probability instead of a sticky `0.0`.
///
/// Zero load blocks nothing; zero servers block everything (with positive
/// load).
///
/// # Panics
///
/// Panics if `load` is negative or non-finite.
///
/// ```rust
/// use anycast_analysis::erlang_b;
/// // Classic table value: 10 erlangs on 10 circuits ≈ 0.2146.
/// assert!((erlang_b(10.0, 10) - 0.2146).abs() < 1e-4);
/// ```
pub fn erlang_b(load: f64, servers: u32) -> f64 {
    assert!(
        load.is_finite() && load >= 0.0,
        "offered load must be finite and non-negative, got {load}"
    );
    if load == 0.0 {
        return 0.0;
    }
    if servers == 0 {
        return 1.0;
    }
    if servers > LOG_SPACE_SERVERS {
        return erlang_b_ln(load, servers).exp();
    }
    let mut b = 1.0;
    for k in 1..=servers {
        b = load * b / (k as f64 + load * b);
    }
    b
}

/// Natural logarithm of the Erlang-B blocking probability, computed
/// entirely in log space so extreme parameters never overflow, underflow
/// or produce NaN.
///
/// Uses the inverse recursion `I_k = 1 + (k/a)·I_{k−1}` with
/// `B = 1/I_C`, carried as `ln I_k` via `ln(1 + e^x)`: `I` grows like
/// `C!/a^C` under light load — far beyond `f64::MAX` for large `C` —
/// but its logarithm stays small. This is what makes very lightly loaded
/// 10k-server links usable: plain [`erlang_b`]'s forward recursion (and
/// any linear-space inverse recursion) returns `0.0` there, while the log
/// value (e.g. ≈ −2.9e4 for 100 erlangs on 10 000 servers) retains the
/// full magnitude for log-domain composition.
///
/// Conventions mirror [`erlang_b`]: zero load returns
/// `f64::NEG_INFINITY` (blocking 0), zero servers return `0.0`
/// (blocking 1).
///
/// # Panics
///
/// Panics if `load` is negative or non-finite.
pub fn erlang_b_ln(load: f64, servers: u32) -> f64 {
    assert!(
        load.is_finite() && load >= 0.0,
        "offered load must be finite and non-negative, got {load}"
    );
    if servers == 0 {
        return 0.0;
    }
    if load == 0.0 {
        return f64::NEG_INFINITY;
    }
    let ln_a = load.ln();
    let mut ln_inv = 0.0f64; // ln I_0 = ln 1
    for k in 1..=servers {
        // ln I_k = ln(1 + (k/a)·I_{k−1}) = ln(1 + e^{ln k − ln a + ln I_{k−1}}).
        let x = (k as f64).ln() - ln_a + ln_inv;
        ln_inv = if x > 0.0 {
            // ln(1 + e^x) = x + ln(1 + e^{−x}); e^{−x} ≤ 1 so ln_1p is exact.
            x + (-x).exp().ln_1p()
        } else {
            x.exp().ln_1p()
        };
    }
    -ln_inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // Values from standard Erlang-B tables / direct summation.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-15);
        assert!((erlang_b(1.0, 2) - 0.2).abs() < 1e-15);
        // E(2, 3) = (8/6) / (1 + 2 + 2 + 8/6) = (4/3)/(19/3) = 4/19.
        assert!((erlang_b(2.0, 3) - 4.0 / 19.0).abs() < 1e-15);
    }

    #[test]
    fn matches_direct_summation() {
        // B = (a^c/c!) / Σ_{k≤c} a^k/k! computed in log space.
        for &(a, c) in &[(5.0f64, 8u32), (50.0, 60), (312.0, 312), (400.0, 312)] {
            let mut terms = Vec::with_capacity(c as usize + 1);
            let mut log_term: f64 = 0.0; // log(a^0/0!)
            terms.push(log_term);
            for k in 1..=c {
                log_term += a.ln() - (k as f64).ln();
                terms.push(log_term);
            }
            let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let denom: f64 = terms.iter().map(|t| (t - max).exp()).sum();
            let direct = (terms[c as usize] - max).exp() / denom;
            let rec = erlang_b(a, c);
            assert!(
                (rec - direct).abs() < 1e-12,
                "a={a} c={c}: recursion {rec} vs direct {direct}"
            );
            let ln = erlang_b_ln(a, c);
            assert!(
                (ln.exp() - direct).abs() < 1e-12,
                "a={a} c={c}: log-space {} vs direct {direct}",
                ln.exp()
            );
        }
    }

    #[test]
    fn monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..200 {
            let b = erlang_b(i as f64 * 5.0, 312);
            assert!(b >= prev);
            assert!((0.0..=1.0).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn monotone_in_servers() {
        let mut prev = 1.0;
        for c in 1..500 {
            let b = erlang_b(300.0, c);
            assert!(b <= prev + 1e-15);
            prev = b;
        }
    }

    #[test]
    fn asymptotics() {
        // Heavy traffic: B → 1 − C/a.
        let b = erlang_b(10_000.0, 312);
        assert!((b - (1.0 - 312.0 / 10_000.0)).abs() < 0.01);
        // Light traffic: essentially no blocking.
        assert!(erlang_b(10.0, 312) < 1e-100);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(erlang_b(0.0, 10), 0.0);
        assert_eq!(erlang_b(5.0, 0), 1.0);
        assert_eq!(erlang_b(0.0, 0), 0.0);
        assert_eq!(erlang_b_ln(0.0, 10), f64::NEG_INFINITY);
        assert_eq!(erlang_b_ln(5.0, 0), 0.0);
        assert_eq!(erlang_b_ln(0.0, 0), 0.0);
    }

    #[test]
    fn paper_link_capacity_never_saturates_fp() {
        // 312 slots at overload 3000 erlangs still yields a finite, sane value.
        let b = erlang_b(3_000.0, 312);
        assert!(b > 0.85 && b < 1.0);
    }

    /// The satellite regression: a 10k-server link must never produce
    /// NaN, ±inf, or an out-of-range probability — at light load, at the
    /// critically loaded knee, and in deep overload.
    #[test]
    fn ten_thousand_servers_stay_finite_and_sane() {
        for load in [1.0, 100.0, 5_000.0, 9_500.0, 10_000.0, 12_000.0, 1e6] {
            let b = erlang_b(load, 10_000);
            assert!(b.is_finite(), "load={load}: got {b}");
            assert!((0.0..=1.0).contains(&b), "load={load}: got {b}");
            let ln = erlang_b_ln(load, 10_000);
            assert!(!ln.is_nan() && ln <= 0.0, "load={load}: ln {ln}");
        }
        // Near-critical load: small but clearly representable blocking.
        let knee = erlang_b(9_500.0, 10_000);
        assert!(knee > 0.0 && knee < 1e-3, "knee blocking {knee}");
        // Deep overload matches the fluid limit 1 − C/a.
        let over = erlang_b(20_000.0, 10_000);
        assert!((over - 0.5).abs() < 0.01, "overload blocking {over}");
    }

    /// Light load on a huge link: the plain probability is genuinely
    /// below the smallest positive double (so `0.0` is the correctly
    /// rounded value), but the log-space form must retain the magnitude
    /// instead of collapsing to −inf.
    #[test]
    fn light_load_keeps_log_magnitude() {
        let ln = erlang_b_ln(100.0, 10_000);
        assert!(ln.is_finite(), "got {ln}");
        // Coarse bound: between e^-1e6 and e^-1e3 — tiny but tracked.
        assert!(ln < -1_000.0 && ln > -1_000_000.0, "got {ln}");
        assert_eq!(erlang_b(100.0, 10_000), 0.0);
    }

    /// The forward and log-space paths agree where the switch happens.
    #[test]
    fn paths_agree_at_threshold() {
        for c in [
            LOG_SPACE_SERVERS - 1,
            LOG_SPACE_SERVERS,
            LOG_SPACE_SERVERS + 1,
        ] {
            for load_factor in [0.8, 0.95, 1.0, 1.1, 2.0] {
                let load = c as f64 * load_factor;
                let forward = {
                    let mut b = 1.0f64;
                    for k in 1..=c {
                        b = load * b / (k as f64 + load * b);
                    }
                    b
                };
                let log_space = erlang_b_ln(load, c).exp();
                assert!(
                    (forward - log_space).abs() < 1e-10,
                    "c={c} load={load}: forward {forward} vs log {log_space}"
                );
            }
        }
    }

    /// Monotonicity survives the representation switch: blocking keeps
    /// decreasing in the server count straight through the threshold.
    #[test]
    fn monotone_across_threshold() {
        let load = 4_000.0;
        let mut prev = 1.0f64;
        for c in (LOG_SPACE_SERVERS - 64)..(LOG_SPACE_SERVERS + 64) {
            let b = erlang_b(load, c);
            assert!(b <= prev + 1e-12, "c={c}: {b} > {prev}");
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_panics() {
        let _ = erlang_b(-1.0, 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_panics_ln() {
        let _ = erlang_b_ln(-1.0, 3);
    }
}
