//! The Erlang-B loss formula.

/// Blocking probability of an Erlang loss system offered `load` erlangs
/// with `servers` circuits — `L(b, v_l, C_l)` of eq. (16) evaluated
/// exactly.
///
/// Because every anycast flow in the paper's experiments demands the same
/// bandwidth (64 kb/s), a link with capacity `C_l` behaves as an
/// `M/M/C_l/C_l` system in units of flow slots and Erlang-B is *exact* for
/// an isolated link; the UAA of Appendix A is its asymptotic
/// approximation. Computed with the standard numerically stable recursion
/// `E_k = a·E_{k−1} / (k + a·E_{k−1})`, which never overflows.
///
/// Zero load blocks nothing; zero servers block everything (with positive
/// load).
///
/// # Panics
///
/// Panics if `load` is negative or non-finite.
///
/// ```rust
/// use anycast_analysis::erlang_b;
/// // Classic table value: 10 erlangs on 10 circuits ≈ 0.2146.
/// assert!((erlang_b(10.0, 10) - 0.2146).abs() < 1e-4);
/// ```
pub fn erlang_b(load: f64, servers: u32) -> f64 {
    assert!(
        load.is_finite() && load >= 0.0,
        "offered load must be finite and non-negative, got {load}"
    );
    if load == 0.0 {
        return 0.0;
    }
    if servers == 0 {
        return 1.0;
    }
    let mut b = 1.0;
    for k in 1..=servers {
        b = load * b / (k as f64 + load * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // Values from standard Erlang-B tables / direct summation.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-15);
        assert!((erlang_b(1.0, 2) - 0.2).abs() < 1e-15);
        // E(2, 3) = (8/6) / (1 + 2 + 2 + 8/6) = (4/3)/(19/3) = 4/19.
        assert!((erlang_b(2.0, 3) - 4.0 / 19.0).abs() < 1e-15);
    }

    #[test]
    fn matches_direct_summation() {
        // B = (a^c/c!) / Σ_{k≤c} a^k/k! computed in log space.
        for &(a, c) in &[(5.0f64, 8u32), (50.0, 60), (312.0, 312), (400.0, 312)] {
            let mut terms = Vec::with_capacity(c as usize + 1);
            let mut log_term: f64 = 0.0; // log(a^0/0!)
            terms.push(log_term);
            for k in 1..=c {
                log_term += a.ln() - (k as f64).ln();
                terms.push(log_term);
            }
            let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let denom: f64 = terms.iter().map(|t| (t - max).exp()).sum();
            let direct = (terms[c as usize] - max).exp() / denom;
            let rec = erlang_b(a, c);
            assert!(
                (rec - direct).abs() < 1e-12,
                "a={a} c={c}: recursion {rec} vs direct {direct}"
            );
        }
    }

    #[test]
    fn monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..200 {
            let b = erlang_b(i as f64 * 5.0, 312);
            assert!(b >= prev);
            assert!((0.0..=1.0).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn monotone_in_servers() {
        let mut prev = 1.0;
        for c in 1..500 {
            let b = erlang_b(300.0, c);
            assert!(b <= prev + 1e-15);
            prev = b;
        }
    }

    #[test]
    fn asymptotics() {
        // Heavy traffic: B → 1 − C/a.
        let b = erlang_b(10_000.0, 312);
        assert!((b - (1.0 - 312.0 / 10_000.0)).abs() < 0.01);
        // Light traffic: essentially no blocking.
        assert!(erlang_b(10.0, 312) < 1e-100);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(erlang_b(0.0, 10), 0.0);
        assert_eq!(erlang_b(5.0, 0), 1.0);
        assert_eq!(erlang_b(0.0, 0), 0.0);
    }

    #[test]
    fn paper_link_capacity_never_saturates_fp() {
        // 312 slots at overload 3000 erlangs still yields a finite, sane value.
        let b = erlang_b(3_000.0, 312);
        assert!(b > 0.85 && b < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_panics() {
        let _ = erlang_b(-1.0, 3);
    }
}
