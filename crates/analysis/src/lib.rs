//! Analytical admission-probability model (Appendix A of the paper).
//!
//! The paper validates its simulation with a queueing-theoretic model:
//! every link is an Erlang loss system, link blocking probabilities are
//! coupled through the classical *reduced-load* ("thinning") fixed point
//! under the link-independence assumption, and per-link blocking is
//! evaluated either exactly (Erlang-B — exact here because all flows
//! demand the same bandwidth) or with the paper's *uniform asymptotic
//! approximation* (UAA, eqs. 23–29).
//!
//! * [`erlang_b`] — numerically stable Erlang-B recursion;
//! * [`uaa_blocking`] — the UAA formula, including our own [`erfc`];
//! * [`predict_ap`] — the reduced-load fixed point (eqs. 19–22) and the
//!   admission probability of eq. (15);
//! * [`scenario`] — builders that turn a topology + §5.1 traffic spec into
//!   the offered route loads of the `<ED,1>` and `SP` systems (eq. 14 and
//!   the uniform split above it), plus the multi-retrial extension.
//!
//! # Example
//!
//! ```rust
//! use anycast_analysis::scenario::{build_paper_scenario, AnalyzedSystem};
//! use anycast_analysis::{predict_ap, BlockingModel};
//! use anycast_net::topologies;
//!
//! let topo = topologies::mci();
//! let scenario = build_paper_scenario(&topo, 20.0, AnalyzedSystem::Ed1);
//! let prediction = predict_ap(&scenario, BlockingModel::ErlangB);
//! assert!(prediction.converged);
//! assert!(prediction.admission_probability > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod erlang;
mod fixed_point;
pub mod planning;
pub mod scenario;
mod special;
mod uaa;

pub use erlang::{erlang_b, erlang_b_ln};
pub use fixed_point::{
    predict_ap, predict_ap_batch, predict_ap_fn, predict_ap_fn_from, predict_ap_with, ApPrediction,
    BlockingModel, FixedPointOptions,
};
pub use special::{erf, erfc, erfcx};
pub use uaa::uaa_blocking;
