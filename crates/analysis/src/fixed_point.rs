//! The reduced-load fixed point (eqs. 19–22) and the admission probability
//! of eq. (15).

use crate::scenario::TrafficScenario;
use crate::{erlang_b, uaa_blocking};
use serde::{Deserialize, Serialize};

/// Which link-blocking function `L(v_l)` (eq. 19) the fixed point uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockingModel {
    /// Exact Erlang-B — available because all flows demand equal bandwidth.
    ErlangB,
    /// The paper's uniform asymptotic approximation (eqs. 25–29).
    Uaa,
}

impl BlockingModel {
    /// Evaluates the model's blocking probability for one link offered
    /// `load` erlangs with `servers` flow slots.
    pub fn blocking(self, load: f64, servers: u32) -> f64 {
        match self {
            BlockingModel::ErlangB => erlang_b(load, servers),
            BlockingModel::Uaa => {
                if servers == 0 {
                    1.0
                } else {
                    uaa_blocking(load, servers)
                }
            }
        }
    }
}

/// Convergence controls for the fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPointOptions {
    /// Stop when the largest change in any link's blocking drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
    /// Under-relaxation factor in `(0, 1]`: `B ← (1−θ)·B + θ·B_new`.
    /// Damping guarantees convergence on scenarios where the plain
    /// iteration (θ = 1) oscillates.
    pub damping: f64,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            tolerance: 1e-10,
            max_iterations: 10_000,
            damping: 0.7,
        }
    }
}

/// Output of the analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApPrediction {
    /// The admission probability of eq. (15).
    pub admission_probability: f64,
    /// Converged per-link blocking probabilities `B_l`.
    pub link_blocking: Vec<f64>,
    /// Per-route rejection probabilities `L_{s,r}` (eq. 17), in the
    /// scenario's route order.
    pub route_rejection: Vec<f64>,
    /// Iterations performed.
    pub iterations: u32,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
}

/// Runs the reduced-load fixed point with default options.
///
/// See [`predict_ap_with`].
pub fn predict_ap(scenario: &TrafficScenario, model: BlockingModel) -> ApPrediction {
    predict_ap_with(scenario, model, FixedPointOptions::default())
}

/// Solves a batch of independent fixed points across `jobs` worker
/// threads, returning predictions in input order.
///
/// Each case is a pure function of its `(scenario, model)` pair, so the
/// output is **bit-identical for every `jobs` value** — the same guarantee
/// the simulation sweeps make. The analysis-vs-simulation tables fan their
/// per-λ × per-model cells through this instead of a serial loop.
///
/// # Panics
///
/// Panics if `jobs == 0`, or on any invalid scenario (see
/// [`predict_ap_with`]).
pub fn predict_ap_batch(
    jobs: usize,
    cases: &[(TrafficScenario, BlockingModel)],
) -> Vec<ApPrediction> {
    anycast_sim::pool::parallel_map(jobs, cases, |_, (scenario, model)| {
        predict_ap(scenario, *model)
    })
}

/// Runs the reduced-load fixed point (eqs. 19–22) on a traffic scenario
/// and evaluates eq. (15).
///
/// Each route offers its load to every link it crosses, *thinned* by the
/// blocking of the route's other links (eq. 18, link independence); each
/// link's blocking is `L(v_l)` under the chosen model; iterate to a fixed
/// point, then combine per eq. (17) and eq. (15).
///
/// # Panics
///
/// Panics if the scenario references a link outside its capacity vector,
/// if options are out of range, or if total offered load is zero.
pub fn predict_ap_with(
    scenario: &TrafficScenario,
    model: BlockingModel,
    options: FixedPointOptions,
) -> ApPrediction {
    predict_ap_fn(
        scenario,
        |_, load, servers| model.blocking(load, servers),
        options,
    )
}

/// [`predict_ap_with`] with an arbitrary per-link blocking function.
///
/// `blocking_fn(link, load, servers)` maps one link's reduced offered
/// load to its blocking probability; [`BlockingModel`] supplies the two
/// closed-form instances, while `anycast-estimator` substitutes
/// calibrated occupancy-distribution estimators per link. The function
/// must return values in `[0, 1]` for the iteration to remain a map on
/// probabilities; everything else about the reduced-load fixed point
/// (thinning, adaptive under-relaxation, eq. 17/15 readout) is shared.
///
/// # Panics
///
/// As [`predict_ap_with`].
pub fn predict_ap_fn<F>(
    scenario: &TrafficScenario,
    blocking_fn: F,
    options: FixedPointOptions,
) -> ApPrediction
where
    F: Fn(usize, f64, u32) -> f64,
{
    let zeros = vec![0.0f64; scenario.capacities.len()];
    predict_ap_fn_from(scenario, blocking_fn, options, &zeros)
}

/// [`predict_ap_fn`] warm-started from `initial_blocking`.
///
/// The iteration is a contraction towards the same fixed point from any
/// starting vector in `[0, 1]^L`; starting near the solution (e.g. the
/// converged blocking of a slightly different load, as the estimator's
/// retrial outer loop does) cuts the iteration count from hundreds to a
/// handful. `predict_ap_fn` is exactly this function started from zero.
///
/// # Panics
///
/// As [`predict_ap_fn`], plus if `initial_blocking` has the wrong length
/// or holds values outside `[0, 1]`.
pub fn predict_ap_fn_from<F>(
    scenario: &TrafficScenario,
    blocking_fn: F,
    options: FixedPointOptions,
    initial_blocking: &[f64],
) -> ApPrediction
where
    F: Fn(usize, f64, u32) -> f64,
{
    assert!(
        options.damping > 0.0 && options.damping <= 1.0,
        "damping must lie in (0, 1], got {}",
        options.damping
    );
    assert!(options.tolerance > 0.0, "tolerance must be positive");
    let link_count = scenario.capacities.len();
    for route in &scenario.routes {
        for &l in &route.links {
            assert!(
                l < link_count,
                "route references link {l} outside capacity vector of length {link_count}"
            );
        }
        let mut sorted = route.links.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "routes must be loop-free: link repeated within a route"
        );
        assert!(
            route.offered_erlangs.is_finite() && route.offered_erlangs >= 0.0,
            "offered load must be finite and non-negative"
        );
    }
    let total_offered: f64 = scenario.routes.iter().map(|r| r.offered_erlangs).sum();
    assert!(total_offered > 0.0, "scenario offers no traffic");
    assert_eq!(
        initial_blocking.len(),
        link_count,
        "initial blocking vector must cover every link"
    );
    assert!(
        initial_blocking.iter().all(|b| (0.0..=1.0).contains(b)),
        "initial blocking values must be probabilities"
    );

    let mut blocking = initial_blocking.to_vec();
    let mut iterations = 0;
    let mut converged = false;
    // Adaptive under-relaxation. Under heavy overload the Picard map has
    // a negative slope of magnitude near (or beyond) the stability limit
    // at the fixed point — the classic reduced-load period-2 oscillation
    // — where any fixed damping above 2/(1+|slope|) cycles forever and
    // damping *at* the limit converges only like 1/n. Oscillation is
    // detected by the update direction reversing between iterations
    // (negative dot product); each detection halves θ and lowers a
    // ceiling that the grow-back path may never exceed again, so θ
    // settles just inside the stable region (near slope 0) while easy
    // monotone instances keep running at full speed.
    let mut theta = options.damping;
    let mut theta_ceiling = options.damping;
    let mut prev_update: Vec<f64> = Vec::new();
    while iterations < options.max_iterations {
        iterations += 1;
        // Eq. (20)/(22): reduced loads from the current blocking estimates.
        let mut reduced = vec![0.0f64; link_count];
        for route in &scenario.routes {
            if route.offered_erlangs == 0.0 {
                continue;
            }
            // Π over the whole route, divided out per link below. Guard the
            // division when some (1 − B_m) is ~0 by recomputing directly.
            for (i, &l) in route.links.iter().enumerate() {
                let mut thinned = route.offered_erlangs;
                for (j, &m) in route.links.iter().enumerate() {
                    if i != j {
                        thinned *= 1.0 - blocking[m];
                    }
                }
                reduced[l] += thinned;
            }
        }
        // Eq. (21): new blocking from the link model. Convergence is
        // judged on the *undamped* residual |L(v) − B| so shrinking θ can
        // never fake convergence.
        let fresh: Vec<f64> = (0..link_count)
            .map(|l| blocking_fn(l, reduced[l], scenario.capacities[l]))
            .collect();
        let residual = fresh
            .iter()
            .zip(&blocking)
            .map(|(f, b)| (f - b).abs())
            .fold(0.0f64, f64::max);
        if residual < options.tolerance {
            blocking = fresh;
            converged = true;
            break;
        }
        let update: Vec<f64> = fresh.iter().zip(&blocking).map(|(f, b)| f - b).collect();
        let oscillating = !prev_update.is_empty()
            && prev_update
                .iter()
                .zip(&update)
                .map(|(p, u)| p * u)
                .sum::<f64>()
                < 0.0;
        for l in 0..link_count {
            blocking[l] += theta * update[l];
        }
        if oscillating {
            theta_ceiling = (theta * 0.9).max(1e-3);
            theta = (theta * 0.5).max(1e-3);
        } else {
            theta = (theta * 1.05).min(theta_ceiling);
        }
        prev_update = update;
    }

    // Eq. (17): route rejection under link independence.
    let route_rejection: Vec<f64> = scenario
        .routes
        .iter()
        .map(|r| 1.0 - r.links.iter().map(|&l| 1.0 - blocking[l]).product::<f64>())
        .collect();
    // Eq. (15): traffic-weighted admission probability.
    let admitted: f64 = scenario
        .routes
        .iter()
        .zip(&route_rejection)
        .map(|(r, rej)| r.offered_erlangs * (1.0 - rej))
        .sum();
    ApPrediction {
        admission_probability: admitted / total_offered,
        link_blocking: blocking,
        route_rejection,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RouteLoad;

    /// Single route over a single link: the fixed point must reproduce
    /// plain Erlang-B.
    #[test]
    fn single_link_is_erlang_b() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0],
                offered_erlangs: 250.0,
            }],
            capacities: vec![312],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        assert!(p.converged);
        let expected = 1.0 - erlang_b(250.0, 312);
        assert!(
            (p.admission_probability - expected).abs() < 1e-9,
            "{} vs {}",
            p.admission_probability,
            expected
        );
        assert_eq!(p.route_rejection.len(), 1);
    }

    /// Two disjoint routes do not interact: AP is the load-weighted mean of
    /// their independent Erlang-B admissions.
    #[test]
    fn disjoint_routes_average() {
        let scenario = TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![0],
                    offered_erlangs: 100.0,
                },
                RouteLoad {
                    links: vec![1],
                    offered_erlangs: 300.0,
                },
            ],
            capacities: vec![100, 100],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        let a0 = 1.0 - erlang_b(100.0, 100);
        let a1 = 1.0 - erlang_b(300.0, 100);
        let expected = (100.0 * a0 + 300.0 * a1) / 400.0;
        assert!((p.admission_probability - expected).abs() < 1e-9);
    }

    /// A two-link tandem route must reject more than either link alone,
    /// and the thinning must reduce the load each link sees.
    #[test]
    fn tandem_route_thinning() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0, 1],
                offered_erlangs: 320.0,
            }],
            capacities: vec![312, 312],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        assert!(p.converged);
        let single = erlang_b(320.0, 312);
        // Each link sees *thinned* load, so per-link blocking < isolated value.
        assert!(p.link_blocking[0] < single);
        assert!((p.link_blocking[0] - p.link_blocking[1]).abs() < 1e-9);
        // But the route rejects more than one isolated (thinned) link.
        assert!(p.route_rejection[0] > p.link_blocking[0]);
        // Consistency: rejection = 1 − (1 − B)².
        let b = p.link_blocking[0];
        assert!((p.route_rejection[0] - (1.0 - (1.0 - b) * (1.0 - b))).abs() < 1e-12);
    }

    /// A shared bottleneck splits capacity between competing routes.
    #[test]
    fn shared_bottleneck_couples_routes() {
        let scenario = TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![0, 1],
                    offered_erlangs: 200.0,
                },
                RouteLoad {
                    links: vec![0, 2],
                    offered_erlangs: 200.0,
                },
            ],
            capacities: vec![312, 10_000, 10_000],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        assert!(p.converged);
        // Link 0 carries the combined (thinned) 400 erlangs against 312
        // slots: substantial blocking; the private links see ~200 against
        // 10 000 slots: none.
        assert!(p.link_blocking[0] > 0.1);
        assert!(p.link_blocking[1] < 1e-12);
        let expected_ap = 1.0 - p.route_rejection[0];
        assert!((p.admission_probability - expected_ap).abs() < 1e-9);
    }

    #[test]
    fn uaa_and_erlang_agree_on_network() {
        let scenario = TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![0, 1],
                    offered_erlangs: 250.0,
                },
                RouteLoad {
                    links: vec![1, 2],
                    offered_erlangs: 180.0,
                },
            ],
            capacities: vec![312, 312, 312],
        };
        let a = predict_ap(&scenario, BlockingModel::ErlangB);
        let b = predict_ap(&scenario, BlockingModel::Uaa);
        assert!(
            (a.admission_probability - b.admission_probability).abs() < 0.01,
            "ErlangB {} vs UAA {}",
            a.admission_probability,
            b.admission_probability
        );
    }

    #[test]
    fn result_is_a_fixed_point() {
        let scenario = TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![0, 1],
                    offered_erlangs: 300.0,
                },
                RouteLoad {
                    links: vec![1],
                    offered_erlangs: 150.0,
                },
            ],
            capacities: vec![312, 312],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        assert!(p.converged);
        // Re-evaluate one Picard step at the solution: it must not move.
        let b = &p.link_blocking;
        let v0 = 300.0 * (1.0 - b[1]);
        let v1 = 300.0 * (1.0 - b[0]) + 150.0;
        assert!((erlang_b(v0, 312) - b[0]).abs() < 1e-7);
        assert!((erlang_b(v1, 312) - b[1]).abs() < 1e-7);
    }

    #[test]
    fn trivial_route_always_admitted() {
        let scenario = TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![],
                    offered_erlangs: 50.0,
                },
                RouteLoad {
                    links: vec![0],
                    offered_erlangs: 1_000.0,
                },
            ],
            capacities: vec![100],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        assert_eq!(p.route_rejection[0], 0.0);
        assert!(p.admission_probability > 50.0 / 1_050.0);
    }

    #[test]
    #[should_panic(expected = "outside capacity vector")]
    fn bad_link_reference_panics() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![5],
                offered_erlangs: 1.0,
            }],
            capacities: vec![100],
        };
        let _ = predict_ap(&scenario, BlockingModel::ErlangB);
    }

    #[test]
    #[should_panic(expected = "offers no traffic")]
    fn zero_traffic_panics() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0],
                offered_erlangs: 0.0,
            }],
            capacities: vec![100],
        };
        let _ = predict_ap(&scenario, BlockingModel::ErlangB);
    }

    #[test]
    fn damping_options_respected() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0],
                offered_erlangs: 400.0,
            }],
            capacities: vec![312],
        };
        let fast = predict_ap_with(
            &scenario,
            BlockingModel::ErlangB,
            FixedPointOptions {
                damping: 1.0,
                ..Default::default()
            },
        );
        let slow = predict_ap_with(
            &scenario,
            BlockingModel::ErlangB,
            FixedPointOptions {
                damping: 0.1,
                ..Default::default()
            },
        );
        assert!((fast.admission_probability - slow.admission_probability).abs() < 1e-8);
        assert!(fast.iterations <= slow.iterations);
    }

    #[test]
    fn warm_start_from_solution_converges_immediately() {
        let scenario = TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![0, 1],
                    offered_erlangs: 300.0,
                },
                RouteLoad {
                    links: vec![1],
                    offered_erlangs: 150.0,
                },
            ],
            capacities: vec![312, 312],
        };
        let opts = FixedPointOptions::default();
        let blocking_fn =
            |_: usize, load: f64, servers: u32| BlockingModel::ErlangB.blocking(load, servers);
        let cold = predict_ap_fn(&scenario, blocking_fn, opts);
        assert!(cold.converged);
        let warm = predict_ap_fn_from(&scenario, blocking_fn, opts, &cold.link_blocking);
        assert!(warm.converged);
        // Restarting at the fixed point must terminate at once and agree.
        assert!(warm.iterations <= 2, "took {} iterations", warm.iterations);
        assert!(
            (warm.admission_probability - cold.admission_probability).abs() < 1e-8,
            "warm {} vs cold {}",
            warm.admission_probability,
            cold.admission_probability
        );
    }

    #[test]
    fn warm_start_near_solution_beats_cold_start() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0, 1],
                offered_erlangs: 350.0,
            }],
            capacities: vec![312, 312],
        };
        let opts = FixedPointOptions::default();
        let blocking_fn =
            |_: usize, load: f64, servers: u32| BlockingModel::ErlangB.blocking(load, servers);
        let cold = predict_ap_fn(&scenario, blocking_fn, opts);
        // A nearby load's solution is a realistic warm start.
        let nearby = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0, 1],
                offered_erlangs: 345.0,
            }],
            capacities: vec![312, 312],
        };
        let seed = predict_ap_fn(&nearby, blocking_fn, opts);
        let warm = predict_ap_fn_from(&scenario, blocking_fn, opts, &seed.link_blocking);
        assert!(warm.converged);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!((warm.admission_probability - cold.admission_probability).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "cover every link")]
    fn warm_start_length_mismatch_panics() {
        let scenario = TrafficScenario {
            routes: vec![RouteLoad {
                links: vec![0],
                offered_erlangs: 10.0,
            }],
            capacities: vec![100],
        };
        let _ = predict_ap_fn_from(
            &scenario,
            |_, load, servers| BlockingModel::ErlangB.blocking(load, servers),
            FixedPointOptions::default(),
            &[0.0, 0.0],
        );
    }

    #[test]
    fn batch_matches_serial_bit_for_bit_for_any_jobs() {
        let scenario = |load: f64| TrafficScenario {
            routes: vec![
                RouteLoad {
                    links: vec![0, 1],
                    offered_erlangs: load,
                },
                RouteLoad {
                    links: vec![1],
                    offered_erlangs: load / 2.0,
                },
            ],
            capacities: vec![312, 200],
        };
        let cases: Vec<(TrafficScenario, BlockingModel)> = [10.0, 120.0, 250.0, 400.0]
            .iter()
            .flat_map(|&load| {
                [BlockingModel::ErlangB, BlockingModel::Uaa]
                    .into_iter()
                    .map(move |m| (scenario(load), m))
            })
            .collect();
        let serial: Vec<ApPrediction> = cases.iter().map(|(s, m)| predict_ap(s, *m)).collect();
        for jobs in [1, 2, 5] {
            assert_eq!(predict_ap_batch(jobs, &cases), serial, "jobs={jobs}");
        }
    }
}
