//! Building traffic scenarios from topologies (Appendix A.1).
//!
//! The fixed point consumes an abstract [`TrafficScenario`]: routes as
//! link-index lists with offered loads in erlangs, plus per-link capacities
//! in flow slots. The builders here derive those from a topology and the
//! §5.1 traffic parameters for the two systems the paper analyses —
//! `<ED,1>` (uniform load split over the `K` fixed routes) and `SP` (all
//! load on the shortest route, eq. 14) — and extend the analysis to
//! `<ED,R>` retrials.

use crate::{predict_ap, ApPrediction, BlockingModel};
use anycast_net::{topologies, AnycastGroup, Bandwidth, NodeId, RouteTable, Topology};
use serde::{Deserialize, Serialize};

/// One fixed route with its offered traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteLoad {
    /// Indices of the links the route crosses (dense link ids).
    pub links: Vec<usize>,
    /// Offered traffic intensity `ρ_{s,r}` in erlangs.
    pub offered_erlangs: f64,
}

/// The abstract input of the fixed-point model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficScenario {
    /// All routes carrying traffic. For the builders in this module the
    /// order is source-major, member-minor (`routes[s·K + i]` is source `s`
    /// to member `i`).
    pub routes: Vec<RouteLoad>,
    /// Per-link capacity in flow slots (`C_l`).
    pub capacities: Vec<u32>,
}

/// The systems Appendix A derives admission probabilities for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalyzedSystem {
    /// `<ED,1>`: load split uniformly over the `K` fixed routes.
    Ed1,
    /// `SP`: all load offered to the shortest route (eq. 14).
    Sp,
}

/// Traffic parameters for scenario construction (§5.1 defaults available
/// via [`ScenarioSpec::paper_defaults`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Total request rate λ in flows/second.
    pub lambda: f64,
    /// Mean flow lifetime in seconds.
    pub mean_holding_secs: f64,
    /// Per-flow bandwidth demand.
    pub flow_bandwidth: Bandwidth,
    /// Fraction of each link reserved for anycast flows.
    pub anycast_fraction: f64,
    /// Capacity for links whose topology capacity is zero.
    pub default_link_capacity: Bandwidth,
    /// The anycast group members.
    pub group_members: Vec<NodeId>,
    /// The source routers.
    pub sources: Vec<NodeId>,
}

impl ScenarioSpec {
    /// The §5.1 parameters on the MCI backbone.
    pub fn paper_defaults(lambda: f64) -> Self {
        ScenarioSpec {
            lambda,
            mean_holding_secs: 180.0,
            flow_bandwidth: Bandwidth::from_kbps(64),
            anycast_fraction: 0.2,
            default_link_capacity: Bandwidth::from_mbps(100),
            group_members: topologies::MCI_GROUP_MEMBERS.map(NodeId::new).to_vec(),
            sources: topologies::mci_source_nodes(),
        }
    }

    /// Offered intensity per source, `ρ_s = (λ/|S|)·(1/μ)` erlangs.
    pub fn per_source_erlangs(&self) -> f64 {
        self.lambda * self.mean_holding_secs / self.sources.len() as f64
    }
}

/// Builds the fixed-point input for `system` from a topology and traffic
/// spec.
///
/// Routes are ordered source-major, member-minor. Under `Sp` the non-
/// shortest routes are present with zero load so route indices line up
/// across systems.
///
/// # Panics
///
/// Panics if the group or sources are invalid for the topology, or the
/// flow bandwidth is zero.
pub fn build_scenario(
    topo: &Topology,
    spec: &ScenarioSpec,
    system: AnalyzedSystem,
) -> TrafficScenario {
    assert!(
        !spec.flow_bandwidth.is_zero(),
        "flow bandwidth must be positive"
    );
    assert!(!spec.sources.is_empty(), "need at least one source");
    let group = AnycastGroup::new("G", spec.group_members.iter().copied())
        .expect("group must be non-empty");
    let table = RouteTable::shortest_paths(topo, &group);
    let k = group.len();
    let rho_s = spec.per_source_erlangs();

    let capacities: Vec<u32> = topo
        .links()
        .map(|l| {
            let base = if l.capacity().is_zero() {
                spec.default_link_capacity
            } else {
                l.capacity()
            };
            let partition = base.scaled(spec.anycast_fraction);
            u32::try_from(partition.saturating_div(spec.flow_bandwidth))
                .expect("links hold fewer than 2^32 flows")
        })
        .collect();

    let mut routes = Vec::with_capacity(spec.sources.len() * k);
    for &s in &spec.sources {
        let nearest = table
            .nearest_member(s)
            .expect("scenario sources are nodes of the topology");
        let paths = table
            .routes_from(s)
            .expect("scenario sources are nodes of the topology");
        for (i, path) in paths.iter().enumerate() {
            let offered = match system {
                AnalyzedSystem::Ed1 => rho_s / k as f64,
                AnalyzedSystem::Sp => {
                    if i == nearest {
                        rho_s
                    } else {
                        0.0
                    }
                }
            };
            routes.push(RouteLoad {
                links: path.links().iter().map(|l| l.index()).collect(),
                offered_erlangs: offered,
            });
        }
    }
    TrafficScenario { routes, capacities }
}

/// Convenience: [`build_scenario`] with [`ScenarioSpec::paper_defaults`].
pub fn build_paper_scenario(
    topo: &Topology,
    lambda: f64,
    system: AnalyzedSystem,
) -> TrafficScenario {
    build_scenario(topo, &ScenarioSpec::paper_defaults(lambda), system)
}

/// One service of a multi-group analytical scenario (extension — Appendix
/// A models a single group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupTraffic {
    /// The group's member routers.
    pub members: Vec<NodeId>,
    /// Relative share of the total request stream (must be positive).
    pub share: f64,
}

/// Builds the fixed-point input for several anycast services sharing the
/// network (extension beyond the paper's single group).
///
/// Each group's share of the total load is split per `system` over its
/// own fixed routes; all routes compete for the same link capacities.
/// Routes are ordered group-major, then source-major, member-minor.
///
/// # Panics
///
/// Panics if `groups` is empty, a share is non-positive, or any group is
/// invalid for the topology.
pub fn build_multigroup_scenario(
    topo: &Topology,
    spec: &ScenarioSpec,
    groups: &[GroupTraffic],
    system: AnalyzedSystem,
) -> TrafficScenario {
    assert!(!groups.is_empty(), "need at least one group");
    let total_share: f64 = groups
        .iter()
        .map(|g| {
            assert!(
                g.share.is_finite() && g.share > 0.0,
                "group shares must be positive and finite"
            );
            g.share
        })
        .sum();
    let mut combined: Option<TrafficScenario> = None;
    for g in groups {
        let sub_spec = ScenarioSpec {
            lambda: spec.lambda * g.share / total_share,
            group_members: g.members.clone(),
            ..spec.clone()
        };
        let scenario = build_scenario(topo, &sub_spec, system);
        combined = Some(match combined {
            None => scenario,
            Some(mut acc) => {
                debug_assert_eq!(acc.capacities, scenario.capacities);
                acc.routes.extend(scenario.routes);
                acc
            }
        });
    }
    combined.expect("at least one group")
}

/// Extension beyond the paper: an approximate admission probability for
/// `<ED,R>` with `R ≥ 1` retrials.
///
/// Appendix A analyses `R = 1` only. For larger `R`, retrials both help
/// (another chance per request) and hurt (successful retries add carried
/// load, raising everyone's blocking), so the extension couples two fixed
/// points:
///
/// 1. **Retrial model.** Under ED, a request visits members in a uniform
///    random order without replacement, stopping at the first success or
///    after `R` tries. With route rejections `L_{s,1..K}`, the probability
///    that route `i` receives an attempt is
///    `q_i = (1/K) · Σ_{t=1}^{R} e_{t−1}(L_{s,−i}) / C(K−1, t−1)`
///    (the preceding `t−1` members are a uniform subset of the others and
///    all must fail), and the request is rejected with probability
///    `e_R(L_s)/C(K,R)` — elementary symmetric means over subsets.
/// 2. **Load model.** Route `i` is therefore *offered* `ρ_s · q_i`
///    erlangs; the reduced-load fixed point maps offered loads back to
///    route rejections.
///
/// The two are iterated (damped) to a joint fixed point. Residual error
/// comes from the link-independence assumption and from ignoring the
/// correlation between consecutive attempts of one request sharing links;
/// the integration tests bound it against simulation.
///
/// Returns the prediction at the joint fixed point (its
/// `admission_probability` field is the traffic-weighted per-attempt
/// value; the first tuple element is the per-*request* AP, which is the
/// figure-of-merit).
///
/// # Panics
///
/// Panics if `r` is zero.
pub fn approx_ap_ed_r(
    topo: &Topology,
    spec: &ScenarioSpec,
    r: u32,
    model: BlockingModel,
) -> (f64, ApPrediction) {
    assert!(r >= 1, "at least one try is required");
    let mut scenario = build_scenario(topo, spec, AnalyzedSystem::Ed1);
    let k = spec.group_members.len();
    let r_eff = (r as usize).min(k);
    let rho_s = spec.per_source_erlangs();
    let sources = spec.sources.len();
    let mut prediction = predict_ap(&scenario, model);
    for _ in 0..200 {
        // Retry-aware offered loads from the current rejection estimates.
        let mut max_delta: f64 = 0.0;
        for s in 0..sources {
            let losses: Vec<f64> = prediction.route_rejection[s * k..(s + 1) * k].to_vec();
            for i in 0..k {
                let q = attempt_probability(&losses, i, r_eff);
                let offered = rho_s * q;
                let slot = &mut scenario.routes[s * k + i].offered_erlangs;
                let next = 0.5 * *slot + 0.5 * offered;
                max_delta = max_delta.max((next - *slot).abs());
                *slot = next;
            }
        }
        prediction = predict_ap(&scenario, model);
        if max_delta < 1e-9 * rho_s.max(1.0) {
            break;
        }
    }
    let mut reject_sum = 0.0;
    for s in 0..sources {
        let losses = &prediction.route_rejection[s * k..(s + 1) * k];
        reject_sum += subset_mean_product(losses, r_eff);
    }
    let ap = 1.0 - reject_sum / sources as f64;
    (ap, prediction)
}

/// `P(route i receives an attempt)` for a uniform without-replacement
/// visit order truncated at `r` tries: the preceding visitors are a
/// uniform subset of the other members and all must have failed.
fn attempt_probability(losses: &[f64], i: usize, r: usize) -> f64 {
    let k = losses.len();
    debug_assert!(r >= 1 && r <= k);
    let others: Vec<f64> = losses
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, &l)| l)
        .collect();
    let mut q = 0.0;
    for t in 1..=r {
        let mean_fail_product = if t == 1 {
            1.0
        } else {
            subset_mean_product(&others, t - 1)
        };
        q += mean_fail_product / k as f64;
    }
    q
}

/// Mean over all size-`r` subsets of the product of the selected values:
/// `e_r(x) / C(n, r)` via the generating-polynomial DP.
fn subset_mean_product(values: &[f64], r: usize) -> f64 {
    let n = values.len();
    assert!(r >= 1 && r <= n, "subset size out of range");
    // Coefficients of Π (1 + x_i t): coeff[j] = e_j.
    let mut coeff = vec![0.0; n + 1];
    coeff[0] = 1.0;
    for &x in values {
        for j in (1..=n).rev() {
            coeff[j] += coeff[j - 1] * x;
        }
    }
    let mut binom = 1.0;
    for j in 0..r {
        binom *= (n - j) as f64 / (j + 1) as f64;
    }
    coeff[r] / binom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_are_312_slots() {
        let topo = topologies::mci();
        let s = build_paper_scenario(&topo, 20.0, AnalyzedSystem::Ed1);
        assert_eq!(s.capacities.len(), topo.link_count());
        assert!(s.capacities.iter().all(|&c| c == 312));
    }

    #[test]
    fn ed1_splits_load_uniformly() {
        let topo = topologies::mci();
        let s = build_paper_scenario(&topo, 20.0, AnalyzedSystem::Ed1);
        // 9 sources × 5 members.
        assert_eq!(s.routes.len(), 45);
        let rho = 20.0 * 180.0 / 9.0 / 5.0;
        assert!(s
            .routes
            .iter()
            .all(|r| (r.offered_erlangs - rho).abs() < 1e-9));
    }

    #[test]
    fn sp_concentrates_load_on_nearest() {
        let topo = topologies::mci();
        let s = build_paper_scenario(&topo, 20.0, AnalyzedSystem::Sp);
        assert_eq!(s.routes.len(), 45);
        let rho_s = 20.0 * 180.0 / 9.0;
        for chunk in s.routes.chunks(5) {
            let loaded: Vec<&RouteLoad> =
                chunk.iter().filter(|r| r.offered_erlangs > 0.0).collect();
            assert_eq!(loaded.len(), 1, "exactly one loaded route per source");
            assert!((loaded[0].offered_erlangs - rho_s).abs() < 1e-9);
            // The loaded route is (one of) the shortest.
            let min_len = chunk.iter().map(|r| r.links.len()).min().unwrap();
            assert_eq!(loaded[0].links.len(), min_len);
        }
    }

    #[test]
    fn total_offered_load_matches_lambda() {
        let topo = topologies::mci();
        for system in [AnalyzedSystem::Ed1, AnalyzedSystem::Sp] {
            let s = build_paper_scenario(&topo, 35.0, system);
            let total: f64 = s.routes.iter().map(|r| r.offered_erlangs).sum();
            assert!((total - 35.0 * 180.0).abs() < 1e-6, "{system:?}: {total}");
        }
    }

    #[test]
    fn ed1_beats_sp_analytically_at_load() {
        // The headline analytical claim: spreading beats concentrating.
        let topo = topologies::mci();
        let ed = predict_ap(
            &build_paper_scenario(&topo, 35.0, AnalyzedSystem::Ed1),
            BlockingModel::ErlangB,
        );
        let sp = predict_ap(
            &build_paper_scenario(&topo, 35.0, AnalyzedSystem::Sp),
            BlockingModel::ErlangB,
        );
        assert!(ed.converged && sp.converged);
        assert!(
            ed.admission_probability > sp.admission_probability,
            "ED {} vs SP {}",
            ed.admission_probability,
            sp.admission_probability
        );
    }

    #[test]
    fn ap_decreases_in_lambda() {
        let topo = topologies::mci();
        let mut prev = 1.1;
        for lambda in [5.0, 20.0, 35.0, 50.0] {
            let p = predict_ap(
                &build_paper_scenario(&topo, lambda, AnalyzedSystem::Ed1),
                BlockingModel::ErlangB,
            );
            assert!(p.admission_probability < prev + 1e-12);
            prev = p.admission_probability;
        }
        assert!(prev < 0.8, "λ=50 must show real blocking, got {prev}");
    }

    #[test]
    fn subset_mean_product_hand_cases() {
        // r = 1: plain mean.
        assert!((subset_mean_product(&[0.1, 0.3, 0.5], 1) - 0.3).abs() < 1e-12);
        // r = n: full product.
        assert!((subset_mean_product(&[0.1, 0.3, 0.5], 3) - 0.015).abs() < 1e-12);
        // r = 2 of three: (0.03 + 0.05 + 0.15)/3.
        assert!(
            (subset_mean_product(&[0.1, 0.3, 0.5], 2) - (0.03 + 0.05 + 0.15) / 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn ed_r_extension_improves_with_r() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(35.0);
        let (ap1, base) = approx_ap_ed_r(&topo, &spec, 1, BlockingModel::ErlangB);
        let (ap2, _) = approx_ap_ed_r(&topo, &spec, 2, BlockingModel::ErlangB);
        let (ap5, _) = approx_ap_ed_r(&topo, &spec, 5, BlockingModel::ErlangB);
        let (ap9, _) = approx_ap_ed_r(&topo, &spec, 9, BlockingModel::ErlangB);
        assert!(base.converged);
        // R = 1 must agree with the plain fixed-point AP (uniform loads).
        assert!((ap1 - base.admission_probability).abs() < 1e-9);
        assert!(ap2 > ap1);
        assert!(ap5 > ap2);
        // R beyond K changes nothing.
        assert!((ap9 - ap5).abs() < 1e-12);
        // Diminishing returns: the 1→2 jump dwarfs the 2→5 jump's per-step gain.
        assert!(ap2 - ap1 > (ap5 - ap2) / 3.0);
    }

    #[test]
    fn multigroup_reduces_to_single_group() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(30.0);
        let single = build_scenario(&topo, &spec, AnalyzedSystem::Ed1);
        let multi = build_multigroup_scenario(
            &topo,
            &spec,
            &[GroupTraffic {
                members: spec.group_members.clone(),
                share: 7.0, // arbitrary: shares normalise
            }],
            AnalyzedSystem::Ed1,
        );
        assert_eq!(single, multi);
    }

    #[test]
    fn multigroup_total_load_is_preserved() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(30.0);
        let groups = [
            GroupTraffic {
                members: vec![NodeId::new(0), NodeId::new(8), NodeId::new(16)],
                share: 3.0,
            },
            GroupTraffic {
                members: vec![NodeId::new(4)],
                share: 1.0,
            },
        ];
        let s = build_multigroup_scenario(&topo, &spec, &groups, AnalyzedSystem::Ed1);
        let total: f64 = s.routes.iter().map(|r| r.offered_erlangs).sum();
        assert!((total - 30.0 * 180.0).abs() < 1e-6, "total {total}");
        // Route count: 9 sources × (3 + 1) members.
        assert_eq!(s.routes.len(), 9 * 4);
        let p = predict_ap(&s, BlockingModel::ErlangB);
        assert!(p.converged);
        assert!(p.admission_probability > 0.0 && p.admission_probability < 1.0);
    }

    #[test]
    fn multigroup_sparser_service_drags_ap_down() {
        // Analytical version of the multigroup ablation: replacing the
        // well-replicated group's traffic with single-site traffic lowers
        // the predicted AP at the same total load.
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(35.0);
        let replicated = build_multigroup_scenario(
            &topo,
            &spec,
            &[GroupTraffic {
                members: spec.group_members.clone(),
                share: 1.0,
            }],
            AnalyzedSystem::Ed1,
        );
        let half_unicast = build_multigroup_scenario(
            &topo,
            &spec,
            &[
                GroupTraffic {
                    members: spec.group_members.clone(),
                    share: 1.0,
                },
                GroupTraffic {
                    members: vec![NodeId::new(10)],
                    share: 1.0,
                },
            ],
            AnalyzedSystem::Ed1,
        );
        let a = predict_ap(&replicated, BlockingModel::ErlangB).admission_probability;
        let b = predict_ap(&half_unicast, BlockingModel::ErlangB).admission_probability;
        assert!(
            b < a,
            "unicast-heavy mix {b} must underperform replicated {a}"
        );
    }

    #[test]
    #[should_panic(expected = "shares must be positive")]
    fn multigroup_rejects_zero_share() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(5.0);
        let _ = build_multigroup_scenario(
            &topo,
            &spec,
            &[GroupTraffic {
                members: vec![NodeId::new(0)],
                share: 0.0,
            }],
            AnalyzedSystem::Ed1,
        );
    }

    #[test]
    fn spec_erlang_math() {
        let spec = ScenarioSpec::paper_defaults(50.0);
        assert!((spec.per_source_erlangs() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one try")]
    fn zero_retries_rejected() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(5.0);
        let _ = approx_ap_ed_r(&topo, &spec, 0, BlockingModel::ErlangB);
    }
}
