//! The uniform asymptotic approximation (UAA) of eqs. (23)–(29).

use crate::special::{erfc, erfcx};

/// Link blocking probability by the paper's uniform asymptotic
/// approximation — `B_l = L(v_l)` of eq. (25).
///
/// With `F(z) ≡ v(z−1) − C·ln z`, `V(z) ≡ v·z` and the saddle point
/// `z* = C/v` (eqs. 24 and 26, at which `V(z*) = C`):
///
/// ```text
/// B ≈ e^{F(z*)} / (M · √(2π·V(z*)))
/// M = ½·erfc(sgn(1−z*)·√(−F(z*)))
///     + (e^{F(z*)}/√(2π)) · ( 1/(√V(z*)·(1−z*)) − sgn(1−z*)/√(−2F(z*)) )
/// ```
///
/// As `z* → 1` both terms of the bracket diverge and cancel; the source
/// text's printed limit expression is corrupted, so we use the analytic
/// limit `M(1) = ½ + 2/(3·√(2π·C))` (obtained by series expansion of the
/// general formula; the `z* ≠ 1` branch converges to it) whenever
/// `|1 − z*|` is below a switchover threshold.
///
/// The approximation assumes `C ≥ 1` and `v = O(C)` (eqs. 23–24). It is
/// validated against the exact [`erlang_b`](crate::erlang_b) in this
/// module's tests; agreement is within a few percent over the paper's
/// whole operating range.
///
/// # Panics
///
/// Panics if `load` is negative/non-finite or `servers` is zero.
pub fn uaa_blocking(load: f64, servers: u32) -> f64 {
    assert!(
        load.is_finite() && load >= 0.0,
        "offered load must be finite and non-negative, got {load}"
    );
    assert!(servers >= 1, "UAA requires C ≥ 1 (eq. 23)");
    if load == 0.0 {
        return 0.0;
    }
    let v = load;
    let c = servers as f64;
    let z_star = c / v;
    let sqrt_2pi = (2.0 * std::f64::consts::PI).sqrt();
    // Near the critical point z* = 1 the generic bracket is a 0/0 cancel;
    // switch to the analytic limit.
    if (1.0 - z_star).abs() < 1e-4 {
        let m = 0.5 + 2.0 / (3.0 * sqrt_2pi * c.sqrt());
        return clamp_unit(1.0 / (m * sqrt_2pi * c.sqrt()));
    }
    let f = v * (z_star - 1.0) - c * z_star.ln(); // F(z*) ≤ 0
    if z_star < 1.0 {
        // Overload branch (sgn(1 − z*) = +1): every term of M carries a
        // factor e^{F}, which underflows long before the blocking becomes
        // negligible. Factor it out analytically with the scaled erfc:
        //   M = e^{F}·[ ½·erfcx(√(−F)) + (1/√2π)(1/(√C(1−z*)) − 1/√(−2F)) ]
        //   B = 1 / ( √(2πC) · [ … ] ).
        let bracket = 0.5 * erfcx((-f).sqrt())
            + (1.0 / sqrt_2pi) * (1.0 / (c.sqrt() * (1.0 - z_star)) - 1.0 / (-2.0 * f).sqrt());
        clamp_unit(1.0 / (sqrt_2pi * c.sqrt() * bracket))
    } else {
        // Underload branch (sgn(1 − z*) = −1): erfc(−√(−F)) → 2, M is
        // O(1), and only the numerator e^{F} is small — no cancellation.
        let ef = f.exp();
        let m = 0.5 * erfc(-(-f).sqrt())
            + (ef / sqrt_2pi) * (1.0 / (c.sqrt() * (1.0 - z_star)) + 1.0 / (-2.0 * f).sqrt());
        clamp_unit(ef / (m * sqrt_2pi * c.sqrt()))
    }
}

fn clamp_unit(x: f64) -> f64 {
    debug_assert!(!x.is_nan(), "UAA produced NaN");
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erlang_b;

    #[test]
    fn close_to_erlang_b_over_operating_range() {
        // The paper's links hold 312 flow slots; sweep offered load from
        // light to heavy overload.
        let c = 312u32;
        for &v in &[
            150.0, 200.0, 250.0, 280.0, 300.0, 310.0, 312.0, 315.0, 330.0, 360.0, 400.0, 500.0,
            800.0, 1500.0,
        ] {
            let exact = erlang_b(v, c);
            let approx = uaa_blocking(v, c);
            let err = (approx - exact).abs();
            let tol = 0.02 * exact.max(1e-3);
            assert!(
                err < tol,
                "v={v}, C={c}: UAA {approx} vs Erlang-B {exact} (err {err})"
            );
        }
    }

    #[test]
    fn close_to_erlang_b_for_smaller_links() {
        for &c in &[20u32, 50, 100] {
            for frac in [0.6, 0.9, 1.0, 1.1, 1.5, 2.5] {
                let v = c as f64 * frac;
                let exact = erlang_b(v, c);
                let approx = uaa_blocking(v, c);
                let err = (approx - exact).abs();
                assert!(
                    err < 0.05 * exact.max(2e-2),
                    "v={v}, C={c}: UAA {approx} vs Erlang-B {exact}"
                );
            }
        }
    }

    #[test]
    fn critical_point_is_continuous() {
        let c = 312u32;
        let at = uaa_blocking(312.0, c);
        let below = uaa_blocking(311.5, c);
        let above = uaa_blocking(312.5, c);
        assert!((at - below).abs() < 0.002, "at {at}, below {below}");
        assert!((at - above).abs() < 0.002, "at {at}, above {above}");
    }

    #[test]
    fn light_load_blocks_nothing() {
        assert!(uaa_blocking(10.0, 312) < 1e-30);
        assert_eq!(uaa_blocking(0.0, 312), 0.0);
    }

    #[test]
    fn heavy_load_approaches_loss_ratio() {
        let b = uaa_blocking(3_000.0, 312);
        assert!((b - (1.0 - 312.0 / 3_000.0)).abs() < 0.02, "b={b}");
    }

    #[test]
    fn always_a_probability() {
        for i in 0..2_000 {
            let v = i as f64;
            let b = uaa_blocking(v, 312);
            assert!((0.0..=1.0).contains(&b), "v={v}: {b}");
        }
    }

    #[test]
    fn monotone_in_load_over_grid() {
        let mut prev = 0.0;
        for i in 1..400 {
            let b = uaa_blocking(i as f64 * 5.0, 312);
            assert!(
                b >= prev - 1e-9,
                "UAA not monotone at v={}: {b} < {prev}",
                i * 5
            );
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "C ≥ 1")]
    fn zero_servers_rejected() {
        let _ = uaa_blocking(1.0, 0);
    }
}
