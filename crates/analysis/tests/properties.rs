//! Property-based tests for the analytical model.

use anycast_analysis::scenario::{RouteLoad, TrafficScenario};
use anycast_analysis::{erfc, erlang_b, predict_ap, uaa_blocking, BlockingModel};
use proptest::prelude::*;

proptest! {
    /// Erlang-B is a probability, monotone increasing in load and
    /// decreasing in servers.
    #[test]
    fn erlang_b_shape(load in 0.0f64..5_000.0, servers in 1u32..600) {
        let b = erlang_b(load, servers);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(erlang_b(load + 1.0, servers) >= b - 1e-12);
        prop_assert!(erlang_b(load, servers + 1) <= b + 1e-12);
    }

    /// Erlang-B satisfies its own defining recursion.
    #[test]
    fn erlang_b_recursion_holds(load in 0.01f64..2_000.0, servers in 1u32..400) {
        let prev = erlang_b(load, servers - 1);
        let cur = erlang_b(load, servers);
        let expected = load * prev / (servers as f64 + load * prev);
        prop_assert!((cur - expected).abs() < 1e-12);
    }

    /// UAA stays within a bounded absolute error of exact Erlang-B across
    /// the asymptotic regime it is built for (C ≥ 20, v = O(C)).
    #[test]
    fn uaa_tracks_erlang(servers in 20u32..500, ratio in 0.3f64..3.0) {
        let load = servers as f64 * ratio;
        let exact = erlang_b(load, servers);
        let approx = uaa_blocking(load, servers);
        prop_assert!((0.0..=1.0).contains(&approx));
        prop_assert!(
            (approx - exact).abs() < 0.02 + 0.03 * exact,
            "C={servers} v={load}: UAA {approx} vs {exact}"
        );
    }

    /// erfc stays within [0, 2], is monotone decreasing, and satisfies
    /// the reflection identity erfc(−x) = 2 − erfc(x).
    #[test]
    fn erfc_shape(x in -8.0f64..8.0) {
        let v = erfc(x);
        prop_assert!((0.0..=2.0).contains(&v));
        prop_assert!(erfc(x + 0.01) <= v + 1e-12);
        prop_assert!((erfc(-x) - (2.0 - v)).abs() < 3e-7);
    }

    /// The fixed point always converges on random single-group scenarios,
    /// produces blocking in [0, 1], and its AP is consistent with the
    /// per-route rejections it reports.
    #[test]
    fn fixed_point_consistency(
        routes in prop::collection::vec(
            (prop::collection::vec(0usize..12, 1..5), 0.1f64..600.0),
            1..12,
        ),
        capacity in 10u32..400,
    ) {
        let scenario = TrafficScenario {
            routes: routes
                .iter()
                .map(|(links, load)| {
                    // Routes are loop-free by construction in the real
                    // system; dedup the random draw accordingly.
                    let mut links = links.clone();
                    links.sort_unstable();
                    links.dedup();
                    RouteLoad {
                        links,
                        offered_erlangs: *load,
                    }
                })
                .collect(),
            capacities: vec![capacity; 12],
        };
        let p = predict_ap(&scenario, BlockingModel::ErlangB);
        prop_assert!(p.converged, "did not converge in {} iterations", p.iterations);
        for &b in &p.link_blocking {
            prop_assert!((0.0..=1.0).contains(&b));
        }
        for (route, &rej) in scenario.routes.iter().zip(&p.route_rejection) {
            prop_assert!((0.0..=1.0).contains(&rej));
            let direct: f64 =
                1.0 - route.links.iter().map(|&l| 1.0 - p.link_blocking[l]).product::<f64>();
            prop_assert!((rej - direct).abs() < 1e-12);
        }
        let total: f64 = scenario.routes.iter().map(|r| r.offered_erlangs).sum();
        let admitted: f64 = scenario
            .routes
            .iter()
            .zip(&p.route_rejection)
            .map(|(r, rej)| r.offered_erlangs * (1.0 - rej))
            .sum();
        prop_assert!((p.admission_probability - admitted / total).abs() < 1e-12);
    }

    /// Adding load to a scenario never increases the predicted AP.
    #[test]
    fn ap_monotone_in_total_load(base_load in 1.0f64..300.0, bump in 1.0f64..300.0) {
        let make = |load: f64| TrafficScenario {
            routes: vec![
                RouteLoad { links: vec![0, 1], offered_erlangs: load },
                RouteLoad { links: vec![1, 2], offered_erlangs: load },
            ],
            capacities: vec![312; 3],
        };
        let a = predict_ap(&make(base_load), BlockingModel::ErlangB);
        let b = predict_ap(&make(base_load + bump), BlockingModel::ErlangB);
        prop_assert!(
            b.admission_probability <= a.admission_probability + 1e-9,
            "AP rose from {} to {}",
            a.admission_probability,
            b.admission_probability
        );
    }
}
