//! Property-based tests anchoring the fast path to the validated
//! Appendix-A fixed point and pinning calibration determinism.

use anycast_analysis::scenario::{build_scenario, AnalyzedSystem, ScenarioSpec};
use anycast_analysis::{predict_ap, BlockingModel};
use anycast_dac::calibrate::CalibrationBurst;
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_estimator::{CalibrationOptions, Estimator};
use anycast_net::topologies;
use proptest::prelude::*;

proptest! {
    /// The estimator's analytic mode *is* the Appendix-A analysis: at any
    /// load, `<ED,1>` and SP agree with `predict_ap` to fixed-point
    /// tolerance, report no residual, and stay probabilities.
    #[test]
    fn analytic_mode_matches_appendix_a(lambda in 0.5f64..60.0, sp in any::<bool>()) {
        let topo = topologies::mci();
        let system = if sp { AnalyzedSystem::Sp } else { AnalyzedSystem::Ed1 };
        let spec = ScenarioSpec::paper_defaults(lambda);
        let est = Estimator::analytic(&topo, &spec, system).predict(lambda);
        let reference = predict_ap(
            &build_scenario(&topo, &spec, system),
            BlockingModel::ErlangB,
        );
        prop_assert!((0.0..=1.0).contains(&est.admission_probability));
        prop_assert_eq!(est.residual_correction, 0.0);
        prop_assert!(
            (est.admission_probability - reference.admission_probability).abs() < 1e-6,
            "{:?} λ={}: estimator {} vs fixed point {}",
            system,
            lambda,
            est.admission_probability,
            reference.admission_probability
        );
    }

    /// Analytic-mode batches are a pure per-λ map: bit-identical for
    /// every worker count, at any grid shape.
    #[test]
    fn analytic_batch_is_jobs_invariant(
        start in 1.0f64..20.0,
        step in 1.0f64..10.0,
        cells in 2usize..6,
        jobs in 2usize..5,
    ) {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(1.0);
        let est = Estimator::analytic(&topo, &spec, AnalyzedSystem::Ed1);
        let grid: Vec<f64> = (0..cells).map(|i| start + step * i as f64).collect();
        prop_assert_eq!(est.predict_batch(jobs, &grid), est.predict_batch(1, &grid));
    }
}

/// Calibration is a pure function of `(topo, base, options)`: repeated
/// runs give byte-identical tables (canonical JSON) and bit-identical
/// predictions regardless of the worker count used for either stage.
#[test]
fn calibration_and_prediction_are_deterministic() {
    let topo = topologies::mci();
    let options = CalibrationOptions {
        anchors: vec![10.0, 40.0],
        burst: CalibrationBurst {
            warmup_secs: 5.0,
            measure_secs: 15.0,
            ..CalibrationBurst::default()
        },
        ..CalibrationOptions::default()
    };
    for seed in [options.seed, 7] {
        let options = CalibrationOptions {
            seed,
            ..options.clone()
        };
        let parallel_options = CalibrationOptions {
            jobs: 3,
            ..options.clone()
        };
        let base =
            ExperimentConfig::paper_defaults(10.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
        let a = Estimator::calibrated(&topo, &base, &options);
        let b = Estimator::calibrated(&topo, &base, &parallel_options);
        assert_eq!(
            a.calibration().expect("table").canonical_json(),
            b.calibration().expect("table").canonical_json(),
            "seed {seed}: tables must be byte-identical for any jobs"
        );
        let grid = [8.0, 20.0, 33.0, 47.0];
        assert_eq!(
            a.predict_batch(1, &grid),
            b.predict_batch(4, &grid),
            "seed {seed}: predictions must be bit-identical for any jobs"
        );
    }
}
