//! Parsimon-style link-decomposition fast path for anycast admission
//! control.
//!
//! The full discrete-event simulation answers "what AP does `<WD/D+H,2>`
//! reach at λ = 27?" in minutes; the Appendix-A analysis answers it in
//! milliseconds but only for `<ED,1>` and SP, whose selection behaviour
//! has a closed form. This crate closes the gap the way Parsimon does
//! for data-centre networks — *decompose the network into links,
//! calibrate each link from short cheap simulations, compose the parts
//! analytically*:
//!
//! 1. [`calibrate`](calibrate::calibrate) runs one short traced DES burst
//!    per anchor λ (seconds of simulated time, not the paper's 5400 s)
//!    and folds the event stream into a [`CalibrationTable`]: per-source
//!    destination-selection shares, per-link occupancy peakedness, and
//!    the measured AP at each anchor.
//! 2. [`Estimator`] substitutes those calibrated quantities into the
//!    reduced-load fixed point (`anycast-analysis::predict_ap_fn`):
//!    Fredericks–Hayward peaked blocking per link, the without-
//!    replacement retrial walk of [`compose_retrials`] for the DAC
//!    systems, inclusion–exclusion ([`any_route_clear`]) for GDI, and an
//!    anchor-interpolated residual correction for everything the
//!    link-independence assumption still misses.
//! 3. [`Estimator::predict_batch`] fans a λ grid over the worker pool —
//!    a full five-system sweep costs milliseconds after calibration,
//!    and `bench_pr8` cross-validates every cell against the full DES.
//!
//! [`Estimator::analytic`] runs the same machinery with closed-form
//! weights and unit peakedness, reducing exactly to the Appendix-A
//! analysis — the property tests pin the two against each other, so the
//! calibrated path is anchored to the already-validated fixed point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod compose;
pub mod estimate;
pub mod table;

pub use calibrate::{calibrate, CalibrationOptions};
pub use compose::{any_route_clear, compose_retrials, RetrialComposition};
pub use estimate::{Estimate, Estimator};
pub use table::{AnchorProfile, CalibrationTable, LinkProfile, ShareKind, SourceProfile};
