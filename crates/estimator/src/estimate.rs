//! The composition engine: calibrated (or closed-form) per-link blocking
//! terms + per-source composition rules → admission-probability
//! predictions at any λ, in milliseconds.
//!
//! The engine runs the reduced-load fixed point of Appendix A
//! ([`predict_ap_fn`]) with three substitutions relative to the
//! closed-form `<ED,1>`/SP analysis:
//!
//! 1. **Calibrated selection weights.** Offered route loads come from the
//!    burst-measured per-source shares — first-attempt shares for the DAC
//!    policies (WD/D+H and WD/D+B bias the draw; ED's shares are
//!    uniform), admitted shares for GDI's effective placement.
//! 2. **Calibrated link blocking.** Each link's Erlang-B term gets the
//!    Fredericks–Hayward peakedness correction fitted from the burst's
//!    occupancy series: blocking `≈ ErlangB(v/z, C/z)` with
//!    `z = Var/E`. `z` is clamped to `[1, 2]`: carried-occupancy
//!    truncation pushes measured `z` below 1 at overload, an artifact of
//!    sampling *admitted* rather than *offered* flows that would bias
//!    blocking the wrong way, and `z = 1` recovers exact Erlang-B.
//! 3. **Composition + residual.** Route rejections compose into
//!    per-request outcomes via the retrial walk (DAC/SP) or
//!    inclusion–exclusion (GDI); what the composition still misses
//!    (attempt correlation, GDI's any-path freedom) is absorbed by an
//!    anchor-interpolated residual `measured_ap − raw_composed_ap`.
//!
//! [`Estimator::analytic`] disables all three substitutions and reduces
//! exactly to `anycast-analysis::predict_ap` — the property tests pin the
//! two against each other.

use crate::calibrate::{calibrate, CalibrationOptions};
use crate::compose::{any_route_clear, compose_retrials};
use crate::table::{CalibrationTable, ShareKind};
use anycast_analysis::scenario::{build_scenario, AnalyzedSystem, ScenarioSpec, TrafficScenario};
use anycast_analysis::{erlang_b, predict_ap_fn, predict_ap_fn_from, FixedPointOptions};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_net::Topology;

/// Outer-loop cap for the retrial↔load coupling (same budget as
/// `approx_ap_ed_r`).
const MAX_OUTER_ITERATIONS: u32 = 200;
/// Damping of the offered-load update in the outer loop. The coupled
/// map is a mild contraction on every paper scenario (retrials add at
/// most `(r−1)/r` of the first-attempt load), so the undamped update
/// converges and halves the round count; non-convergence is reported
/// through [`Estimate::converged`], not hidden.
const OUTER_DAMPING: f64 = 1.0;
/// Outer-loop convergence: relative change in offered route loads. Far
/// below the 0.05 AP error budget; tightening it further only spends
/// fixed-point iterations the residual correction would absorb anyway.
const OUTER_TOLERANCE: f64 = 1e-7;
/// Inner fixed-point tolerance. The default (1e-10) is for the
/// analytical tables; the estimator composes through a retrial walk and
/// a residual correction, so 1e-8 is already two orders below anything
/// observable in the output.
const INNER_TOLERANCE: f64 = 1e-8;
/// Inner iteration budget per outer round during the joint phase of the
/// retrial coupling (phase 2 lifts the cap to polish the solution).
const JOINT_INNER_BUDGET: u32 = 25;
/// Peakedness clamp: `[1, 2]`. Below 1 is a carried-load sampling
/// artifact; above 2 the short bursts are too noisy to trust.
const PEAKEDNESS_FLOOR: f64 = 1.0;
const PEAKEDNESS_CEILING: f64 = 2.0;

/// How per-route rejections compose into a per-request outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Composition {
    /// Without-replacement retrial walk over the group (DAC systems; SP
    /// is the single-candidate special case).
    Retrial {
        /// Maximum destinations tried per request.
        r: usize,
    },
    /// Admit iff any candidate route is clear (GDI).
    AnyRoute,
}

/// Where selection weights and peakedness come from.
#[derive(Debug, Clone)]
enum Mode {
    /// Closed-form weights, unit peakedness, no residual — the Appendix-A
    /// analysis verbatim.
    Analytic(AnalyzedSystem),
    /// Burst-calibrated table.
    Calibrated(CalibrationTable),
}

/// One prediction of the fast path.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Request rate the prediction is for.
    pub lambda: f64,
    /// Predicted admission probability (residual-corrected, clamped to
    /// `[0, 1]`).
    pub admission_probability: f64,
    /// The composed prediction before the residual correction.
    pub raw_admission_probability: f64,
    /// The anchor-interpolated residual applied (zero in analytic mode).
    pub residual_correction: f64,
    /// Predicted mean destinations tried per request.
    pub mean_tries: f64,
    /// Predicted mean retrials per request (tries beyond the first).
    pub mean_retrials: f64,
    /// Converged per-link blocking probabilities — where the network
    /// saturates first.
    pub link_saturation: Vec<f64>,
    /// Total inner fixed-point iterations spent.
    pub iterations: u32,
    /// Whether every inner fixed point met its tolerance.
    pub converged: bool,
}

/// The parsimon-style fast path: predicts AP, retrials and per-link
/// saturation for one `(topology, system, traffic family)` at any λ
/// without running the DES.
#[derive(Debug, Clone)]
pub struct Estimator {
    label: String,
    spec: ScenarioSpec,
    /// Per-route link lists, source-major member-minor (the fixed routes
    /// every system probes over).
    route_links: Vec<Vec<usize>>,
    capacities: Vec<u32>,
    k: usize,
    composition: Composition,
    mode: Mode,
    /// Analytic-SP indicator: nearest member index per source.
    nearest: Vec<usize>,
    /// `(anchor λ, measured − raw)` pairs, empty in analytic mode.
    residuals: Vec<(f64, f64)>,
    fixed_point: FixedPointOptions,
}

impl Estimator {
    /// The Appendix-A analysis re-expressed as an estimator: closed-form
    /// weights (uniform for `<ED,1>`, nearest-indicator for SP), unit
    /// peakedness, no residual. Agrees with
    /// `anycast_analysis::predict_ap` to fixed-point tolerance — this
    /// mode exists exactly so that property can be tested.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid for the topology (see
    /// [`build_scenario`]).
    pub fn analytic(topo: &Topology, spec: &ScenarioSpec, system: AnalyzedSystem) -> Estimator {
        let label = match system {
            AnalyzedSystem::Ed1 => "<ED,1>".to_string(),
            AnalyzedSystem::Sp => "SP".to_string(),
        };
        let mut e = Estimator::skeleton(topo, spec.clone(), label, Composition::Retrial { r: 1 });
        e.mode = Mode::Analytic(system);
        e
    }

    /// Calibrates the estimator for `base`'s system by running one short
    /// DES burst per anchor λ (see [`calibrate`]), then fitting the
    /// residual correction at each anchor.
    ///
    /// # Panics
    ///
    /// Panics if `base` uses the multipath, multi-group or mixed-demand
    /// extensions (the estimator models the paper's §5.1 setting), or if
    /// calibration itself panics.
    pub fn calibrated(
        topo: &Topology,
        base: &ExperimentConfig,
        options: &CalibrationOptions,
    ) -> Estimator {
        assert!(
            base.demand_mix.is_empty(),
            "the estimator models the paper's single 64 kb/s demand class"
        );
        let composition = match &base.system {
            SystemSpec::Dac { retrial, .. } => Composition::Retrial {
                r: retrial.max_tries() as usize,
            },
            SystemSpec::ShortestPath => Composition::Retrial { r: 1 },
            SystemSpec::GlobalDynamic => Composition::AnyRoute,
            SystemSpec::DacMultipath { .. } => {
                panic!("multipath systems probe alternate routes the link decomposition does not model")
            }
        };
        let spec = ScenarioSpec {
            lambda: 1.0,
            mean_holding_secs: base.mean_holding_secs,
            flow_bandwidth: base.flow_bandwidth,
            anycast_fraction: base.anycast_fraction,
            default_link_capacity: base.default_link_capacity,
            group_members: base.group_members.clone(),
            sources: base.sources.clone(),
        };
        let table = calibrate(topo, base, options);
        let mut e = Estimator::skeleton(topo, spec, base.system.label(), composition);
        e.mode = Mode::Calibrated(table);
        // Residuals: what the raw composition misses at each anchor,
        // interpolated in between. Computed after `mode` is installed so
        // the raw predictions use the calibrated weights and peakedness.
        let anchors: Vec<(f64, f64)> = match &e.mode {
            Mode::Calibrated(t) => t
                .anchors
                .iter()
                .map(|a| (a.lambda, a.measured_ap))
                .collect(),
            Mode::Analytic(_) => unreachable!(),
        };
        e.residuals = anchors
            .iter()
            .map(|&(lambda, measured)| {
                (
                    lambda,
                    measured - e.raw_predict(lambda).admission_probability,
                )
            })
            .collect();
        e
    }

    fn skeleton(
        topo: &Topology,
        spec: ScenarioSpec,
        label: String,
        composition: Composition,
    ) -> Estimator {
        let mut probe_spec = spec.clone();
        probe_spec.lambda = 1.0;
        let ed = build_scenario(topo, &probe_spec, AnalyzedSystem::Ed1);
        let sp = build_scenario(topo, &probe_spec, AnalyzedSystem::Sp);
        let k = spec.group_members.len();
        let nearest = sp
            .routes
            .chunks(k)
            .map(|chunk| {
                chunk
                    .iter()
                    .position(|r| r.offered_erlangs > 0.0)
                    .expect("SP loads exactly one route per source")
            })
            .collect();
        Estimator {
            label,
            spec,
            route_links: ed.routes.into_iter().map(|r| r.links).collect(),
            capacities: ed.capacities,
            k,
            composition,
            mode: Mode::Analytic(AnalyzedSystem::Ed1),
            nearest,
            residuals: Vec::new(),
            fixed_point: FixedPointOptions {
                tolerance: INNER_TOLERANCE,
                ..FixedPointOptions::default()
            },
        }
    }

    /// The estimated system's paper label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The calibration table backing this estimator, if any.
    pub fn calibration(&self) -> Option<&CalibrationTable> {
        match &self.mode {
            Mode::Calibrated(t) => Some(t),
            Mode::Analytic(_) => None,
        }
    }

    /// Predicts at one λ: raw composition plus the residual correction.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive and finite.
    pub fn predict(&self, lambda: f64) -> Estimate {
        let mut est = self.raw_predict(lambda);
        let residual = interpolate(&self.residuals, lambda);
        est.residual_correction = residual;
        est.admission_probability = (est.raw_admission_probability + residual).clamp(0.0, 1.0);
        est
    }

    /// [`predict`](Estimator::predict) over a λ grid across `jobs` worker
    /// threads, in input order. Each cell is a pure function of
    /// `(self, lambda)`, so the output is bit-identical for every `jobs`
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0` or any λ is invalid.
    pub fn predict_batch(&self, jobs: usize, lambdas: &[f64]) -> Vec<Estimate> {
        anycast_sim::pool::parallel_map(jobs, lambdas, |_, &lambda| self.predict(lambda))
    }

    /// Per-source selection weights at `lambda` (length `k` each).
    fn weights_at(&self, lambda: f64) -> Vec<Vec<f64>> {
        let sources = self.spec.sources.len();
        match &self.mode {
            Mode::Analytic(AnalyzedSystem::Ed1) => {
                vec![vec![1.0 / self.k as f64; self.k]; sources]
            }
            Mode::Analytic(AnalyzedSystem::Sp) => self
                .nearest
                .iter()
                .map(|&n| {
                    let mut w = vec![0.0; self.k];
                    w[n] = 1.0;
                    w
                })
                .collect(),
            Mode::Calibrated(table) => {
                let kind = match self.composition {
                    Composition::Retrial { .. } => ShareKind::FirstAttempt,
                    Composition::AnyRoute => ShareKind::Admitted,
                };
                table.shares_at(lambda, kind)
            }
        }
    }

    /// Per-link peakedness at `lambda`, clamped to the trusted band.
    fn peakedness_at(&self, lambda: f64) -> Vec<f64> {
        match &self.mode {
            Mode::Analytic(_) => vec![1.0; self.capacities.len()],
            Mode::Calibrated(table) => table
                .peakedness_at(lambda)
                .into_iter()
                .map(|z| z.clamp(PEAKEDNESS_FLOOR, PEAKEDNESS_CEILING))
                .collect(),
        }
    }

    /// The composed prediction before any residual correction.
    fn raw_predict(&self, lambda: f64) -> Estimate {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive and finite, got {lambda}"
        );
        let sources = self.spec.sources.len();
        let rho_s = lambda * self.spec.mean_holding_secs / sources as f64;
        let weights = self.weights_at(lambda);
        let z = self.peakedness_at(lambda);
        let blocking_fn = |l: usize, load: f64, servers: u32| hayward_blocking(load, servers, z[l]);

        let mut scenario = TrafficScenario {
            routes: self
                .route_links
                .iter()
                .enumerate()
                .map(|(idx, links)| anycast_analysis::scenario::RouteLoad {
                    links: links.clone(),
                    offered_erlangs: rho_s * weights[idx / self.k][idx % self.k],
                })
                .collect(),
            capacities: self.capacities.clone(),
        };
        let mut prediction = predict_ap_fn(&scenario, blocking_fn, self.fixed_point);
        let mut iterations = prediction.iterations;
        let mut converged = prediction.converged;

        match self.composition {
            Composition::Retrial { r } => {
                // Couple the retrial walk to the fixed point: attempts
                // beyond the first add offered load, which raises
                // blocking, which changes the attempt distribution. The
                // coupled Picard map contracts slowly near the knee
                // (slope ≈ 0.9), so fully converging the inner fixed
                // point on every round wastes thousands of iterations on
                // blocking vectors the next load update invalidates.
                // Phase 1 therefore runs the rounds as a *joint*
                // iteration — warm-started inner solves capped at a
                // small budget — and phase 2 repeats the loop at full
                // inner convergence (a couple of rounds from the joint
                // solution) so the reported fixed point is exact.
                let update_loads = |prediction: &anycast_analysis::ApPrediction,
                                    scenario: &mut TrafficScenario|
                 -> f64 {
                    let mut max_delta: f64 = 0.0;
                    for (s, w) in weights.iter().enumerate() {
                        let losses = &prediction.route_rejection[s * self.k..(s + 1) * self.k];
                        let comp = compose_retrials(w, losses, r);
                        for i in 0..self.k {
                            let offered = rho_s * comp.attempt_probability[i];
                            let slot = &mut scenario.routes[s * self.k + i].offered_erlangs;
                            let next = (1.0 - OUTER_DAMPING) * *slot + OUTER_DAMPING * offered;
                            max_delta = max_delta.max((next - *slot).abs());
                            *slot = next;
                        }
                    }
                    max_delta
                };
                let outer_tol = OUTER_TOLERANCE * rho_s.max(1.0);
                // Phase 1: joint iteration — each round moves the loads
                // one step and advances the blocking a capped number of
                // warm-started iterations towards the moved target.
                let joint = FixedPointOptions {
                    max_iterations: JOINT_INNER_BUDGET,
                    ..self.fixed_point
                };
                for _ in 0..MAX_OUTER_ITERATIONS {
                    if update_loads(&prediction, &mut scenario) < outer_tol {
                        break;
                    }
                    prediction = predict_ap_fn_from(
                        &scenario,
                        blocking_fn,
                        joint,
                        &prediction.link_blocking,
                    );
                    iterations += prediction.iterations;
                }
                // Phase 2: polish — fully-converged solves (warm, so a
                // couple of rounds) until the load update stops moving,
                // guaranteeing the reported pair is a joint fixed point.
                let mut outer_converged = false;
                for _ in 0..MAX_OUTER_ITERATIONS {
                    prediction = predict_ap_fn_from(
                        &scenario,
                        blocking_fn,
                        self.fixed_point,
                        &prediction.link_blocking,
                    );
                    iterations += prediction.iterations;
                    converged = prediction.converged;
                    if update_loads(&prediction, &mut scenario) < outer_tol {
                        outer_converged = true;
                        break;
                    }
                }
                converged = converged && outer_converged;
                let mut rejection = 0.0;
                let mut tries = 0.0;
                for (s, w) in weights.iter().enumerate() {
                    let losses = &prediction.route_rejection[s * self.k..(s + 1) * self.k];
                    let comp = compose_retrials(w, losses, r);
                    rejection += comp.rejection;
                    tries += comp.expected_tries;
                }
                let mean_tries = tries / sources as f64;
                let ap = 1.0 - rejection / sources as f64;
                Estimate {
                    lambda,
                    admission_probability: ap,
                    raw_admission_probability: ap,
                    residual_correction: 0.0,
                    mean_tries,
                    mean_retrials: (mean_tries - 1.0).max(0.0),
                    link_saturation: prediction.link_blocking,
                    iterations,
                    converged,
                }
            }
            Composition::AnyRoute => {
                // GDI admits iff some route to some member is clear;
                // inclusion–exclusion over each source's candidate set
                // keeps shared first hops from being double-counted.
                let mut admitted = 0.0;
                for s in 0..sources {
                    let routes: Vec<&[usize]> = (0..self.k)
                        .map(|i| self.route_links[s * self.k + i].as_slice())
                        .collect();
                    admitted += any_route_clear(&routes, &prediction.link_blocking);
                }
                let ap = admitted / sources as f64;
                Estimate {
                    lambda,
                    admission_probability: ap,
                    raw_admission_probability: ap,
                    residual_correction: 0.0,
                    mean_tries: 1.0,
                    mean_retrials: 0.0,
                    link_saturation: prediction.link_blocking,
                    iterations,
                    converged,
                }
            }
        }
    }
}

/// Fredericks–Hayward peaked blocking: a stream with peakedness `z`
/// blocks like a Poisson stream of `v/z` erlangs on `C/z` servers.
/// `z = 1` is exactly Erlang-B.
fn hayward_blocking(load: f64, servers: u32, z: f64) -> f64 {
    debug_assert!(
        (PEAKEDNESS_FLOOR..=PEAKEDNESS_CEILING).contains(&z),
        "peakedness must be pre-clamped, got {z}"
    );
    if z <= 1.0 {
        return erlang_b(load, servers);
    }
    let effective = ((servers as f64 / z).round()).max(1.0) as u32;
    erlang_b(load / z, effective)
}

/// Piecewise-linear interpolation over `(x, y)` pairs sorted by `x`,
/// clamped at both ends; `0.0` for an empty table.
fn interpolate(points: &[(f64, f64)], x: f64) -> f64 {
    match points {
        [] => 0.0,
        [(_, y)] => *y,
        _ => {
            if x <= points[0].0 {
                return points[0].1;
            }
            let last = points[points.len() - 1];
            if x >= last.0 {
                return last.1;
            }
            for w in points.windows(2) {
                let ((x0, y0), (x1, y1)) = (w[0], w[1]);
                if x <= x1 {
                    let t = (x - x0) / (x1 - x0);
                    return (1.0 - t) * y0 + t * y1;
                }
            }
            unreachable!("points are sorted")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_analysis::{predict_ap, BlockingModel};
    use anycast_dac::calibrate::CalibrationBurst;
    use anycast_dac::policy::PolicySpec;
    use anycast_net::topologies;

    #[test]
    fn analytic_ed1_matches_fixed_point() {
        let topo = topologies::mci();
        for lambda in [5.0, 25.0, 50.0] {
            let spec = ScenarioSpec::paper_defaults(lambda);
            let est = Estimator::analytic(&topo, &spec, AnalyzedSystem::Ed1).predict(lambda);
            let reference = predict_ap(
                &build_scenario(&topo, &spec, AnalyzedSystem::Ed1),
                BlockingModel::ErlangB,
            );
            assert!(est.converged && reference.converged);
            assert!(
                (est.admission_probability - reference.admission_probability).abs() < 1e-6,
                "λ={lambda}: {} vs {}",
                est.admission_probability,
                reference.admission_probability
            );
            assert_eq!(est.residual_correction, 0.0);
            assert!((est.mean_tries - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn analytic_sp_matches_fixed_point() {
        let topo = topologies::mci();
        for lambda in [15.0, 40.0] {
            let spec = ScenarioSpec::paper_defaults(lambda);
            let est = Estimator::analytic(&topo, &spec, AnalyzedSystem::Sp).predict(lambda);
            let reference = predict_ap(
                &build_scenario(&topo, &spec, AnalyzedSystem::Sp),
                BlockingModel::ErlangB,
            );
            assert!(
                (est.admission_probability - reference.admission_probability).abs() < 1e-6,
                "λ={lambda}: {} vs {}",
                est.admission_probability,
                reference.admission_probability
            );
        }
    }

    #[test]
    fn batch_is_jobs_invariant() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(1.0);
        let est = Estimator::analytic(&topo, &spec, AnalyzedSystem::Ed1);
        let grid: Vec<f64> = (1..=8).map(|i| 5.0 * i as f64).collect();
        let serial = est.predict_batch(1, &grid);
        for jobs in [2, 4] {
            assert_eq!(est.predict_batch(jobs, &grid), serial, "jobs={jobs}");
        }
        // AP must fall monotonically with load.
        for w in serial.windows(2) {
            assert!(w[1].admission_probability <= w[0].admission_probability + 1e-9);
        }
    }

    #[test]
    fn calibrated_estimator_hits_anchors_exactly() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(10.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let options = CalibrationOptions {
            anchors: vec![10.0, 40.0],
            burst: CalibrationBurst {
                warmup_secs: 5.0,
                measure_secs: 15.0,
                ..CalibrationBurst::default()
            },
            ..CalibrationOptions::default()
        };
        let est = Estimator::calibrated(&topo, &base, &options);
        let table = est.calibration().expect("calibrated mode has a table");
        // By construction raw + residual == measured at each anchor.
        for anchor in table.anchors.clone() {
            let p = est.predict(anchor.lambda);
            assert!(
                (p.admission_probability - anchor.measured_ap).abs() < 1e-9,
                "anchor λ={}: {} vs measured {}",
                anchor.lambda,
                p.admission_probability,
                anchor.measured_ap
            );
        }
        // Between anchors the prediction stays a probability and the
        // estimator reports real retrial behaviour for R=2.
        let mid = est.predict(25.0);
        assert!(mid.admission_probability > 0.0 && mid.admission_probability <= 1.0);
        assert!(mid.mean_tries >= 1.0 && mid.mean_tries <= 2.0 + 1e-9);
    }

    #[test]
    fn gdi_estimator_beats_sp_estimator() {
        // Under link independence GDI's any-route-clear admission
        // dominates SP's single fixed route at equal placement.
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(35.0);
        let sp = Estimator::analytic(&topo, &spec, AnalyzedSystem::Sp).predict(35.0);
        // Analytic GDI stand-in: uniform placement, any-route composition.
        let base = ExperimentConfig::paper_defaults(35.0, SystemSpec::GlobalDynamic);
        let options = CalibrationOptions {
            anchors: vec![35.0],
            burst: CalibrationBurst {
                warmup_secs: 5.0,
                measure_secs: 15.0,
                ..CalibrationBurst::default()
            },
            ..CalibrationOptions::default()
        };
        let gdi = Estimator::calibrated(&topo, &base, &options).predict(35.0);
        assert!(
            gdi.admission_probability > sp.admission_probability,
            "GDI {} must beat SP {}",
            gdi.admission_probability,
            sp.admission_probability
        );
    }

    #[test]
    fn hayward_reduces_to_erlang_at_unit_peakedness() {
        for (load, servers) in [(100.0, 120), (300.0, 312), (10.0, 4)] {
            assert_eq!(
                hayward_blocking(load, servers, 1.0),
                erlang_b(load, servers)
            );
        }
        // Peaked traffic blocks more near the knee.
        assert!(hayward_blocking(300.0, 312, 1.5) > erlang_b(300.0, 312));
    }

    #[test]
    fn interpolation_clamps_and_blends() {
        let pts = [(10.0, 0.02), (30.0, -0.04)];
        assert_eq!(interpolate(&pts, 5.0), 0.02);
        assert_eq!(interpolate(&pts, 50.0), -0.04);
        assert!((interpolate(&pts, 20.0) - (-0.01)).abs() < 1e-12);
        assert_eq!(interpolate(&[], 20.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_lambda_rejected() {
        let topo = topologies::mci();
        let spec = ScenarioSpec::paper_defaults(1.0);
        let _ = Estimator::analytic(&topo, &spec, AnalyzedSystem::Ed1).predict(0.0);
    }
}
