//! Composition rules: per-route rejections → per-request outcomes.
//!
//! The fixed point yields per-route rejection probabilities under link
//! independence; these functions compose them into the per-*request*
//! quantities the systems report:
//!
//! * [`compose_retrials`] — DAC's §4.5 without-replacement retrial walk
//!   with arbitrary (calibrated) first-pick weights, generalising the
//!   uniform `<ED,R>` treatment of `anycast-analysis::scenario`;
//! * [`any_route_clear`] — GDI's admit-if-any-route-clear rule,
//!   evaluated exactly (inclusion–exclusion over the candidate set) so
//!   overlapping routes from one source are not double-counted.

/// Outcome of one source's retrial walk at fixed route losses.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrialComposition {
    /// `P(member i receives an attempt)` per member — also the factor
    /// that converts per-source offered erlangs into per-route offered
    /// erlangs, since every attempt offers the flow to its route.
    pub attempt_probability: Vec<f64>,
    /// Probability the request exhausts its tries and is rejected.
    pub rejection: f64,
    /// Expected probes per request (`Σ_i attempt_probability[i]`).
    pub expected_tries: f64,
}

/// Exact retrial walk: members are drawn without replacement with
/// probability proportional to `weights`, each drawn member fails
/// independently with its `losses` entry, and the request stops at the
/// first success or after `r` draws.
///
/// With uniform weights this reduces to the elementary-symmetric-mean
/// formulas of the `<ED,R>` extension; calibrated first-pick weights
/// extend the same walk to WD/D+H and WD/D+B, whose policies bias the
/// draw. Zero-weight members are never drawn; if every undrawn member
/// has zero weight the walk stops and the request is rejected (this is
/// how SP's single-candidate behaviour falls out of the same code).
///
/// The walk enumerates ordered failure prefixes — `O(K!/(K−r)!)` states
/// — which is exact and cheap for anycast group sizes.
///
/// # Panics
///
/// Panics if `r == 0`, the slices disagree in length, the group is
/// larger than 12 members (enumeration guard), a weight is negative or
/// non-finite, or a loss lies outside `[0, 1]`.
pub fn compose_retrials(weights: &[f64], losses: &[f64], r: usize) -> RetrialComposition {
    let k = weights.len();
    assert!(r >= 1, "at least one try is required");
    assert_eq!(k, losses.len(), "weights and losses must align");
    assert!(
        k <= 12,
        "retrial enumeration supports at most 12 members, got {k}"
    );
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
    }
    for &l in losses {
        assert!(
            l.is_finite() && (-1e-12..=1.0 + 1e-12).contains(&l),
            "losses must be probabilities, got {l}"
        );
    }
    let mut out = RetrialComposition {
        attempt_probability: vec![0.0; k],
        rejection: 0.0,
        expected_tries: 0.0,
    };
    let r = r.min(k);
    walk(weights, losses, r, 0, 0, 1.0, &mut out);
    out
}

fn walk(
    weights: &[f64],
    losses: &[f64],
    r: usize,
    mask: u32,
    depth: usize,
    reach: f64,
    out: &mut RetrialComposition,
) {
    if reach <= 0.0 {
        return;
    }
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        if mask & (1 << i) == 0 {
            total += w;
        }
    }
    if total <= 0.0 {
        // No candidate left worth drawing: the request gives up here.
        out.rejection += reach;
        return;
    }
    for (i, &w) in weights.iter().enumerate() {
        if mask & (1 << i) != 0 || w <= 0.0 {
            continue;
        }
        let attempt = reach * w / total;
        out.attempt_probability[i] += attempt;
        out.expected_tries += attempt;
        let fail = attempt * losses[i].clamp(0.0, 1.0);
        if depth + 1 == r {
            out.rejection += fail;
        } else {
            walk(weights, losses, r, mask | (1 << i), depth + 1, fail, out);
        }
    }
}

/// `P(at least one candidate route has every link clear)` under link
/// independence — GDI's admission event restricted to the fixed
/// candidate routes.
///
/// Routes from one source share their first hops, so the naive
/// `1 − Π(route blocked)` overstates admission; inclusion–exclusion over
/// route subsets evaluates the union exactly: for each non-empty subset
/// `S`, every link in `∪S` must be clear, with sign `(−1)^{|S|+1}`.
///
/// # Panics
///
/// Panics if there are more than 16 routes (subset guard), a route
/// references a link outside `blocking`, or a blocking value lies
/// outside `[0, 1]`.
pub fn any_route_clear(routes: &[&[usize]], blocking: &[f64]) -> f64 {
    let k = routes.len();
    assert!(k <= 16, "inclusion-exclusion supports at most 16 routes");
    for &b in blocking {
        assert!(
            b.is_finite() && (-1e-12..=1.0 + 1e-12).contains(&b),
            "blocking must be a probability, got {b}"
        );
    }
    let mut clear = 0.0f64;
    let mut union: Vec<usize> = Vec::new();
    for subset in 1u32..(1 << k) {
        union.clear();
        for (i, route) in routes.iter().enumerate() {
            if subset & (1 << i) != 0 {
                union.extend_from_slice(route);
            }
        }
        union.sort_unstable();
        union.dedup();
        let mut p = 1.0;
        for &l in &union {
            assert!(l < blocking.len(), "route references link {l} out of range");
            p *= 1.0 - blocking[l].clamp(0.0, 1.0);
        }
        if subset.count_ones() % 2 == 1 {
            clear += p;
        } else {
            clear -= p;
        }
    }
    clear.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_single_try_is_mean_loss() {
        let losses = [0.1, 0.3, 0.5];
        let c = compose_retrials(&[1.0, 1.0, 1.0], &losses, 1);
        assert!((c.rejection - 0.3).abs() < 1e-12);
        for q in &c.attempt_probability {
            assert!((q - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!((c.expected_tries - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_two_tries_matches_hand_count() {
        // K=2, R=2: reject = L0·L1 regardless of order.
        let c = compose_retrials(&[1.0, 1.0], &[0.2, 0.4], 2);
        assert!((c.rejection - 0.08).abs() < 1e-12);
        // q0 = 1/2 + 1/2·0.4; q1 = 1/2 + 1/2·0.2.
        assert!((c.attempt_probability[0] - 0.7).abs() < 1e-12);
        assert!((c.attempt_probability[1] - 0.6).abs() < 1e-12);
        assert!((c.expected_tries - 1.3).abs() < 1e-12);
    }

    #[test]
    fn weighted_walk_prefers_heavy_member() {
        let c = compose_retrials(&[3.0, 1.0], &[0.5, 0.5], 1);
        assert!((c.attempt_probability[0] - 0.75).abs() < 1e-12);
        assert!((c.attempt_probability[1] - 0.25).abs() < 1e-12);
        assert!((c.rejection - 0.5).abs() < 1e-12);
    }

    #[test]
    fn indicator_weights_reduce_to_single_candidate() {
        // SP-like: only member 1 has weight; extra tries have nothing to
        // draw, so rejection = its loss even with r = 3.
        let c = compose_retrials(&[0.0, 1.0, 0.0], &[0.9, 0.35, 0.9], 3);
        assert!((c.rejection - 0.35).abs() < 1e-12);
        assert_eq!(c.attempt_probability[0], 0.0);
        assert!((c.attempt_probability[1] - 1.0).abs() < 1e-12);
        assert!((c.expected_tries - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_retries_reject_with_full_product() {
        // r ≥ K with all-positive weights: rejection = Π losses for any
        // weights (every order must fail everywhere).
        let losses = [0.2, 0.5, 0.8];
        for weights in [[1.0, 1.0, 1.0], [5.0, 1.0, 0.5]] {
            let c = compose_retrials(&weights, &losses, 3);
            assert!(
                (c.rejection - 0.08).abs() < 1e-12,
                "weights {weights:?}: {}",
                c.rejection
            );
        }
    }

    #[test]
    fn probabilities_stay_normalised() {
        // Rejection + P(admitted) accounting: P(admit via i) =
        // q_i·(1−L_i) summed, plus rejection, must be 1.
        let weights = [2.0, 1.0, 1.0, 0.5];
        let losses = [0.3, 0.7, 0.1, 0.9];
        for r in 1..=4 {
            let c = compose_retrials(&weights, &losses, r);
            let admitted: f64 = c
                .attempt_probability
                .iter()
                .zip(&losses)
                .map(|(q, l)| q * (1.0 - l))
                .sum();
            assert!(
                (admitted + c.rejection - 1.0).abs() < 1e-12,
                "r={r}: {admitted} + {}",
                c.rejection
            );
        }
    }

    #[test]
    fn disjoint_routes_match_independence() {
        // Two disjoint routes: inclusion–exclusion equals 1 − Π blocked.
        let blocking = [0.3, 0.6];
        let r0: &[usize] = &[0];
        let r1: &[usize] = &[1];
        let p = any_route_clear(&[r0, r1], &blocking);
        let expected = 1.0 - 0.3 * 0.6;
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn shared_link_is_not_double_counted() {
        // Both routes cross link 0: clearing is dominated by the shared
        // link. P(∃ clear) = P(l0)·(1 − (1−P(l1))(1−P(l2))) with
        // P(l) = 1 − B_l.
        let blocking = [0.5, 0.2, 0.4];
        let r0: &[usize] = &[0, 1];
        let r1: &[usize] = &[0, 2];
        let p = any_route_clear(&[r0, r1], &blocking);
        let expected = 0.5 * (1.0 - (1.0 - 0.8) * (1.0 - 0.6));
        assert!((p - expected).abs() < 1e-12, "{p} vs {expected}");
    }

    #[test]
    fn empty_route_always_clear() {
        let r0: &[usize] = &[];
        let r1: &[usize] = &[0];
        let p = any_route_clear(&[r0, r1], &[0.99]);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one try")]
    fn zero_tries_rejected() {
        let _ = compose_retrials(&[1.0], &[0.5], 0);
    }
}
