//! Calibration tables: what the short DES bursts learned, in a form the
//! composition engine can interpolate at any λ.

use serde::{Deserialize, Serialize};

/// Calibrated occupancy moments of one link at one anchor λ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Occupancy samples that contributed.
    pub samples: u64,
    /// Mean flows in flight.
    pub mean_flows: f64,
    /// Peakedness `Var/E` of the occupancy distribution (`1.0` when
    /// unobserved) — the Fredericks–Hayward correction factor that
    /// replaces the pure-Poisson Erlang-B assumption.
    pub peakedness: f64,
}

/// Calibrated destination-selection behaviour of one source at one
/// anchor λ. All share vectors have group-size length and sum to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceProfile {
    /// The source router (raw node id).
    pub node: u32,
    /// Requests observed after warmup.
    pub requests: u64,
    /// Share of requests whose *first* probe targeted each member — the
    /// policy's steady-state pick distribution, which the retrial walk
    /// extends to later tries.
    pub first_share: Vec<f64>,
    /// Share of all probes (first picks plus retrials) per member.
    pub attempt_share: Vec<f64>,
    /// Share of admissions per member — GDI's effective placement.
    pub admitted_share: Vec<f64>,
}

/// Everything one calibration burst observed at one anchor λ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorProfile {
    /// The anchor request rate.
    pub lambda: f64,
    /// Requests measured across all sources.
    pub requests: u64,
    /// The burst's measured admission probability — anchors the
    /// residual correction.
    pub measured_ap: f64,
    /// The burst's measured mean probes per request.
    pub measured_tries: f64,
    /// Per-source selection profiles, in the scenario's source order.
    pub sources: Vec<SourceProfile>,
    /// Per-link occupancy profiles, in dense link order.
    pub links: Vec<LinkProfile>,
}

/// A full calibration table: one scenario family (topology + system +
/// traffic parameters), several anchor λs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTable {
    /// The calibrated system's paper label (`<WD/D+H,2>`, `GDI`, …).
    pub system_label: String,
    /// Seed the bursts ran under.
    pub seed: u64,
    /// Burst warm-up horizon in seconds.
    pub burst_warmup_secs: f64,
    /// Burst measured horizon in seconds.
    pub burst_measure_secs: f64,
    /// Anchor profiles in strictly increasing λ order.
    pub anchors: Vec<AnchorProfile>,
}

/// Which calibrated share vector a prediction should draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareKind {
    /// First-probe shares — the DAC policies' pick distribution.
    FirstAttempt,
    /// Admission shares — GDI's effective placement.
    Admitted,
}

impl CalibrationTable {
    /// Bracketing anchors and interpolation weight for `lambda`:
    /// `(lo, hi, t)` with `t ∈ [0, 1]`; clamped at the ends so the table
    /// never extrapolates beyond what was measured.
    fn bracket(&self, lambda: f64) -> (usize, usize, f64) {
        assert!(!self.anchors.is_empty(), "calibration table has no anchors");
        let n = self.anchors.len();
        if lambda <= self.anchors[0].lambda {
            return (0, 0, 0.0);
        }
        if lambda >= self.anchors[n - 1].lambda {
            return (n - 1, n - 1, 0.0);
        }
        for i in 0..n - 1 {
            let (a, b) = (self.anchors[i].lambda, self.anchors[i + 1].lambda);
            if lambda <= b {
                return (i, i + 1, (lambda - a) / (b - a));
            }
        }
        unreachable!("anchors are sorted")
    }

    /// Per-source member shares at `lambda`, linearly interpolated
    /// between the bracketing anchors and renormalised to sum to 1.
    pub fn shares_at(&self, lambda: f64, kind: ShareKind) -> Vec<Vec<f64>> {
        let (lo, hi, t) = self.bracket(lambda);
        fn pick(p: &SourceProfile, kind: ShareKind) -> &[f64] {
            match kind {
                ShareKind::FirstAttempt => &p.first_share,
                ShareKind::Admitted => &p.admitted_share,
            }
        }
        self.anchors[lo]
            .sources
            .iter()
            .zip(&self.anchors[hi].sources)
            .map(|(a, b)| {
                let mut v: Vec<f64> = pick(a, kind)
                    .iter()
                    .zip(pick(b, kind))
                    .map(|(x, y)| (1.0 - t) * x + t * y)
                    .collect();
                let sum: f64 = v.iter().sum();
                if sum > 0.0 {
                    for x in &mut v {
                        *x /= sum;
                    }
                } else {
                    let k = v.len().max(1);
                    v = vec![1.0 / k as f64; k];
                }
                v
            })
            .collect()
    }

    /// Per-link peakedness at `lambda`, linearly interpolated.
    pub fn peakedness_at(&self, lambda: f64) -> Vec<f64> {
        let (lo, hi, t) = self.bracket(lambda);
        self.anchors[lo]
            .links
            .iter()
            .zip(&self.anchors[hi].links)
            .map(|(a, b)| (1.0 - t) * a.peakedness + t * b.peakedness)
            .collect()
    }

    /// Measured AP at `lambda`, linearly interpolated between anchors.
    pub fn measured_ap_at(&self, lambda: f64) -> f64 {
        let (lo, hi, t) = self.bracket(lambda);
        (1.0 - t) * self.anchors[lo].measured_ap + t * self.anchors[hi].measured_ap
    }

    /// Total requests observed across all anchors — the calibration's
    /// evidence volume, reported by the cross-validation harness.
    pub fn total_requests(&self) -> u64 {
        self.anchors.iter().map(|a| a.requests).sum()
    }

    /// Canonical, byte-stable JSON rendering of the table.
    ///
    /// Serialisation here is hand-rolled (field order fixed, floats via
    /// Rust's shortest-round-trip formatting) precisely so that the
    /// calibration-determinism guarantee — same seed, same bytes — is
    /// testable as string equality, independent of any serde framework.
    pub fn canonical_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"system\":");
        push_str_escaped(&mut s, &self.system_label);
        s.push_str(",\"seed\":");
        s.push_str(&self.seed.to_string());
        s.push_str(",\"burst_warmup_secs\":");
        push_f64(&mut s, self.burst_warmup_secs);
        s.push_str(",\"burst_measure_secs\":");
        push_f64(&mut s, self.burst_measure_secs);
        s.push_str(",\"anchors\":[");
        for (i, a) in self.anchors.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"lambda\":");
            push_f64(&mut s, a.lambda);
            s.push_str(",\"requests\":");
            s.push_str(&a.requests.to_string());
            s.push_str(",\"measured_ap\":");
            push_f64(&mut s, a.measured_ap);
            s.push_str(",\"measured_tries\":");
            push_f64(&mut s, a.measured_tries);
            s.push_str(",\"sources\":[");
            for (j, src) in a.sources.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("{\"node\":");
                s.push_str(&src.node.to_string());
                s.push_str(",\"requests\":");
                s.push_str(&src.requests.to_string());
                s.push_str(",\"first_share\":");
                push_f64_array(&mut s, &src.first_share);
                s.push_str(",\"attempt_share\":");
                push_f64_array(&mut s, &src.attempt_share);
                s.push_str(",\"admitted_share\":");
                push_f64_array(&mut s, &src.admitted_share);
                s.push('}');
            }
            s.push_str("],\"links\":[");
            for (j, link) in a.links.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("{\"samples\":");
                s.push_str(&link.samples.to_string());
                s.push_str(",\"mean_flows\":");
                push_f64(&mut s, link.mean_flows);
                s.push_str(",\"peakedness\":");
                push_f64(&mut s, link.peakedness);
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

fn push_f64(s: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "calibration tables must be finite, got {v}");
    // `{:?}` is Rust's shortest round-trip float form: stable across
    // runs, platforms and jobs counts for equal bit patterns.
    s.push_str(&format!("{v:?}"));
}

fn push_f64_array(s: &mut String, values: &[f64]) {
    s.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_f64(s, v);
    }
    s.push(']');
}

fn push_str_escaped(s: &mut String, raw: &str) {
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_anchors(lambdas: &[f64]) -> CalibrationTable {
        CalibrationTable {
            system_label: "<ED,2>".into(),
            seed: 7,
            burst_warmup_secs: 10.0,
            burst_measure_secs: 40.0,
            anchors: lambdas
                .iter()
                .enumerate()
                .map(|(i, &lambda)| AnchorProfile {
                    lambda,
                    requests: 100,
                    measured_ap: 1.0 - 0.1 * i as f64,
                    measured_tries: 1.0 + 0.1 * i as f64,
                    sources: vec![SourceProfile {
                        node: 1,
                        requests: 100,
                        first_share: vec![0.5 + 0.1 * i as f64, 0.5 - 0.1 * i as f64],
                        attempt_share: vec![0.5, 0.5],
                        admitted_share: vec![0.6, 0.4],
                    }],
                    links: vec![LinkProfile {
                        samples: 40,
                        mean_flows: 10.0 * (i + 1) as f64,
                        peakedness: 1.0 + 0.2 * i as f64,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn interpolation_brackets_and_clamps() {
        let t = table_with_anchors(&[10.0, 30.0]);
        // Midpoint.
        let shares = t.shares_at(20.0, ShareKind::FirstAttempt);
        assert!((shares[0][0] - 0.55).abs() < 1e-12);
        let z = t.peakedness_at(20.0);
        assert!((z[0] - 1.1).abs() < 1e-12);
        assert!((t.measured_ap_at(20.0) - 0.95).abs() < 1e-12);
        // Clamped below and above.
        assert!((t.shares_at(1.0, ShareKind::FirstAttempt)[0][0] - 0.5).abs() < 1e-12);
        assert!((t.shares_at(99.0, ShareKind::FirstAttempt)[0][0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn shares_renormalise() {
        let mut t = table_with_anchors(&[10.0]);
        t.anchors[0].sources[0].first_share = vec![0.2, 0.2];
        let s = t.shares_at(10.0, ShareKind::FirstAttempt);
        assert!((s[0].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // All-zero shares fall back to uniform.
        t.anchors[0].sources[0].first_share = vec![0.0, 0.0];
        let s = t.shares_at(10.0, ShareKind::FirstAttempt);
        assert_eq!(s[0], vec![0.5, 0.5]);
    }

    #[test]
    fn canonical_json_is_stable_and_parseable() {
        let t = table_with_anchors(&[10.0, 30.0]);
        let a = t.canonical_json();
        let b = t.clone().canonical_json();
        assert_eq!(a, b);
        // Round-trips through the workspace JSON parser.
        let parsed = anycast_telemetry::json::parse(&a).expect("canonical JSON must parse");
        let _ = parsed;
        assert!(a.contains("\"system\":\"<ED,2>\""));
        assert!(a.contains("\"anchors\":["));
    }
}
