//! Calibration: short DES bursts at a few anchor λs → a
//! [`CalibrationTable`] the composition engine interpolates.
//!
//! Each anchor burst is an ordinary traced experiment with shortened
//! horizons (`anycast-dac::calibrate`); the extractors in
//! `anycast-telemetry::occupancy` fold its event stream into per-source
//! destination-selection shares and per-link occupancy moments. Bursts
//! are independent, so anchors fan out over the worker pool — and because
//! each burst is a pure function of `(topo, config, burst)` and results
//! come back in input order, the table is **byte-identical for every
//! `jobs` value and every repetition at the same seed** (the
//! determinism test pins this down on the canonical JSON rendering).

use crate::table::{AnchorProfile, CalibrationTable, LinkProfile, SourceProfile};
use anycast_dac::calibrate::{run_calibration_burst, CalibrationBurst, CalibrationObservation};
use anycast_dac::experiment::ExperimentConfig;
use anycast_net::Topology;
use anycast_telemetry::{link_occupancy, source_attempt_profiles};

/// How a calibration run sweeps its anchor bursts.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOptions {
    /// Anchor request rates, strictly increasing. The default brackets
    /// the paper's Figure-6 sweep (λ ∈ [5, 50]) with one anchor per
    /// regime: underload, knee onset, knee, overload.
    pub anchors: Vec<f64>,
    /// Seed every burst runs under (bursts at different anchors share it;
    /// determinism is per-(anchor, seed)).
    pub seed: u64,
    /// Burst horizons and sampling, in *compressed* simulated seconds
    /// (see [`time_compression`](CalibrationOptions::time_compression)).
    /// The default — 10 s warmup, 40 s measured — is deliberately far
    /// below the paper's 1800 s + 3600 s: the table only needs occupancy
    /// *shapes* and selection *shares*, not tail-accurate point
    /// estimates, and the speedup budget of the fast path lives exactly
    /// in this gap.
    pub burst: CalibrationBurst,
    /// Time-compression factor `c ≥ 1`: each burst runs at `λ·c` with
    /// mean holding time `T/c`. The offered load `ρ = λ·T` — the only
    /// quantity the Erlang loss network's steady state depends on
    /// (insensitivity) — is unchanged, but the transient fill time
    /// (a few mean holding times) shrinks by `c`, so a burst reaches
    /// quasi-steady state `c×` sooner in simulated time. Per-request
    /// statistics (AP, selection shares, occupancy moments) are invariant;
    /// the anchor profile records the *real* λ.
    pub time_compression: f64,
    /// Worker threads for the anchor fan-out.
    pub jobs: usize,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            anchors: vec![5.0, 20.0, 35.0, 50.0],
            seed: 0xCA11B,
            burst: CalibrationBurst {
                warmup_secs: 10.0,
                measure_secs: 40.0,
                ..CalibrationBurst::default()
            },
            time_compression: 1.0,
            jobs: 1,
        }
    }
}

/// Runs one burst per anchor λ and folds the observations into a
/// [`CalibrationTable`] for `base`'s system on `topo`.
///
/// `base` supplies everything but λ and the horizons: system, group,
/// sources, flow bandwidth, anycast fraction. Deterministic: equal
/// `(topo, base, options)` give byte-identical tables for any `jobs`.
///
/// # Panics
///
/// Panics if `options` is degenerate (no anchors, unsorted anchors,
/// `jobs == 0`), if `base` uses the multi-group extension (the estimator
/// models the paper's single group), or if a burst is invalid for the
/// topology (see [`run_calibration_burst`]).
pub fn calibrate(
    topo: &Topology,
    base: &ExperimentConfig,
    options: &CalibrationOptions,
) -> CalibrationTable {
    assert!(!options.anchors.is_empty(), "need at least one anchor λ");
    assert!(
        options.anchors.windows(2).all(|w| w[0] < w[1]),
        "anchors must be strictly increasing, got {:?}",
        options.anchors
    );
    assert!(options.jobs >= 1, "need at least one worker");
    assert!(
        options.time_compression.is_finite() && options.time_compression >= 1.0,
        "time compression must be >= 1, got {}",
        options.time_compression
    );
    assert!(
        base.groups.is_empty(),
        "calibration models the paper's single anycast group"
    );
    let members = base.group_members.len();
    assert!(members >= 1, "group must be non-empty");

    let observations: Vec<CalibrationObservation> =
        anycast_sim::pool::parallel_map(options.jobs, &options.anchors, |_, &lambda| {
            let mut config = base.clone().with_seed(options.seed);
            config.lambda = lambda * options.time_compression;
            config.mean_holding_secs = base.mean_holding_secs / options.time_compression;
            run_calibration_burst(topo, &config, &options.burst)
        });

    let anchors = options
        .anchors
        .iter()
        .zip(&observations)
        .map(|(&lambda, obs)| fold_observation(lambda, obs, topo, base, members))
        .collect();
    CalibrationTable {
        system_label: base.system.label(),
        seed: options.seed,
        burst_warmup_secs: options.burst.warmup_secs,
        burst_measure_secs: options.burst.measure_secs,
        anchors,
    }
}

fn fold_observation(
    lambda: f64,
    obs: &CalibrationObservation,
    topo: &Topology,
    base: &ExperimentConfig,
    members: usize,
) -> AnchorProfile {
    let occ = link_occupancy(&obs.events, topo.link_count(), obs.warmup_secs);
    let profiles = source_attempt_profiles(&obs.events, &base.sources, members, obs.warmup_secs);
    let sources = base
        .sources
        .iter()
        .zip(&profiles)
        .map(|(&node, p)| SourceProfile {
            node: node.raw(),
            requests: p.requests,
            first_share: counts_to_shares(&p.first_attempts),
            attempt_share: counts_to_shares(&p.attempts),
            admitted_share: counts_to_shares(&p.admissions),
        })
        .collect();
    let links = occ
        .iter()
        .map(|o| LinkProfile {
            samples: o.samples,
            mean_flows: o.mean_flows,
            peakedness: o.peakedness,
        })
        .collect();
    AnchorProfile {
        lambda,
        requests: profiles.iter().map(|p| p.requests).sum(),
        measured_ap: obs.metrics.admission_probability,
        measured_tries: obs.metrics.mean_tries,
        sources,
        links,
    }
}

/// Counts → probability shares; all-zero counts fall back to uniform so
/// a source that saw no traffic in a short burst still gets usable
/// weights.
fn counts_to_shares(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        let k = counts.len().max(1);
        return vec![1.0 / k as f64; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dac::experiment::SystemSpec;
    use anycast_dac::policy::PolicySpec;
    use anycast_net::topologies;

    fn quick_options() -> CalibrationOptions {
        CalibrationOptions {
            anchors: vec![10.0, 40.0],
            burst: CalibrationBurst {
                warmup_secs: 5.0,
                measure_secs: 15.0,
                ..CalibrationBurst::default()
            },
            ..CalibrationOptions::default()
        }
    }

    #[test]
    fn table_shape_matches_scenario() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(10.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let table = calibrate(&topo, &base, &quick_options());
        assert_eq!(table.system_label, "<ED,2>");
        assert_eq!(table.anchors.len(), 2);
        for a in &table.anchors {
            assert_eq!(a.sources.len(), base.sources.len());
            assert_eq!(a.links.len(), topo.link_count());
            assert!(a.requests > 50, "burst too quiet: {} requests", a.requests);
            assert!(a.measured_ap > 0.0 && a.measured_ap <= 1.0);
            for s in &a.sources {
                assert!((s.first_share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert_eq!(s.first_share.len(), base.group_members.len());
            }
        }
        // Heavier anchor must not admit more than the light one.
        assert!(table.anchors[1].measured_ap <= table.anchors[0].measured_ap + 0.05);
    }

    #[test]
    fn jobs_do_not_change_the_table() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(10.0, SystemSpec::ShortestPath);
        let opts = quick_options();
        let serial = calibrate(&topo, &base, &opts);
        let parallel = calibrate(&topo, &base, &CalibrationOptions { jobs: 4, ..opts });
        assert_eq!(serial.canonical_json(), parallel.canonical_json());
    }

    /// Calibration bursts run through the experiment engine, so the
    /// route-oracle execution knob must not perturb the table either.
    #[test]
    fn route_oracle_does_not_change_the_table() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(10.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let opts = quick_options();
        let table = calibrate(&topo, &base, &opts);
        let oracle = calibrate(
            &topo,
            &base
                .clone()
                .with_routing(anycast_net::RouteMode::on_demand()),
            &opts,
        );
        assert_eq!(table.canonical_json(), oracle.canonical_json());
    }

    #[test]
    fn compression_keeps_real_lambda_and_boosts_evidence() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(8.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let burst = CalibrationBurst {
            warmup_secs: 20.0,
            measure_secs: 20.0,
            ..CalibrationBurst::default()
        };
        let plain = calibrate(
            &topo,
            &base,
            &CalibrationOptions {
                anchors: vec![8.0],
                burst: burst.clone(),
                ..CalibrationOptions::default()
            },
        );
        let compressed = calibrate(
            &topo,
            &base,
            &CalibrationOptions {
                anchors: vec![8.0],
                burst,
                time_compression: 5.0,
                ..CalibrationOptions::default()
            },
        );
        // The table is keyed by the real λ either way, and compression
        // packs ~5× the requests into the same simulated horizon.
        assert_eq!(compressed.anchors[0].lambda, 8.0);
        assert!(
            compressed.anchors[0].requests > 3 * plain.anchors[0].requests,
            "compressed {} vs plain {}",
            compressed.anchors[0].requests,
            plain.anchors[0].requests
        );
        assert!(compressed.anchors[0].measured_ap > 0.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_anchors_rejected() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(10.0, SystemSpec::ShortestPath);
        let _ = calibrate(
            &topo,
            &base,
            &CalibrationOptions {
                anchors: vec![20.0, 10.0],
                ..CalibrationOptions::default()
            },
        );
    }
}
