//! Property-based tests for the reservation engine.

use anycast_net::routing::bfs_tree;
use anycast_net::{topologies, Bandwidth, LinkStateTable, NodeId};
use anycast_rsvp::{MessageKind, ReservationEngine, SessionId};
use proptest::prelude::*;

proptest! {
    /// Arbitrary interleavings of reserve/teardown keep engine and ledger
    /// consistent, and draining everything restores pristine state.
    #[test]
    fn reserve_teardown_interleavings(
        ops in prop::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..200),
    ) {
        let topo = topologies::mci();
        let mut links = LinkStateTable::with_uniform_fraction(
            &topo,
            Bandwidth::from_mbps(100),
            0.2,
        );
        let mut engine = ReservationEngine::new();
        let mut live: Vec<SessionId> = Vec::new();
        let demand = Bandwidth::from_kbps(64);
        for (a, b, tear) in ops {
            if tear && !live.is_empty() {
                let s = live.swap_remove(a as usize % live.len());
                engine.teardown(&mut links, s).unwrap();
            } else {
                let src = NodeId::new(a % topo.node_count() as u32);
                let dst = NodeId::new(b % topo.node_count() as u32);
                let path = bfs_tree(&topo, src).path_to(&topo, dst).unwrap();
                if let Ok(out) = engine.probe_and_reserve(&mut links, &path, demand) {
                    live.push(out.session);
                }
            }
            prop_assert_eq!(engine.active_sessions(), live.len());
            // PATH = RESV + RESV_ERR at all times (per-hop accounting).
            let ledger = engine.ledger();
            prop_assert_eq!(
                ledger.count(MessageKind::Path),
                ledger.count(MessageKind::Resv) + ledger.count(MessageKind::ResvErr)
            );
        }
        for s in live {
            engine.teardown(&mut links, s).unwrap();
        }
        prop_assert_eq!(links.total_reserved(), Bandwidth::ZERO);
        prop_assert_eq!(engine.active_sessions(), 0);
        // Teardown hops mirror reservation hops once everything drained.
        let ledger = engine.ledger();
        prop_assert_eq!(
            ledger.count(MessageKind::PathTear),
            ledger.count(MessageKind::Resv)
        );
    }

    /// The reported route bandwidth equals the pre-reservation bottleneck
    /// and shrinks by exactly the demand after reservation.
    #[test]
    fn route_bandwidth_feedback_is_exact(
        pair in any::<(u32, u32)>(),
        preload_flows in 0u32..100,
    ) {
        let topo = topologies::mci();
        let mut links = LinkStateTable::with_uniform_fraction(
            &topo,
            Bandwidth::from_mbps(100),
            0.2,
        );
        let src = NodeId::new(pair.0 % topo.node_count() as u32);
        let dst = NodeId::new(pair.1 % topo.node_count() as u32);
        prop_assume!(src != dst);
        let path = bfs_tree(&topo, src).path_to(&topo, dst).unwrap();
        let mut engine = ReservationEngine::new();
        let demand = Bandwidth::from_kbps(64);
        for _ in 0..preload_flows {
            let _ = engine.probe_and_reserve(&mut links, &path, demand);
        }
        let expected = links.min_available_on(&path);
        if let Ok(out) = engine.probe_and_reserve(&mut links, &path, demand) {
            prop_assert_eq!(out.route_bandwidth, expected);
            prop_assert_eq!(
                links.min_available_on(&path),
                expected - demand
            );
        } else {
            prop_assert!(expected < demand);
        }
    }

    /// Failed probes never mutate the ledger (all-or-nothing), no matter
    /// where the bottleneck sits along the route.
    #[test]
    fn failed_probe_leaves_ledger_unchanged(
        pair in any::<(u32, u32)>(),
        bottleneck_pos in any::<u32>(),
    ) {
        let topo = topologies::mci();
        let mut links = LinkStateTable::with_uniform_fraction(
            &topo,
            Bandwidth::from_mbps(100),
            0.2,
        );
        let src = NodeId::new(pair.0 % topo.node_count() as u32);
        let dst = NodeId::new(pair.1 % topo.node_count() as u32);
        let path = bfs_tree(&topo, src).path_to(&topo, dst).unwrap();
        prop_assume!(path.hops() >= 1);
        let victim = path.links()[bottleneck_pos as usize % path.links().len()];
        let avail = links.available(victim);
        links.reserve(victim, avail).unwrap();
        let before: Vec<_> = links.iter().collect();
        let mut engine = ReservationEngine::new();
        let err = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap_err();
        prop_assert_eq!(err.failed_link, path.links()[err.hop_index]);
        let after: Vec<_> = links.iter().collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(engine.active_sessions(), 0);
    }
}
