//! The reservation engine: PATH/RESV walks over the link ledger.

use crate::{MessageKind, MessageLedger, Reservation, SessionId};
use anycast_net::{Bandwidth, LinkId, LinkStateTable, Path};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a reservation attempt failed: the PATH walk hit a link without
/// enough available bandwidth.
///
/// The failing link's position feeds the message accounting (the probe and
/// its error notification only crossed `hop_index + 1` links), and the
/// available bandwidth at the bottleneck is what a smarter AC-router could
/// learn from the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeError {
    /// The first link (in source→destination order) lacking bandwidth.
    pub failed_link: LinkId,
    /// Zero-based index of that link along the route.
    pub hop_index: usize,
    /// Bandwidth available on the bottleneck when the probe crossed it.
    pub available: Bandwidth,
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reservation blocked at {} (hop {}), only {} available",
            self.failed_link, self.hop_index, self.available
        )
    }
}

impl Error for ProbeError {}

/// Successful reservation: the session handle plus the RESV feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservationOutcome {
    /// Handle to release the reservation when the flow ends.
    pub session: SessionId,
    /// Minimum available bandwidth observed along the route *before* this
    /// flow's reservation — the `B_i` the paper's extended RESV message
    /// would carry back to the AC-router for WD/D+B.
    pub route_bandwidth: Bandwidth,
}

/// Errors from releasing a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeardownError {
    /// The session id was never issued or has already been torn down.
    UnknownSession(SessionId),
}

impl fmt::Display for TeardownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeardownError::UnknownSession(s) => write!(f, "unknown session {s}"),
        }
    }
}

impl Error for TeardownError {}

/// The RSVP-style reservation engine of §4.4.
///
/// `probe_and_reserve` performs the availability check (Task 1) as a PATH
/// walk from the source toward the destination — one PATH message per link
/// crossed, stopping at the first bottleneck — followed, on success, by a
/// RESV walk back that reserves every link atomically (Task 2). On failure
/// a RESV_ERR retraces the probed hops to notify the AC-router, which may
/// then retry another destination (§4.5).
///
/// All signaling is tallied in a [`MessageLedger`] so experiments can
/// report overhead in messages rather than abstract retrial counts.
#[derive(Debug, Default)]
pub struct ReservationEngine {
    next_id: u64,
    active: HashMap<SessionId, Reservation>,
    ledger: MessageLedger,
}

impl ReservationEngine {
    /// Creates an engine with no active sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to admit a flow of `bw` along `route`.
    ///
    /// On success every link of the route has `bw` reserved and a session
    /// is recorded; on failure the ledger is untouched (all-or-nothing).
    /// Trivial routes (source = destination) succeed without signaling.
    ///
    /// # Errors
    ///
    /// [`ProbeError`] naming the first bottleneck link.
    pub fn probe_and_reserve(
        &mut self,
        links: &mut LinkStateTable,
        route: &Path,
        bw: Bandwidth,
    ) -> Result<ReservationOutcome, ProbeError> {
        let hops = route.hops() as u64;
        // PATH walk: check hop by hop, stop at the first bottleneck.
        let mut route_bandwidth = Bandwidth::from_bps(u64::MAX);
        for (idx, link) in route.links().iter().enumerate() {
            let available = links.available(*link);
            self.ledger.record(MessageKind::Path, 1);
            if available < bw {
                // Error notification retraces the probed prefix.
                self.ledger.record(MessageKind::ResvErr, idx as u64 + 1);
                return Err(ProbeError {
                    failed_link: *link,
                    hop_index: idx,
                    available,
                });
            }
            route_bandwidth = route_bandwidth.min(available);
        }
        // RESV walk: reserve every link (atomic in the simulated world —
        // the PATH walk just verified availability and the DES admits no
        // interleaving between the two walks).
        links
            .reserve_path(route, bw)
            .expect("PATH walk verified availability on every link");
        self.ledger.record(MessageKind::Resv, hops);
        let session = SessionId::new(self.next_id);
        self.next_id += 1;
        self.active
            .insert(session, Reservation::new(route.clone(), bw));
        Ok(ReservationOutcome {
            session,
            route_bandwidth,
        })
    }

    /// Releases an admitted flow's reservations (PATH_TEAR walk).
    ///
    /// # Errors
    ///
    /// [`TeardownError::UnknownSession`] for unknown or double teardowns.
    pub fn teardown(
        &mut self,
        links: &mut LinkStateTable,
        session: SessionId,
    ) -> Result<Reservation, TeardownError> {
        let reservation = self
            .active
            .remove(&session)
            .ok_or(TeardownError::UnknownSession(session))?;
        links
            .release_path(reservation.path(), reservation.bandwidth())
            .expect("active sessions hold consistent reservations");
        self.ledger
            .record(MessageKind::PathTear, reservation.path().hops() as u64);
        Ok(reservation)
    }

    /// Minimum available bandwidth along `route` — the measurement an
    /// extended RESV message would report for WD/D+B. In the experiments
    /// this read is treated as free (the paper assumes the information is
    /// simply "available" at the AC-router once the protocol is extended).
    pub fn measure_route_bandwidth(&self, links: &LinkStateTable, route: &Path) -> Bandwidth {
        links.min_available_on(route)
    }

    /// Number of currently active sessions.
    pub fn active_sessions(&self) -> usize {
        self.active.len()
    }

    /// Looks up an active session's reservation.
    pub fn reservation(&self, session: SessionId) -> Option<&Reservation> {
        self.active.get(&session)
    }

    /// Iterates over all active sessions in unspecified order. Callers
    /// that need determinism (e.g. the fault injector tearing down the
    /// victims of a link failure) should sort the collected ids —
    /// [`session_ids_sorted`](Self::session_ids_sorted) does exactly that.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, &Reservation)> {
        self.active.iter().map(|(&s, r)| (s, r))
    }

    /// All active session ids, ascending — a deterministic iteration
    /// order independent of the hash map's internal state.
    pub fn session_ids_sorted(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self.active.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Active sessions whose route crosses `link`, ascending by id.
    /// These are the flows a failure of `link` severs.
    pub fn sessions_using_link(&self, link: LinkId) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .active
            .iter()
            .filter(|(_, r)| r.path().uses_link(link))
            .map(|(&s, _)| s)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Active sessions whose route visits `node` (as source, transit hop
    /// or destination), ascending by id. These are the flows a crash of
    /// `node` severs.
    pub fn sessions_through_node(&self, node: anycast_net::NodeId) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .active
            .iter()
            .filter(|(_, r)| r.path().nodes().contains(&node))
            .map(|(&s, _)| s)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The signaling message tally so far.
    pub fn ledger(&self) -> &MessageLedger {
        &self.ledger
    }

    /// Mutable ledger access for the two-phase machinery, which counts
    /// messages one crossing at a time instead of one walk at a time.
    pub(crate) fn ledger_mut(&mut self) -> &mut MessageLedger {
        &mut self.ledger
    }

    /// Installs a session whose per-link bandwidth was already committed
    /// hop by hop (two-phase RESV commit). The link ledger is untouched —
    /// the caller moved each hop's pending hold into the reserved column.
    pub(crate) fn install_committed(&mut self, route: Path, bw: Bandwidth) -> SessionId {
        let session = SessionId::new(self.next_id);
        self.next_id += 1;
        self.active.insert(session, Reservation::new(route, bw));
        session
    }

    /// Resets the message tally (sessions are unaffected).
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::routing::shortest_path;
    use anycast_net::{NodeId, Topology, TopologyBuilder};

    fn line4() -> (Topology, LinkStateTable, Path) {
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (1, 2), (2, 3)], Bandwidth::from_mbps(1))
            .unwrap();
        let topo = b.build();
        let links = LinkStateTable::from_topology(&topo);
        let path = shortest_path(&topo, NodeId::new(0), NodeId::new(3)).unwrap();
        (topo, links, path)
    }

    #[test]
    fn successful_reservation_counts_path_and_resv() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let out = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        assert_eq!(engine.ledger().count(MessageKind::Path), 3);
        assert_eq!(engine.ledger().count(MessageKind::Resv), 3);
        assert_eq!(engine.ledger().count(MessageKind::ResvErr), 0);
        assert_eq!(engine.active_sessions(), 1);
        assert_eq!(out.route_bandwidth, Bandwidth::from_mbps(1));
        assert!(engine.reservation(out.session).is_some());
    }

    #[test]
    fn failure_counts_partial_walk() {
        let (_t, mut links, path) = line4();
        // Saturate the middle link (hop index 1).
        links
            .reserve(path.links()[1], Bandwidth::from_mbps(1))
            .unwrap();
        let mut engine = ReservationEngine::new();
        let err = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap_err();
        assert_eq!(err.hop_index, 1);
        assert_eq!(err.failed_link, path.links()[1]);
        assert_eq!(err.available, Bandwidth::ZERO);
        // PATH crossed 2 links, RESV_ERR retraced them.
        assert_eq!(engine.ledger().count(MessageKind::Path), 2);
        assert_eq!(engine.ledger().count(MessageKind::ResvErr), 2);
        assert_eq!(engine.ledger().count(MessageKind::Resv), 0);
        assert_eq!(engine.active_sessions(), 0);
        // First link untouched (all-or-nothing).
        assert_eq!(links.available(path.links()[0]), Bandwidth::from_mbps(1));
    }

    #[test]
    fn teardown_releases_and_counts() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let out = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        let res = engine.teardown(&mut links, out.session).unwrap();
        assert_eq!(res.bandwidth(), Bandwidth::from_kbps(64));
        assert_eq!(engine.ledger().count(MessageKind::PathTear), 3);
        assert_eq!(engine.active_sessions(), 0);
        for l in path.links() {
            assert_eq!(links.available(*l), Bandwidth::from_mbps(1));
        }
        // Double teardown fails.
        assert_eq!(
            engine.teardown(&mut links, out.session).unwrap_err(),
            TeardownError::UnknownSession(out.session)
        );
    }

    #[test]
    fn trivial_route_needs_no_signaling() {
        let (_t, mut links, _) = line4();
        let mut engine = ReservationEngine::new();
        let p = Path::trivial(NodeId::new(1));
        let out = engine
            .probe_and_reserve(&mut links, &p, Bandwidth::from_mbps(999))
            .unwrap();
        assert_eq!(engine.ledger().total(), 0);
        assert_eq!(out.route_bandwidth, Bandwidth::from_bps(u64::MAX));
        engine.teardown(&mut links, out.session).unwrap();
        assert_eq!(engine.ledger().total(), 0);
    }

    #[test]
    fn sessions_have_unique_ids() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let a = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        let b = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        assert_ne!(a.session, b.session);
        assert_eq!(engine.active_sessions(), 2);
    }

    #[test]
    fn route_bandwidth_reflects_load() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(300))
            .unwrap();
        let measured = engine.measure_route_bandwidth(&links, &path);
        assert_eq!(measured, Bandwidth::from_bps(700_000));
        let out = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        assert_eq!(out.route_bandwidth, Bandwidth::from_bps(700_000));
    }

    #[test]
    fn reset_ledger_keeps_sessions() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        engine.reset_ledger();
        assert_eq!(engine.ledger().total(), 0);
        assert_eq!(engine.active_sessions(), 1);
    }

    #[test]
    fn session_queries_find_victims_of_a_fault() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        // Two flows over 0→3 and one trivial flow at node 1.
        let a = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        let b = engine
            .probe_and_reserve(&mut links, &path, Bandwidth::from_kbps(64))
            .unwrap();
        let c = engine
            .probe_and_reserve(&mut links, &Path::trivial(NodeId::new(1)), Bandwidth::ZERO)
            .unwrap();
        assert_eq!(
            engine.session_ids_sorted(),
            vec![a.session, b.session, c.session]
        );
        assert_eq!(
            engine.sessions_using_link(path.links()[1]),
            vec![a.session, b.session]
        );
        assert_eq!(
            engine.sessions_through_node(NodeId::new(1)),
            vec![a.session, b.session, c.session]
        );
        assert_eq!(engine.sessions_through_node(NodeId::new(3)).len(), 2);
        assert_eq!(engine.sessions().count(), 3);
        engine.teardown(&mut links, a.session).unwrap();
        assert_eq!(engine.sessions_using_link(path.links()[1]), vec![b.session]);
    }

    #[test]
    fn errors_display() {
        let e = ProbeError {
            failed_link: LinkId::new(2),
            hop_index: 1,
            available: Bandwidth::from_kbps(3),
        };
        assert!(e.to_string().contains("l2"));
        assert!(TeardownError::UnknownSession(SessionId::new(4))
            .to_string()
            .contains("s4"));
    }
}
