//! RSVP-style resource reservation for anycast flows.
//!
//! §4.4 of the paper performs resource reservation with "the standard RSVP
//! protocol": a PATH message travels hop-by-hop from the source toward the
//! selected destination checking available bandwidth, and a RESV message
//! travels back reserving it. This crate models that exchange over the
//! [`LinkStateTable`](anycast_net::LinkStateTable) ledger:
//!
//! * [`ReservationEngine::probe_and_reserve`] — the all-or-nothing admission
//!   test and reservation of §4.4's Task 1 + Task 2, returning a
//!   [`SessionId`] on success and the bottleneck link on failure;
//! * [`ReservationEngine::teardown`] — releases a session when its flow
//!   ends;
//! * [`MessageLedger`] — counts every signaling message by kind, the raw
//!   material of the paper's overhead metric (Figure 7 is "directly
//!   proportional to ... resource reservation messages");
//! * optional RESV feedback of the route's bottleneck bandwidth — the
//!   extension the paper says WD/D+B needs ("we have to extend it to let
//!   RESV message carry this kind of information back to AC-routers").
//!
//! # Example
//!
//! ```rust
//! use anycast_net::{topologies, Bandwidth, LinkStateTable, NodeId};
//! use anycast_net::routing::shortest_path;
//! use anycast_rsvp::ReservationEngine;
//!
//! let topo = topologies::mci();
//! let mut links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
//! let mut rsvp = ReservationEngine::new();
//!
//! let route = shortest_path(&topo, NodeId::new(1), NodeId::new(8)).unwrap();
//! let outcome = rsvp
//!     .probe_and_reserve(&mut links, &route, Bandwidth::from_kbps(64))
//!     .expect("idle network admits the first flow");
//! rsvp.teardown(&mut links, outcome.session).expect("session exists");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod message;
mod session;
mod soft_state;
mod two_phase;

pub use engine::{ProbeError, ReservationEngine, ReservationOutcome, TeardownError};
pub use message::{MessageKind, MessageLedger};
pub use session::{Reservation, SessionId};
pub use soft_state::{RefreshConfig, RefreshTracker};
pub use two_phase::{PathStep, SetupId, SetupTable};
