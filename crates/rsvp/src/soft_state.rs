//! Soft-state reservation lifecycle — the RSVP refresh model.
//!
//! Real RSVP reservations are *soft state*: they expire unless refreshed
//! every refresh period, which is how the protocol survives router
//! crashes and route changes without explicit teardown. The paper leans
//! on RSVP for its reservation step (§4.4) but, in a fault-free analysis,
//! never needs expiry; this module supplies it for the fault-injection
//! extension so that orphaned reservations (e.g. a source that silently
//! dies) eventually return their bandwidth.
//!
//! The tracker is deliberately decoupled from the simulation engine: the
//! caller feeds it the current simulated time, and it reports which
//! sessions have timed out. This keeps the module testable in isolation
//! and usable from any event loop.

use crate::SessionId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the refresh lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshConfig {
    /// Nominal interval between refreshes (RSVP's `R`, default 30 s).
    pub refresh_interval_secs: f64,
    /// How many consecutive missed refreshes kill a reservation (RSVP
    /// computes its lifetime as `(K + 0.5)·1.5·R` with `K = 3`; we keep
    /// the multiplier explicit).
    pub missed_refresh_limit: u32,
}

impl RefreshConfig {
    /// RSVP's defaults: 30 s refresh, state dies after ~3 missed
    /// refreshes.
    pub fn rsvp_default() -> Self {
        RefreshConfig {
            refresh_interval_secs: 30.0,
            missed_refresh_limit: 3,
        }
    }

    /// The lifetime granted by one refresh.
    pub fn lifetime_secs(&self) -> f64 {
        self.refresh_interval_secs * f64::from(self.missed_refresh_limit)
    }
}

impl Default for RefreshConfig {
    fn default() -> Self {
        Self::rsvp_default()
    }
}

/// Tracks refresh deadlines for active sessions.
///
/// ```rust
/// use anycast_rsvp::{RefreshConfig, RefreshTracker, SessionId};
///
/// let mut tracker = RefreshTracker::new(RefreshConfig::rsvp_default());
/// let s = SessionId::for_tests(1);
/// tracker.register(s, 0.0);
/// tracker.refresh(s, 60.0).unwrap();
/// // 60 + 90 s lifetime: expired well after 150.
/// assert_eq!(tracker.collect_expired(100.0), vec![]);
/// assert_eq!(tracker.collect_expired(151.0), vec![s]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RefreshTracker {
    config: RefreshConfig,
    deadlines: HashMap<SessionId, f64>,
}

impl RefreshTracker {
    /// Creates a tracker with the given lifecycle configuration.
    pub fn new(config: RefreshConfig) -> Self {
        RefreshTracker {
            config,
            deadlines: HashMap::new(),
        }
    }

    /// The lifecycle configuration.
    pub fn config(&self) -> RefreshConfig {
        self.config
    }

    /// Number of sessions currently tracked.
    pub fn tracked(&self) -> usize {
        self.deadlines.len()
    }

    /// Starts tracking a session installed at `now` (seconds of simulated
    /// time); its first deadline is one lifetime out.
    pub fn register(&mut self, session: SessionId, now: f64) {
        self.deadlines
            .insert(session, now + self.config.lifetime_secs());
    }

    /// Records a refresh for `session` at `now`, extending its deadline.
    ///
    /// # Errors
    ///
    /// Returns `Err(session)` when the session is unknown (already
    /// expired or torn down) — the caller should treat its state as gone
    /// and re-reserve, exactly as RSVP endpoints do.
    pub fn refresh(&mut self, session: SessionId, now: f64) -> Result<(), SessionId> {
        match self.deadlines.get_mut(&session) {
            Some(deadline) => {
                *deadline = now + self.config.lifetime_secs();
                Ok(())
            }
            None => Err(session),
        }
    }

    /// Stops tracking a session (explicit teardown).
    pub fn forget(&mut self, session: SessionId) {
        self.deadlines.remove(&session);
    }

    /// Removes and returns every session whose deadline passed at `now`,
    /// sorted by id for deterministic processing.
    pub fn collect_expired(&mut self, now: f64) -> Vec<SessionId> {
        let mut expired: Vec<SessionId> = self
            .deadlines
            .iter()
            .filter(|(_, &deadline)| deadline < now)
            .map(|(&s, _)| s)
            .collect();
        expired.sort_unstable();
        for s in &expired {
            self.deadlines.remove(s);
        }
        expired
    }

    /// The deadline currently recorded for `session`, if tracked. Lets a
    /// timer-driven caller arm exactly one expiry timer per session
    /// instead of polling [`collect_expired`](Self::collect_expired).
    pub fn deadline(&self, session: SessionId) -> Option<f64> {
        self.deadlines.get(&session).copied()
    }

    /// The next deadline across all sessions, for scheduling a sweep.
    pub fn next_deadline(&self) -> Option<f64> {
        self.deadlines
            .values()
            .copied()
            .min_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SessionId {
        SessionId::for_tests(n)
    }

    #[test]
    fn config_lifetime() {
        let c = RefreshConfig::rsvp_default();
        assert_eq!(c.lifetime_secs(), 90.0);
        assert_eq!(RefreshConfig::default(), c);
    }

    #[test]
    fn sessions_expire_without_refresh() {
        let mut t = RefreshTracker::new(RefreshConfig::rsvp_default());
        t.register(s(1), 0.0);
        t.register(s(2), 50.0);
        assert_eq!(t.tracked(), 2);
        assert_eq!(t.collect_expired(89.0), vec![]);
        assert_eq!(t.collect_expired(91.0), vec![s(1)]);
        assert_eq!(t.collect_expired(141.0), vec![s(2)]);
        assert_eq!(t.tracked(), 0);
    }

    #[test]
    fn refresh_extends_deadline() {
        let mut t = RefreshTracker::new(RefreshConfig::rsvp_default());
        t.register(s(1), 0.0);
        for now in [30.0, 60.0, 90.0, 120.0] {
            t.refresh(s(1), now).unwrap();
            assert!(t.collect_expired(now + 1.0).is_empty());
        }
        assert_eq!(t.collect_expired(120.0 + 91.0), vec![s(1)]);
    }

    #[test]
    fn refresh_after_expiry_fails() {
        let mut t = RefreshTracker::new(RefreshConfig::rsvp_default());
        t.register(s(1), 0.0);
        assert_eq!(t.collect_expired(1_000.0), vec![s(1)]);
        assert_eq!(t.refresh(s(1), 1_000.0), Err(s(1)));
    }

    #[test]
    fn forget_is_idempotent() {
        let mut t = RefreshTracker::new(RefreshConfig::rsvp_default());
        t.register(s(3), 0.0);
        t.forget(s(3));
        t.forget(s(3));
        assert_eq!(t.tracked(), 0);
        assert!(t.collect_expired(f64::MAX).is_empty());
    }

    #[test]
    fn expired_sorted_deterministically() {
        let mut t = RefreshTracker::new(RefreshConfig {
            refresh_interval_secs: 1.0,
            missed_refresh_limit: 1,
        });
        for n in [9u64, 3, 7, 1] {
            t.register(s(n), 0.0);
        }
        assert_eq!(t.collect_expired(2.0), vec![s(1), s(3), s(7), s(9)]);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut t = RefreshTracker::new(RefreshConfig::rsvp_default());
        assert_eq!(t.next_deadline(), None);
        t.register(s(1), 10.0);
        t.register(s(2), 0.0);
        assert_eq!(t.next_deadline(), Some(90.0));
    }
}
