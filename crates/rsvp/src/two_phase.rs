//! Latency-aware two-phase signalling: per-hop holds between PATH and RESV.
//!
//! [`ReservationEngine::probe_and_reserve`] collapses the PATH/RESV
//! exchange of §4.4 into one atomic instant — admission never acts on
//! stale state and concurrent setups never race. This module is the
//! honest version: a [`SetupTable`] tracks in-flight setup attempts whose
//! PATH messages cross one link at a time, placing **pending holds**
//! ([`LinkStateTable::place_hold`]) that count against availability
//! without being confirmed reservations. A RESV retraces the route and
//! commits every hold into a real session at the source
//! ([`SetupTable::complete`]); a RESV_ERR or a timeout releases them.
//!
//! The table is deliberately clockless and queue-less: the owning
//! simulation decides *when* each crossing happens (scheduling per-hop
//! message events, drawing losses and delays, arming hold-expiry timers)
//! and calls one transition per crossing. That keeps every transition
//! deterministic and unit-testable, and lets a zero-delay caller run the
//! whole exchange inline ([`SetupTable::run_express`]) with bit-identical
//! message counts and link-state effects to the atomic engine.
//!
//! Leak-freedom invariant: every hold placed by a transition is released
//! by exactly one of [`resv_err_step`](SetupTable::resv_err_step),
//! [`expire_hold`](SetupTable::expire_hold),
//! [`complete`](SetupTable::complete) (which converts it into a
//! reservation) or [`drain`](SetupTable::drain). A setup whose source has
//! given up ([`abandon`](SetupTable::abandon)) stays in the table, dead,
//! until its remaining holds expire — remote routers do not learn of the
//! source's timeout, so their holds die on their own timers.

use crate::{MessageKind, ProbeError, ReservationEngine, ReservationOutcome};
use anycast_net::{Bandwidth, LinkId, LinkStateTable, Path};
use std::collections::HashMap;
use std::fmt;

/// Identifier of one in-flight setup attempt. Unlike a
/// [`SessionId`](crate::SessionId), a `SetupId` names an *attempt*:
/// retransmissions of the same request get fresh ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetupId(u64);

impl SetupId {
    /// The raw attempt number (monotone per table).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SetupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Outcome of one PATH crossing ([`SetupTable::path_step`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStep {
    /// A hold was placed on `link`. When `reached_destination` is true the
    /// PATH walk is finished and the destination answers with a RESV.
    Held {
        /// The link the hold was placed on.
        link: LinkId,
        /// Whether this was the last hop of the route.
        reached_destination: bool,
    },
    /// The link lacked bandwidth: no hold was placed and a RESV_ERR should
    /// retrace hops `hop..=0` via [`SetupTable::resv_err_step`].
    Blocked(ProbeError),
}

#[derive(Debug, Clone)]
struct SetupState {
    route: Path,
    bw: Bandwidth,
    started_at: f64,
    /// Per-hop: whether a pending hold is currently placed on that link.
    holds: Vec<bool>,
    outstanding: usize,
    /// Minimum availability observed by the PATH walk *before* each own
    /// hold — the `B_i` feedback the RESV carries back.
    route_bandwidth: Bandwidth,
    blocked: Option<ProbeError>,
    /// The source gave up (timeout) or finished; in-flight state only
    /// lingers until the remaining holds drain.
    dead: bool,
}

/// The in-flight setup attempts of a two-phase signalling run.
#[derive(Debug, Default)]
pub struct SetupTable {
    next: u64,
    active: HashMap<SetupId, SetupState>,
}

impl SetupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a setup attempt for `bw` along `route` at simulated time
    /// `now`. The caller then drives the PATH walk hop by hop.
    pub fn begin(&mut self, route: Path, bw: Bandwidth, now: f64) -> SetupId {
        let id = SetupId(self.next);
        self.next += 1;
        let hops = route.hops();
        self.active.insert(
            id,
            SetupState {
                route,
                bw,
                started_at: now,
                holds: vec![false; hops],
                outstanding: 0,
                route_bandwidth: Bandwidth::from_bps(u64::MAX),
                blocked: None,
                dead: false,
            },
        );
        id
    }

    /// Whether `id` is known and its source is still waiting on it.
    pub fn is_live(&self, id: SetupId) -> bool {
        self.active.get(&id).is_some_and(|s| !s.dead)
    }

    /// Whether `id` still has state in the table (live or draining).
    pub fn contains(&self, id: SetupId) -> bool {
        self.active.contains_key(&id)
    }

    /// Number of setups with state in the table.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Hop count of the setup's route.
    pub fn hops(&self, id: SetupId) -> Option<usize> {
        self.active.get(&id).map(|s| s.route.hops())
    }

    /// The bandwidth the setup is reserving.
    pub fn bandwidth(&self, id: SetupId) -> Option<Bandwidth> {
        self.active.get(&id).map(|s| s.bw)
    }

    /// The simulated time the attempt started at.
    pub fn started_at(&self, id: SetupId) -> Option<f64> {
        self.active.get(&id).map(|s| s.started_at)
    }

    /// The bottleneck the PATH walk hit, once blocked.
    pub fn blocked_error(&self, id: SetupId) -> Option<ProbeError> {
        self.active.get(&id).and_then(|s| s.blocked)
    }

    /// The link the setup's route crosses at `hop`.
    pub fn link_at(&self, id: SetupId, hop: usize) -> Option<LinkId> {
        self.active
            .get(&id)
            .and_then(|s| s.route.links().get(hop).copied())
    }

    /// PATH attempts to cross link `hop`: counts one Path message, checks
    /// availability and places a hold. Returns `None` when the setup is no
    /// longer in the table (its state was reaped — the message is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range or already holds.
    pub fn path_step(
        &mut self,
        engine: &mut ReservationEngine,
        links: &mut LinkStateTable,
        id: SetupId,
        hop: usize,
    ) -> Option<PathStep> {
        let state = self.active.get_mut(&id)?;
        assert!(!state.holds[hop], "PATH must not cross a hop twice");
        let link = state.route.links()[hop];
        engine.ledger_mut().record(MessageKind::Path, 1);
        let available = links.available(link);
        if available < state.bw {
            let err = ProbeError {
                failed_link: link,
                hop_index: hop,
                available,
            };
            state.blocked = Some(err);
            return Some(PathStep::Blocked(err));
        }
        links
            .place_hold(link, state.bw)
            .expect("availability checked above");
        state.holds[hop] = true;
        state.outstanding += 1;
        state.route_bandwidth = state.route_bandwidth.min(available);
        Some(PathStep::Held {
            link,
            reached_destination: hop + 1 == state.route.hops(),
        })
    }

    /// RESV_ERR crosses link `hop` on its way back to the source: counts
    /// one ResvErr message and releases the hold at that hop, if one is
    /// still placed. Returns the released link (`Some(None)` = crossed but
    /// nothing to release, outer `None` = setup reaped, message dropped).
    pub fn resv_err_step(
        &mut self,
        engine: &mut ReservationEngine,
        links: &mut LinkStateTable,
        id: SetupId,
        hop: usize,
    ) -> Option<Option<LinkId>> {
        let state = self.active.get_mut(&id)?;
        engine.ledger_mut().record(MessageKind::ResvErr, 1);
        let released = if state.holds[hop] {
            let link = state.route.links()[hop];
            links
                .release_hold(link, state.bw)
                .expect("hold was placed by path_step");
            state.holds[hop] = false;
            state.outstanding -= 1;
            Some(link)
        } else {
            None
        };
        self.reap(id);
        Some(released)
    }

    /// RESV crosses one link on its way back to the source: counts one
    /// Resv message. Holds are committed only when the RESV reaches the
    /// source ([`complete`](Self::complete)), so a RESV lost mid-route
    /// leaves nothing half-reserved — the unconfirmed holds just expire.
    /// Returns whether the setup still had state (else the message drops).
    pub fn resv_step(&mut self, engine: &mut ReservationEngine, id: SetupId) -> bool {
        if !self.active.contains_key(&id) {
            return false;
        }
        engine.ledger_mut().record(MessageKind::Resv, 1);
        true
    }

    /// The RESV reached the source: commits every hold into a confirmed
    /// reservation and installs the session. Returns `None` when the setup
    /// is dead/reaped or a hold expired mid-setup (in which case the
    /// survivors are released and the attempt fails cleanly).
    pub fn complete(
        &mut self,
        engine: &mut ReservationEngine,
        links: &mut LinkStateTable,
        id: SetupId,
    ) -> Option<ReservationOutcome> {
        let intact = match self.active.get(&id) {
            Some(state) if !state.dead => state.outstanding == state.route.hops(),
            _ => return None,
        };
        let mut state = self.active.remove(&id).expect("checked above");
        if !intact {
            // A hold expired while the RESV was in flight (timeout shorter
            // than the round trip): the setup fails; free the survivors.
            release_outstanding(&mut state, links);
            return None;
        }
        for link in state.route.links() {
            links
                .commit_hold(*link, state.bw)
                .expect("every hop holds; commit cannot fail");
        }
        let session = engine.install_committed(state.route, state.bw);
        Some(ReservationOutcome {
            session,
            route_bandwidth: state.route_bandwidth,
        })
    }

    /// A hold-expiry timer fired: releases the hold at `hop` if it is
    /// still placed, returning the freed link.
    pub fn expire_hold(
        &mut self,
        links: &mut LinkStateTable,
        id: SetupId,
        hop: usize,
    ) -> Option<LinkId> {
        let state = self.active.get_mut(&id)?;
        if !state.holds[hop] {
            return None;
        }
        let link = state.route.links()[hop];
        links
            .release_hold(link, state.bw)
            .expect("hold was placed by path_step");
        state.holds[hop] = false;
        state.outstanding -= 1;
        self.reap(id);
        Some(link)
    }

    /// The source gives up on the attempt (setup timeout or refusal
    /// received). Remote holds are *not* released here — the routers
    /// holding them never hear of the source's decision; their holds
    /// expire on their own timers. Returns the number of holds still
    /// outstanding (0 means the state was reaped immediately).
    pub fn abandon(&mut self, id: SetupId) -> usize {
        let Some(state) = self.active.get_mut(&id) else {
            return 0;
        };
        state.dead = true;
        let outstanding = state.outstanding;
        self.reap(id);
        outstanding
    }

    /// End-of-run drain: releases every outstanding hold and clears the
    /// table, returning `(holds_released, bandwidth_released)`. After this
    /// the ledger's [`LinkStateTable::total_pending`] must be zero — the
    /// leak-freedom invariant.
    pub fn drain(&mut self, links: &mut LinkStateTable) -> (usize, Bandwidth) {
        let mut ids: Vec<SetupId> = self.active.keys().copied().collect();
        ids.sort_unstable();
        let mut released = 0usize;
        let mut bw_total = Bandwidth::ZERO;
        for id in ids {
            let mut state = self.active.remove(&id).expect("key just listed");
            let n = release_outstanding(&mut state, links);
            released += n;
            bw_total += state.bw.scaled(n as f64);
        }
        (released, bw_total)
    }

    /// Runs the entire two-phase exchange synchronously — the zero-delay,
    /// loss-free degenerate case. Bit-identical to
    /// [`ReservationEngine::probe_and_reserve`] in message counts,
    /// link-state effects and outcome, but every hop goes through the hold
    /// machinery (place → commit / release) like the event-driven path.
    ///
    /// # Errors
    ///
    /// [`ProbeError`] naming the first bottleneck link.
    pub fn run_express(
        &mut self,
        engine: &mut ReservationEngine,
        links: &mut LinkStateTable,
        route: &Path,
        bw: Bandwidth,
        now: f64,
    ) -> Result<ReservationOutcome, ProbeError> {
        let id = self.begin(route.clone(), bw, now);
        let hops = route.hops();
        for hop in 0..hops {
            match self
                .path_step(engine, links, id, hop)
                .expect("fresh setup is live")
            {
                PathStep::Held { .. } => {}
                PathStep::Blocked(err) => {
                    // RESV_ERR retraces the probed prefix, releasing every
                    // hold as it crosses.
                    for back in (0..=hop).rev() {
                        self.resv_err_step(engine, links, id, back);
                    }
                    self.abandon(id);
                    return Err(err);
                }
            }
        }
        for _ in 0..hops {
            self.resv_step(engine, id);
        }
        Ok(self
            .complete(engine, links, id)
            .expect("synchronous exchange keeps every hold intact"))
    }
}

/// Releases every hold a state still carries; returns how many.
fn release_outstanding(state: &mut SetupState, links: &mut LinkStateTable) -> usize {
    let mut n = 0;
    for (hop, held) in state.holds.iter_mut().enumerate() {
        if *held {
            links
                .release_hold(state.route.links()[hop], state.bw)
                .expect("hold was placed by path_step");
            *held = false;
            n += 1;
        }
    }
    state.outstanding = 0;
    n
}

impl SetupTable {
    fn reap(&mut self, id: SetupId) {
        if let Some(state) = self.active.get(&id) {
            if state.dead && state.outstanding == 0 {
                self.active.remove(&id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::routing::shortest_path;
    use anycast_net::{NodeId, Topology, TopologyBuilder};

    fn line4() -> (Topology, LinkStateTable, Path) {
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (1, 2), (2, 3)], Bandwidth::from_mbps(1))
            .unwrap();
        let topo = b.build();
        let links = LinkStateTable::from_topology(&topo);
        let path = shortest_path(&topo, NodeId::new(0), NodeId::new(3)).unwrap();
        (topo, links, path)
    }

    #[test]
    fn express_matches_atomic_engine_on_success() {
        let (_t, mut links_a, path) = line4();
        let mut links_b = links_a.clone();
        let mut atomic = ReservationEngine::new();
        let a = atomic
            .probe_and_reserve(&mut links_a, &path, Bandwidth::from_kbps(64))
            .unwrap();
        let mut two = ReservationEngine::new();
        let mut table = SetupTable::new();
        let b = table
            .run_express(&mut two, &mut links_b, &path, Bandwidth::from_kbps(64), 0.0)
            .unwrap();
        assert_eq!(atomic.ledger(), two.ledger());
        assert_eq!(a.route_bandwidth, b.route_bandwidth);
        assert_eq!(a.session, b.session, "session ids issued identically");
        for (la, lb) in links_a.iter().zip(links_b.iter()) {
            assert_eq!(la, lb, "link state must match the atomic engine");
        }
        assert_eq!(links_b.total_pending(), Bandwidth::ZERO);
        assert_eq!(table.in_flight(), 0);
        // Teardown works through the normal engine path.
        two.teardown(&mut links_b, b.session).unwrap();
    }

    #[test]
    fn express_matches_atomic_engine_on_bottleneck() {
        let (_t, mut links_a, path) = line4();
        links_a
            .reserve(path.links()[1], Bandwidth::from_mbps(1))
            .unwrap();
        let mut links_b = links_a.clone();
        let mut atomic = ReservationEngine::new();
        let ea = atomic
            .probe_and_reserve(&mut links_a, &path, Bandwidth::from_kbps(64))
            .unwrap_err();
        let mut two = ReservationEngine::new();
        let mut table = SetupTable::new();
        let eb = table
            .run_express(&mut two, &mut links_b, &path, Bandwidth::from_kbps(64), 0.0)
            .unwrap_err();
        assert_eq!(ea, eb);
        assert_eq!(atomic.ledger(), two.ledger());
        for (la, lb) in links_a.iter().zip(links_b.iter()) {
            assert_eq!(la, lb);
        }
        assert_eq!(links_b.total_pending(), Bandwidth::ZERO);
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn express_trivial_route_needs_no_signaling() {
        let (_t, mut links, _) = line4();
        let mut engine = ReservationEngine::new();
        let mut table = SetupTable::new();
        let p = Path::trivial(NodeId::new(1));
        let out = table
            .run_express(&mut engine, &mut links, &p, Bandwidth::from_mbps(999), 0.0)
            .unwrap();
        assert_eq!(engine.ledger().total(), 0);
        assert_eq!(out.route_bandwidth, Bandwidth::from_bps(u64::MAX));
        engine.teardown(&mut links, out.session).unwrap();
    }

    #[test]
    fn holds_race_between_overlapping_setups() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let mut table = SetupTable::new();
        let bw = Bandwidth::from_kbps(600);
        let first = table.begin(path.clone(), bw, 0.0);
        let second = table.begin(path.clone(), bw, 0.1);
        assert!(matches!(
            table.path_step(&mut engine, &mut links, first, 0),
            Some(PathStep::Held { .. })
        ));
        // The second setup sees the first one's hold and is refused, even
        // though nothing is *reserved* yet.
        match table.path_step(&mut engine, &mut links, second, 0) {
            Some(PathStep::Blocked(err)) => {
                assert_eq!(err.hop_index, 0);
                assert_eq!(err.available, Bandwidth::from_kbps(400));
            }
            other => panic!("expected a block, got {other:?}"),
        }
        assert_eq!(table.blocked_error(second).unwrap().hop_index, 0);
    }

    #[test]
    fn abandon_keeps_holds_until_expiry_then_reaps() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let mut table = SetupTable::new();
        let bw = Bandwidth::from_kbps(64);
        let id = table.begin(path.clone(), bw, 0.0);
        table.path_step(&mut engine, &mut links, id, 0);
        table.path_step(&mut engine, &mut links, id, 1);
        assert_eq!(links.total_pending(), Bandwidth::from_bps(128_000));
        // Source times out: holds survive (remote routers don't know).
        assert_eq!(table.abandon(id), 2);
        assert!(table.contains(id));
        assert!(!table.is_live(id));
        assert_eq!(links.total_pending(), Bandwidth::from_bps(128_000));
        // Hold timers fire one by one.
        assert_eq!(table.expire_hold(&mut links, id, 0), Some(path.links()[0]));
        assert!(table.contains(id), "state lingers while holds remain");
        assert_eq!(table.expire_hold(&mut links, id, 1), Some(path.links()[1]));
        assert!(!table.contains(id), "reaped once the last hold drains");
        assert_eq!(links.total_pending(), Bandwidth::ZERO);
        // Late messages for the reaped setup are dropped.
        assert!(table.path_step(&mut engine, &mut links, id, 2).is_none());
        assert!(!table.resv_step(&mut engine, id));
    }

    #[test]
    fn lost_resv_leaves_no_partial_reservation() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let mut table = SetupTable::new();
        let bw = Bandwidth::from_kbps(64);
        let id = table.begin(path.clone(), bw, 0.0);
        for hop in 0..3 {
            table.path_step(&mut engine, &mut links, id, hop);
        }
        // RESV crosses one hop then is lost; nothing was committed.
        assert!(table.resv_step(&mut engine, id));
        assert_eq!(links.total_reserved(), Bandwidth::ZERO);
        assert_eq!(engine.active_sessions(), 0);
        // Source timeout, then the hold timers fire; all bandwidth returns.
        table.abandon(id);
        for hop in 0..3 {
            table.expire_hold(&mut links, id, hop);
        }
        assert_eq!(links.total_pending(), Bandwidth::ZERO);
        assert_eq!(links.total_reserved(), Bandwidth::ZERO);
    }

    #[test]
    fn complete_after_mid_setup_expiry_fails_cleanly() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let mut table = SetupTable::new();
        let bw = Bandwidth::from_kbps(64);
        let id = table.begin(path.clone(), bw, 0.0);
        for hop in 0..3 {
            table.path_step(&mut engine, &mut links, id, hop);
        }
        // One hold expires while the RESV is still in flight.
        table.expire_hold(&mut links, id, 1);
        assert!(table.complete(&mut engine, &mut links, id).is_none());
        assert_eq!(engine.active_sessions(), 0);
        assert_eq!(links.total_pending(), Bandwidth::ZERO, "survivors freed");
        assert!(!table.contains(id));
    }

    #[test]
    fn drain_releases_everything() {
        let (_t, mut links, path) = line4();
        let mut engine = ReservationEngine::new();
        let mut table = SetupTable::new();
        let bw = Bandwidth::from_kbps(100);
        let a = table.begin(path.clone(), bw, 0.0);
        let b = table.begin(path.clone(), bw, 0.0);
        table.path_step(&mut engine, &mut links, a, 0);
        table.path_step(&mut engine, &mut links, a, 1);
        table.path_step(&mut engine, &mut links, b, 0);
        let (released, bw_released) = table.drain(&mut links);
        assert_eq!(released, 3);
        assert_eq!(bw_released, Bandwidth::from_kbps(300));
        assert_eq!(links.total_pending(), Bandwidth::ZERO);
        assert_eq!(table.in_flight(), 0);
    }
}
