//! Signaling message kinds and the per-run message ledger.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The RSVP message kinds exchanged during admission and teardown.
///
/// One message of a given kind is counted per link it crosses, matching how
/// signaling load scales with route length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Downstream probe from the source toward the candidate destination
    /// (availability check of §4.4 Task 1).
    Path,
    /// Upstream reservation confirming the probe (§4.4 Task 2).
    Resv,
    /// Upstream error: a link on the route lacked bandwidth.
    ResvErr,
    /// Downstream teardown releasing a session's reservations.
    PathTear,
}

impl MessageKind {
    /// All message kinds, for iteration in reports.
    pub const ALL: [MessageKind; 4] = [
        MessageKind::Path,
        MessageKind::Resv,
        MessageKind::ResvErr,
        MessageKind::PathTear,
    ];
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::Path => "PATH",
            MessageKind::Resv => "RESV",
            MessageKind::ResvErr => "RESV_ERR",
            MessageKind::PathTear => "PATH_TEAR",
        };
        f.write_str(s)
    }
}

/// Counts signaling messages by kind over a simulation run.
///
/// The paper's overhead argument (§5.2.2, Figure 7) is that each retrial
/// costs a reservation round-trip; this ledger makes that cost measurable
/// rather than assumed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageLedger {
    path: u64,
    resv: u64,
    resv_err: u64,
    path_tear: u64,
}

impl MessageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `hops` messages of the given kind (one per link crossed).
    pub fn record(&mut self, kind: MessageKind, hops: u64) {
        match kind {
            MessageKind::Path => self.path += hops,
            MessageKind::Resv => self.resv += hops,
            MessageKind::ResvErr => self.resv_err += hops,
            MessageKind::PathTear => self.path_tear += hops,
        }
    }

    /// Message count for one kind.
    pub fn count(&self, kind: MessageKind) -> u64 {
        match kind {
            MessageKind::Path => self.path,
            MessageKind::Resv => self.resv,
            MessageKind::ResvErr => self.resv_err,
            MessageKind::PathTear => self.path_tear,
        }
    }

    /// Total messages across all kinds.
    pub fn total(&self) -> u64 {
        self.path + self.resv + self.resv_err + self.path_tear
    }

    /// Messages attributable to admission attempts (everything except
    /// teardown) — the overhead the retrial limit `R` trades against.
    pub fn admission_total(&self) -> u64 {
        self.path + self.resv + self.resv_err
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &MessageLedger) {
        self.path += other.path;
        self.resv += other.resv;
        self.resv_err += other.resv_err;
        self.path_tear += other.path_tear;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = MessageLedger::default();
    }
}

impl fmt::Display for MessageLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PATH={} RESV={} RESV_ERR={} PATH_TEAR={}",
            self.path, self.resv, self.resv_err, self.path_tear
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut l = MessageLedger::new();
        l.record(MessageKind::Path, 4);
        l.record(MessageKind::Resv, 4);
        l.record(MessageKind::ResvErr, 2);
        l.record(MessageKind::PathTear, 4);
        assert_eq!(l.count(MessageKind::Path), 4);
        assert_eq!(l.count(MessageKind::Resv), 4);
        assert_eq!(l.count(MessageKind::ResvErr), 2);
        assert_eq!(l.count(MessageKind::PathTear), 4);
        assert_eq!(l.total(), 14);
        assert_eq!(l.admission_total(), 10);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MessageLedger::new();
        a.record(MessageKind::Path, 3);
        let mut b = MessageLedger::new();
        b.record(MessageKind::Path, 2);
        b.record(MessageKind::Resv, 1);
        a.merge(&b);
        assert_eq!(a.count(MessageKind::Path), 5);
        assert_eq!(a.count(MessageKind::Resv), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut l = MessageLedger::new();
        l.record(MessageKind::PathTear, 9);
        l.reset();
        assert_eq!(l.total(), 0);
        assert_eq!(l, MessageLedger::default());
    }

    #[test]
    fn display_nonempty() {
        let l = MessageLedger::new();
        assert!(l.to_string().contains("PATH=0"));
        for k in MessageKind::ALL {
            assert!(!k.to_string().is_empty());
        }
    }
}
