//! Reservation sessions.

use anycast_net::{Bandwidth, Path};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of an active reservation session.
///
/// Returned by a successful
/// [`probe_and_reserve`](crate::ReservationEngine::probe_and_reserve) and
/// redeemed at [`teardown`](crate::ReservationEngine::teardown) when the
/// flow's lifetime expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(u64);

impl SessionId {
    pub(crate) fn new(raw: u64) -> Self {
        SessionId(raw)
    }

    /// Constructs an arbitrary session id for tests and documentation.
    ///
    /// Real ids are only ever issued by
    /// [`ReservationEngine::probe_and_reserve`](crate::ReservationEngine::probe_and_reserve);
    /// ids minted here will not resolve against an engine.
    pub fn for_tests(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw session number (monotone per engine).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a session id from its raw number — the inverse of
    /// [`raw`](Self::raw), for ids that crossed a process boundary (the
    /// daemon's wire `teardown` op names sessions by number). An id that
    /// was never issued simply resolves to nothing.
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The state held for one admitted flow: its route and reserved bandwidth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    path: Path,
    bandwidth: Bandwidth,
}

impl Reservation {
    pub(crate) fn new(path: Path, bandwidth: Bandwidth) -> Self {
        Reservation { path, bandwidth }
    }

    /// The route the flow was admitted onto.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The bandwidth reserved on every link of the route.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::NodeId;

    #[test]
    fn session_id_display_and_order() {
        assert_eq!(SessionId::new(5).to_string(), "s5");
        assert!(SessionId::new(1) < SessionId::new(2));
        assert_eq!(SessionId::new(3).raw(), 3);
    }

    #[test]
    fn reservation_accessors() {
        let p = Path::trivial(NodeId::new(2));
        let r = Reservation::new(p.clone(), Bandwidth::from_kbps(64));
        assert_eq!(r.path(), &p);
        assert_eq!(r.bandwidth(), Bandwidth::from_kbps(64));
    }
}
