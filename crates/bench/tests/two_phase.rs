//! Satellite invariance property for the two-phase signalling engine:
//! degenerate two-phase (zero per-hop delay, no signalling faults,
//! whatever the timeout) is bit-identical to the atomic engine — same
//! metrics, same message ledger, same event streams — for every `--jobs`
//! value, and delayed two-phase sweeps stay jobs-invariant too.

use anycast_bench::{run_grid_traced, TracedCell};
use anycast_dac::experiment::{ExperimentConfig, SignalingMode, SystemSpec, TwoPhaseConfig};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;
use anycast_telemetry::TelemetryMode;

fn configs(signaling: SignalingMode) -> Vec<ExperimentConfig> {
    [20.0, 45.0]
        .into_iter()
        .map(|lambda| {
            ExperimentConfig::paper_defaults(lambda, SystemSpec::dac(PolicySpec::Ed, 2))
                .with_warmup_secs(20.0)
                .with_measure_secs(80.0)
                .with_signaling(signaling)
        })
        .collect()
}

fn assert_cells_identical(a: &[TracedCell], b: &[TracedCell], what: &str) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.config_index, y.config_index);
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.metrics, y.metrics, "{what}: metrics diverged");
        assert_eq!(x.events, y.events, "{what}: event streams diverged");
    }
}

#[test]
fn degenerate_two_phase_matches_atomic_for_every_job_count() {
    let topo = topologies::mci();
    let seeds = [11, 22];
    let atomic = configs(SignalingMode::Atomic);
    // An infinite timeout and a non-default backoff must be irrelevant:
    // with zero delay and no faults the exchange is synchronous.
    let degenerate = configs(SignalingMode::TwoPhase(TwoPhaseConfig {
        setup_timeout_secs: f64::INFINITY,
        ..TwoPhaseConfig::default()
    }));
    let (_, atomic_cells) = run_grid_traced(&topo, &atomic, &seeds, 1, TelemetryMode::ring());
    for jobs in [1, 2, 4] {
        let (_, cells) = run_grid_traced(&topo, &degenerate, &seeds, jobs, TelemetryMode::ring());
        assert_cells_identical(&atomic_cells, &cells, "degenerate two-phase vs atomic");
    }
    // The equality above includes admitted/rejected counts and the
    // per-kind message ledger; spot-check the ledger is non-trivial.
    let ledger = &atomic_cells[0].metrics.messages;
    assert!(ledger.total() > 0, "the runs must exchange messages");
}

#[test]
fn delayed_two_phase_sweep_is_jobs_invariant() {
    let topo = topologies::mci();
    let seeds = [11, 22];
    let delayed = configs(SignalingMode::TwoPhase(TwoPhaseConfig {
        per_hop_delay_secs: 0.05,
        ..TwoPhaseConfig::default()
    }));
    let (serial_sum, serial_cells) =
        run_grid_traced(&topo, &delayed, &seeds, 1, TelemetryMode::ring());
    for jobs in [2, 4] {
        let (par_sum, par_cells) =
            run_grid_traced(&topo, &delayed, &seeds, jobs, TelemetryMode::ring());
        assert_cells_identical(&serial_cells, &par_cells, "delayed two-phase");
        for (a, b) in serial_sum.iter().zip(&par_sum) {
            assert_eq!(a.runs, b.runs, "jobs={jobs}");
        }
    }
    assert!(
        serial_cells
            .iter()
            .all(|c| c.metrics.setups_completed > 0 && c.metrics.holds_placed > 0),
        "delayed cells actually exercised the signalling engine"
    );
}
