//! Integration tests for the experiment harness itself: the figure
//! drivers must produce well-formed, deterministic output at smoke-test
//! scale.

use anycast_bench::figures::{comparison_systems, run_comparison};
use anycast_bench::{
    run_grid, run_replicated, RunSettings, LAMBDA_GRID, RETRIAL_GRID, TABLE_LAMBDAS,
};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;

fn tiny() -> RunSettings {
    RunSettings {
        warmup_secs: 30.0,
        measure_secs: 60.0,
        seeds: [1, 2, 3],
        replications: 2,
        jobs: 2,
    }
}

#[test]
fn grids_cover_the_paper_ranges() {
    assert_eq!(LAMBDA_GRID.len(), 10);
    assert_eq!(LAMBDA_GRID[0], 5.0);
    assert_eq!(LAMBDA_GRID[9], 50.0);
    assert_eq!(RETRIAL_GRID, [1, 2, 3, 4, 5]);
    assert_eq!(TABLE_LAMBDAS, [5.0, 20.0, 35.0, 50.0]);
    // Nondecreasing sweep order.
    assert!(LAMBDA_GRID.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn comparison_systems_are_the_figure6_lineup() {
    let labels: Vec<String> = comparison_systems().iter().map(|s| s.label()).collect();
    assert_eq!(
        labels,
        vec!["<ED,2>", "<WD/D+H,2>", "<WD/D+B,2>", "SP", "GDI"]
    );
}

#[test]
fn run_comparison_shape_and_determinism() {
    let topo = topologies::mci();
    let settings = tiny();
    let rows = run_comparison(&topo, &settings);
    assert_eq!(rows.len(), LAMBDA_GRID.len());
    for (row, &lambda) in rows.iter().zip(&LAMBDA_GRID) {
        assert_eq!(row.len(), comparison_systems().len());
        for rep in row {
            assert_eq!(rep.lambda, lambda);
            assert_eq!(rep.runs.len(), settings.replications);
            assert!((0.0..=1.0).contains(&rep.admission_probability));
        }
    }
    // Determinism: re-running reproduces the exact metrics.
    let again = run_comparison(&topo, &settings);
    for (a, b) in rows.iter().flatten().zip(again.iter().flatten()) {
        assert_eq!(a.runs, b.runs);
    }
}

#[test]
fn replication_stderr_reflects_seed_spread() {
    let topo = topologies::mci();
    let cfg = ExperimentConfig::paper_defaults(35.0, SystemSpec::dac(PolicySpec::Ed, 2))
        .with_warmup_secs(60.0)
        .with_measure_secs(120.0);
    let one = run_replicated(&topo, &cfg, &[1]);
    let three = run_replicated(&topo, &cfg, &[1, 2, 3]);
    assert_eq!(one.ap_stderr, 0.0);
    assert!(
        three.ap_stderr > 0.0,
        "distinct seeds must disagree a little"
    );
    assert_eq!(three.runs.len(), 3);
}

#[test]
fn grid_results_keep_config_order() {
    let topo = topologies::mci();
    let configs: Vec<ExperimentConfig> = [50.0, 5.0, 30.0]
        .iter()
        .map(|&l| {
            ExperimentConfig::paper_defaults(l, SystemSpec::ShortestPath)
                .with_warmup_secs(30.0)
                .with_measure_secs(60.0)
        })
        .collect();
    let results = run_grid(&topo, &configs, &[9], 2);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].lambda, 50.0);
    assert_eq!(results[1].lambda, 5.0);
    assert_eq!(results[2].lambda, 30.0);
    // λ=5 trivially admits more than λ=50.
    assert!(results[1].admission_probability > results[0].admission_probability);
}
