//! Sweep-layer guarantee for batched same-quantum admission: a batched
//! grid is **bit-for-bit identical** to its sequential twin for every
//! `--jobs` value — metrics, replications, and the full telemetry event
//! stream of every cell.

use anycast_bench::figures::comparison_systems;
use anycast_bench::{run_grid, run_grid_traced};
use anycast_chaos::FaultPlan;
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_net::topologies;
use anycast_sim::SimRng;
use anycast_telemetry::TelemetryMode;

fn short(lambda: f64, system: SystemSpec, batch: bool) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(30.0)
        .with_measure_secs(90.0)
        .with_batching(batch)
}

/// All five systems of Figures 6/7 at saturating load: the batched grid
/// reproduces the sequential grid exactly, for jobs ∈ {1, 2, 4}.
#[test]
fn batched_grid_matches_sequential_for_every_jobs() {
    let topo = topologies::mci();
    let sequential: Vec<ExperimentConfig> = comparison_systems()
        .into_iter()
        .map(|system| short(40.0, system, false))
        .collect();
    let batched: Vec<ExperimentConfig> = comparison_systems()
        .into_iter()
        .map(|system| short(40.0, system, true))
        .collect();
    let seeds = [SimRng::substream_seed(5, 0), SimRng::substream_seed(5, 1)];
    let baseline = run_grid(&topo, &sequential, &seeds, 1);
    for jobs in [1, 2, 4] {
        let under_test = run_grid(&topo, &batched, &seeds, jobs);
        assert_eq!(baseline.len(), under_test.len());
        for (a, b) in baseline.iter().zip(&under_test) {
            assert_eq!(
                a.runs, b.runs,
                "{}: batched jobs={jobs} diverged from sequential jobs=1",
                a.label
            );
        }
    }
}

/// Batching commutes with chaos at the sweep layer too.
#[test]
fn batched_grid_matches_sequential_under_faults() {
    let topo = topologies::mci();
    let plan = FaultPlan::none()
        .with_link_model(300.0, 60.0)
        .with_teardown_loss(0.1)
        .with_teardown_delay(2.0);
    let systems = comparison_systems();
    let sequential: Vec<ExperimentConfig> = systems
        .iter()
        .map(|s| short(25.0, *s, false).with_faults(plan.clone()))
        .collect();
    let batched: Vec<ExperimentConfig> = systems
        .iter()
        .map(|s| short(25.0, *s, true).with_faults(plan.clone()))
        .collect();
    let seeds = [SimRng::substream_seed(7, 0)];
    let a = run_grid(&topo, &sequential, &seeds, 2);
    let b = run_grid(&topo, &batched, &seeds, 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.runs, y.runs, "{}: batched chaos grid diverged", x.label);
    }
}

/// Stream-level equality through the traced sweep: every cell's telemetry
/// events — timestamps included — are identical, so the batched path is
/// indistinguishable to any downstream consumer of the event stream.
#[test]
fn batched_traced_grid_streams_are_identical() {
    let topo = topologies::mci();
    let systems = [
        SystemSpec::GlobalDynamic,
        comparison_systems()[1], // <WD/D+H,2>
    ];
    let sequential: Vec<ExperimentConfig> =
        systems.iter().map(|s| short(40.0, *s, false)).collect();
    let batched: Vec<ExperimentConfig> = systems.iter().map(|s| short(40.0, *s, true)).collect();
    let seeds = [SimRng::substream_seed(3, 0)];
    let (seq_metrics, seq_cells) =
        run_grid_traced(&topo, &sequential, &seeds, 2, TelemetryMode::ring());
    let (bat_metrics, bat_cells) =
        run_grid_traced(&topo, &batched, &seeds, 2, TelemetryMode::ring());
    for (a, b) in seq_metrics.iter().zip(&bat_metrics) {
        assert_eq!(a.runs, b.runs, "{}: traced batched grid diverged", a.label);
    }
    assert_eq!(seq_cells.len(), bat_cells.len());
    for (a, b) in seq_cells.iter().zip(&bat_cells) {
        assert_eq!(a.config_index, b.config_index);
        assert_eq!(a.seed, b.seed);
        assert!(!a.events.is_empty(), "traced cells must capture events");
        assert_eq!(
            a.events, b.events,
            "cell {} seed {}: batched telemetry stream diverged",
            a.config_index, a.seed
        );
    }
}
