//! Sweep-layer guarantee for batched same-quantum admission: a batched
//! grid is **bit-for-bit identical** to its sequential twin for every
//! `--jobs` value — metrics, replications, and the full telemetry event
//! stream of every cell.

use anycast_bench::figures::comparison_systems;
use anycast_bench::{run_grid, run_grid_traced};
use anycast_chaos::FaultPlan;
use anycast_dac::experiment::{
    DemandClass, ExperimentConfig, GroupSpec, SignalingMode, SystemSpec, TwoPhaseConfig,
};
use anycast_net::{topologies, Bandwidth, NodeId};
use anycast_sim::SimRng;
use anycast_telemetry::TelemetryMode;

fn short(lambda: f64, system: SystemSpec, batch: bool) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(30.0)
        .with_measure_secs(90.0)
        .with_batching(batch)
}

/// All five systems of Figures 6/7 at saturating load: the batched grid
/// reproduces the sequential grid exactly, for jobs ∈ {1, 2, 4}.
#[test]
fn batched_grid_matches_sequential_for_every_jobs() {
    let topo = topologies::mci();
    let sequential: Vec<ExperimentConfig> = comparison_systems()
        .into_iter()
        .map(|system| short(40.0, system, false))
        .collect();
    let batched: Vec<ExperimentConfig> = comparison_systems()
        .into_iter()
        .map(|system| short(40.0, system, true))
        .collect();
    let seeds = [SimRng::substream_seed(5, 0), SimRng::substream_seed(5, 1)];
    let baseline = run_grid(&topo, &sequential, &seeds, 1);
    for jobs in [1, 2, 4] {
        let under_test = run_grid(&topo, &batched, &seeds, jobs);
        assert_eq!(baseline.len(), under_test.len());
        for (a, b) in baseline.iter().zip(&under_test) {
            assert_eq!(
                a.runs, b.runs,
                "{}: batched jobs={jobs} diverged from sequential jobs=1",
                a.label
            );
        }
    }
}

/// Batching commutes with chaos at the sweep layer too.
#[test]
fn batched_grid_matches_sequential_under_faults() {
    let topo = topologies::mci();
    let plan = FaultPlan::none()
        .with_link_model(300.0, 60.0)
        .with_teardown_loss(0.1)
        .with_teardown_delay(2.0);
    let systems = comparison_systems();
    let sequential: Vec<ExperimentConfig> = systems
        .iter()
        .map(|s| short(25.0, *s, false).with_faults(plan.clone()))
        .collect();
    let batched: Vec<ExperimentConfig> = systems
        .iter()
        .map(|s| short(25.0, *s, true).with_faults(plan.clone()))
        .collect();
    let seeds = [SimRng::substream_seed(7, 0)];
    let a = run_grid(&topo, &sequential, &seeds, 2);
    let b = run_grid(&topo, &batched, &seeds, 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.runs, y.runs, "{}: batched chaos grid diverged", x.label);
    }
}

/// Stream-level equality through the traced sweep: every cell's telemetry
/// events — timestamps included — are identical, so the batched path is
/// indistinguishable to any downstream consumer of the event stream.
#[test]
fn batched_traced_grid_streams_are_identical() {
    let topo = topologies::mci();
    let systems = [
        SystemSpec::GlobalDynamic,
        comparison_systems()[1], // <WD/D+H,2>
    ];
    let sequential: Vec<ExperimentConfig> =
        systems.iter().map(|s| short(40.0, *s, false)).collect();
    let batched: Vec<ExperimentConfig> = systems.iter().map(|s| short(40.0, *s, true)).collect();
    let seeds = [SimRng::substream_seed(3, 0)];
    let (seq_metrics, seq_cells) =
        run_grid_traced(&topo, &sequential, &seeds, 2, TelemetryMode::ring());
    let (bat_metrics, bat_cells) =
        run_grid_traced(&topo, &batched, &seeds, 2, TelemetryMode::ring());
    for (a, b) in seq_metrics.iter().zip(&bat_metrics) {
        assert_eq!(a.runs, b.runs, "{}: traced batched grid diverged", a.label);
    }
    assert_eq!(seq_cells.len(), bat_cells.len());
    for (a, b) in seq_cells.iter().zip(&bat_cells) {
        assert_eq!(a.config_index, b.config_index);
        assert_eq!(a.seed, b.seed);
        assert!(!a.events.is_empty(), "traced cells must capture events");
        assert_eq!(
            a.events, b.events,
            "cell {} seed {}: batched telemetry stream diverged",
            a.config_index, a.seed
        );
    }
}

/// The tentpole invariant of the parallel in-batch evaluator: for every
/// system, `batch_jobs = N` reproduces `batch_jobs = 1` bit-for-bit —
/// the parallel precompute installs exactly the values the sequential
/// commit loop would have computed lazily.
#[test]
fn parallel_batch_evaluation_is_jobs_invariant() {
    let topo = topologies::mci();
    let seeds = [SimRng::substream_seed(11, 0), SimRng::substream_seed(11, 1)];
    let baseline: Vec<ExperimentConfig> = comparison_systems()
        .into_iter()
        .map(|system| short(40.0, system, true).with_batch_jobs(1))
        .collect();
    let expected = run_grid(&topo, &baseline, &seeds, 1);
    for jobs in [2, 4, 7] {
        let parallel: Vec<ExperimentConfig> = comparison_systems()
            .into_iter()
            .map(|system| short(40.0, system, true).with_batch_jobs(jobs))
            .collect();
        let got = run_grid(&topo, &parallel, &seeds, 1);
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(
                a.runs, b.runs,
                "{}: batch_jobs={jobs} diverged from batch_jobs=1",
                a.label
            );
        }
    }
}

/// Jobs invariance holds under chaos: faults interleave with batches
/// (flushing them), and the precompute must neither consume fault RNG nor
/// observe a different ledger than the commit loop.
#[test]
fn parallel_batch_under_faults_is_jobs_invariant() {
    let topo = topologies::mci();
    let plan = FaultPlan::none()
        .with_link_model(300.0, 60.0)
        .with_teardown_loss(0.1)
        .with_teardown_delay(2.0);
    let seeds = [SimRng::substream_seed(13, 0)];
    let make = |jobs: usize| -> Vec<ExperimentConfig> {
        comparison_systems()
            .iter()
            .map(|s| {
                short(25.0, *s, true)
                    .with_faults(plan.clone())
                    .with_batch_jobs(jobs)
            })
            .collect()
    };
    let expected = run_grid(&topo, &make(1), &seeds, 2);
    let got = run_grid(&topo, &make(4), &seeds, 2);
    for (a, b) in expected.iter().zip(&got) {
        assert_eq!(a.runs, b.runs, "{}: chaos batch_jobs=4 diverged", a.label);
    }
}

/// Two-phase signalling in both regimes: express (zero per-hop delay,
/// batching active — the primed bandwidth cache feeds the express walk)
/// and delayed (event-driven exchanges disable batching, so batch_jobs
/// must be a harmless no-op).
#[test]
fn parallel_batch_two_phase_is_jobs_invariant() {
    let topo = topologies::mci();
    let seeds = [SimRng::substream_seed(17, 0)];
    let system = comparison_systems()[1]; // <WD/D+H,2>
    for per_hop in [0.0, 0.005] {
        let make = |jobs: usize| {
            vec![short(35.0, system, true)
                .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig {
                    per_hop_delay_secs: per_hop,
                    ..TwoPhaseConfig::default()
                }))
                .with_batch_jobs(jobs)]
        };
        let expected = run_grid(&topo, &make(1), &seeds, 1);
        let got = run_grid(&topo, &make(3), &seeds, 1);
        assert_eq!(
            expected[0].runs, got[0].runs,
            "two-phase per_hop={per_hop}: batch_jobs=3 diverged"
        );
    }
}

/// Multi-group workloads take the memo-less GDI path (`gdi_shared_links`)
/// and per-group DAC controllers; a heterogeneous demand mix exercises
/// distinct (source, demand) prime tasks. The full telemetry stream must
/// match, not just the metrics.
#[test]
fn parallel_batch_multi_group_streams_are_identical() {
    let topo = topologies::mci();
    let groups = vec![
        GroupSpec {
            members: vec![NodeId::new(0), NodeId::new(8), NodeId::new(16)],
            share: 2.0,
        },
        GroupSpec {
            members: vec![NodeId::new(4), NodeId::new(12)],
            share: 1.0,
        },
    ];
    let mix = vec![
        DemandClass {
            bandwidth: Bandwidth::from_kbps(64),
            weight: 3.0,
        },
        DemandClass {
            bandwidth: Bandwidth::from_kbps(256),
            weight: 1.0,
        },
    ];
    let seeds = [SimRng::substream_seed(19, 0)];
    for system in [SystemSpec::GlobalDynamic, comparison_systems()[1]] {
        let make = |jobs: usize| {
            vec![short(40.0, system, true)
                .with_groups(groups.clone())
                .with_demand_mix(mix.clone())
                .with_batch_jobs(jobs)]
        };
        let (expected_metrics, expected_cells) =
            run_grid_traced(&topo, &make(1), &seeds, 1, TelemetryMode::ring());
        let (got_metrics, got_cells) =
            run_grid_traced(&topo, &make(5), &seeds, 1, TelemetryMode::ring());
        assert_eq!(expected_metrics[0].runs, got_metrics[0].runs);
        for (a, b) in expected_cells.iter().zip(&got_cells) {
            assert!(!a.events.is_empty(), "traced cells must capture events");
            assert_eq!(
                a.events, b.events,
                "multi-group batch_jobs=5 telemetry diverged"
            );
        }
    }
}
