//! The tentpole guarantee of the parallel sweep engine: results are
//! **bit-for-bit identical** for every `--jobs` value — across all five
//! systems of the paper's comparison, under a non-trivial fault plan, and
//! for arbitrary `(λ, master seed)` pairs.

use anycast_bench::figures::comparison_systems;
use anycast_bench::{parallel_map, run_grid};
use anycast_chaos::FaultPlan;
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_net::topologies;
use anycast_sim::SimRng;
use proptest::prelude::*;

/// A fault plan that exercises every chaos channel the engine feeds into
/// the runs: link outages, lossy teardowns, and delayed teardowns.
fn chaotic_plan() -> FaultPlan {
    FaultPlan::none()
        .with_link_model(300.0, 60.0)
        .with_teardown_loss(0.1)
        .with_teardown_delay(2.0)
}

fn short(lambda: f64, system: SystemSpec) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(30.0)
        .with_measure_secs(90.0)
        .with_faults(chaotic_plan())
}

/// All five systems of Figures 6/7 (ED, WD/D+H, WD/D+B, SP, GDI) under
/// faults: `--jobs 2` and `--jobs 8` reproduce `--jobs 1` exactly.
#[test]
fn five_systems_with_faults_are_jobs_invariant() {
    let topo = topologies::mci();
    let configs: Vec<ExperimentConfig> = comparison_systems()
        .into_iter()
        .map(|system| short(25.0, system))
        .collect();
    assert_eq!(configs.len(), 5, "ED, WD/D+H, WD/D+B, SP, GDI");
    let seeds = [SimRng::substream_seed(9, 0), SimRng::substream_seed(9, 1)];
    let serial = run_grid(&topo, &configs, &seeds, 1);
    for jobs in [2, 8] {
        let parallel = run_grid(&topo, &configs, &seeds, jobs);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.runs, b.runs, "{}: jobs={jobs} diverged", a.label);
        }
    }
}

/// Randomly sampled `(λ, master seed)` cases of the same invariance — a
/// hand-rolled property loop because sweeps are too expensive for the
/// default proptest case count; the draws are substream-seeded so the
/// sampled cases are fixed across runs.
#[test]
fn sampled_sweeps_are_jobs_invariant() {
    let topo = topologies::mci();
    let mut sampler = SimRng::seed_from(0xB2E7);
    for _case in 0..4 {
        let lambda = 5.0 + sampler.uniform() * 45.0;
        let master = sampler.next_u64();
        let configs: Vec<ExperimentConfig> = comparison_systems()
            .into_iter()
            .map(|system| short(lambda, system))
            .collect();
        let seeds = [
            SimRng::substream_seed(master, 0),
            SimRng::substream_seed(master, 1),
        ];
        let serial = run_grid(&topo, &configs, &seeds, 1);
        for jobs in [2, 8] {
            let parallel = run_grid(&topo, &configs, &seeds, jobs);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(
                    a.runs, b.runs,
                    "{}: lambda={lambda} master={master} jobs={jobs} diverged",
                    a.label
                );
            }
        }
    }
}

proptest! {
    /// The pool primitive itself preserves input order for any job count
    /// and any input length.
    #[test]
    fn pool_output_is_scheduling_independent(
        items in prop::collection::vec(any::<u32>(), 0..50),
        jobs in 1usize..12,
    ) {
        let serial: Vec<u64> = items.iter().enumerate()
            .map(|(i, &x)| (i as u64) << 32 | u64::from(x))
            .collect();
        let pooled = parallel_map(jobs, &items, |i, &x| (i as u64) << 32 | u64::from(x));
        prop_assert_eq!(pooled, serial);
    }
}
