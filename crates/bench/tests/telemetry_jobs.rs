//! Determinism of traced sweeps under parallelism: the event streams and
//! metrics a `run_grid_traced` sweep returns are bit-identical for every
//! `--jobs` value, and identical to the untraced `run_grid` metrics.

use anycast_bench::{run_grid, run_grid_traced, TracedCell};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;
use anycast_telemetry::TelemetryMode;

fn configs() -> Vec<ExperimentConfig> {
    [20.0, 45.0]
        .into_iter()
        .map(|lambda| {
            ExperimentConfig::paper_defaults(lambda, SystemSpec::dac(PolicySpec::Ed, 2))
                .with_warmup_secs(20.0)
                .with_measure_secs(80.0)
        })
        .collect()
}

fn assert_cells_identical(a: &[TracedCell], b: &[TracedCell]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.config_index, y.config_index);
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.metrics, y.metrics);
        assert_eq!(x.events, y.events, "event streams diverged under --jobs");
    }
}

#[test]
fn traced_sweep_is_bit_identical_for_every_job_count() {
    let topo = topologies::mci();
    let configs = configs();
    let seeds = [11, 22];
    let mode = TelemetryMode::Ring {
        sample_interval_secs: Some(30.0),
        capacity: 1 << 18,
    };
    let (serial_sum, serial_cells) = run_grid_traced(&topo, &configs, &seeds, 1, mode);
    for jobs in [2, 4] {
        let (par_sum, par_cells) = run_grid_traced(&topo, &configs, &seeds, jobs, mode);
        assert_cells_identical(&serial_cells, &par_cells);
        for (a, b) in serial_sum.iter().zip(&par_sum) {
            assert_eq!(a.runs, b.runs, "jobs={jobs}");
        }
    }
    assert!(
        serial_cells.iter().all(|c| !c.events.is_empty()),
        "every traced cell captures events"
    );
    // Cells come back in input order: config-major, then seed.
    let keys: Vec<(usize, u64)> = serial_cells
        .iter()
        .map(|c| (c.config_index, c.seed))
        .collect();
    assert_eq!(keys, vec![(0, 11), (0, 22), (1, 11), (1, 22)]);
}

#[test]
fn traced_metrics_match_untraced_grid() {
    let topo = topologies::mci();
    let configs = configs();
    let seeds = [11, 22];
    let plain = run_grid(&topo, &configs, &seeds, 2);
    for mode in [
        TelemetryMode::Off,
        TelemetryMode::Null,
        TelemetryMode::ring(),
    ] {
        let (traced, _) = run_grid_traced(&topo, &configs, &seeds, 2, mode);
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.runs, b.runs, "mode {mode:?} changed sweep results");
        }
    }
}
