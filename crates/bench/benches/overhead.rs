//! Criterion micro-benchmarks for the paper's runtime-overhead claims.
//!
//! §4.1 argues the DAC procedure must be cheap and scalable: destination
//! selection is O(K) arithmetic at the AC-router, a reservation walk is
//! O(hops) ledger updates, and the analytical fixed point (used offline
//! for capacity planning) solves the whole MCI backbone in microseconds to
//! milliseconds. These benchmarks put numbers on each step, plus the
//! end-to-end cost per admitted flow for every system (including the GDI
//! oracle, whose per-request graph search is the price of its "perfect
//! information").

use anycast_analysis::scenario::{build_paper_scenario, AnalyzedSystem};
use anycast_analysis::{erlang_b, predict_ap, uaa_blocking, BlockingModel};
use anycast_dac::baselines::{GlobalDynamicSystem, ShortestPathSystem};
use anycast_dac::experiment::{run_experiment, ExperimentConfig, SystemSpec};
use anycast_dac::policy::{PolicySpec, SelectionContext};
use anycast_dac::{AdmissionController, RetrialPolicy};
use anycast_net::routing::RouteTable;
use anycast_net::{topologies, AnycastGroup, Bandwidth, LinkStateTable, NodeId};
use anycast_rsvp::ReservationEngine;
use anycast_sim::SimRng;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_weight_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight_assignment");
    let distances = [1u32, 2, 3, 2, 4];
    let history = [0u32, 3, 1, 0, 2];
    let bandwidth = [1e7, 5e6, 0.0, 2e7, 8e6];
    let ctx = SelectionContext {
        distances: &distances,
        history: &history,
        route_bandwidth_bps: &bandwidth,
    };
    for spec in [
        PolicySpec::Ed,
        PolicySpec::wd_dh_default(),
        PolicySpec::WdDb,
    ] {
        let mut policy = spec.build().unwrap();
        group.bench_function(spec.name(), |b| {
            b.iter(|| black_box(policy.assign(black_box(&ctx))))
        });
    }
    group.finish();
}

fn bench_reservation_walk(c: &mut Criterion) {
    let topo = topologies::mci();
    let group = AnycastGroup::new("A", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
    let routes = RouteTable::shortest_paths(&topo, &group);
    let route = routes.route(NodeId::new(15), NodeId::new(4)).unwrap();
    let mut links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
    let mut rsvp = ReservationEngine::new();
    c.bench_function("rsvp_reserve_teardown", |b| {
        b.iter(|| {
            let out = rsvp
                .probe_and_reserve(&mut links, route, Bandwidth::from_kbps(64))
                .unwrap();
            rsvp.teardown(&mut links, out.session).unwrap();
        })
    });
}

fn bench_admission_per_system(c: &mut Criterion) {
    let topo = topologies::mci();
    let agroup = AnycastGroup::new("A", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
    let routes = RouteTable::shortest_paths(&topo, &agroup);
    let source = NodeId::new(7);
    let demand = Bandwidth::from_kbps(64);
    let mut group = c.benchmark_group("admit_and_release");

    for spec in [
        PolicySpec::Ed,
        PolicySpec::wd_dh_default(),
        PolicySpec::WdDb,
    ] {
        group.bench_function(format!("dac_{}", spec.name()), |b| {
            let mut links =
                LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
            let mut rsvp = ReservationEngine::new();
            let mut rng = SimRng::seed_from(1);
            let mut controller = AdmissionController::new(
                spec.build().unwrap(),
                RetrialPolicy::FixedLimit(2),
                routes.distances(source).unwrap(),
            );
            b.iter(|| {
                let out = controller.admit(
                    routes.routes_from(source).unwrap(),
                    &mut links,
                    &mut rsvp,
                    demand,
                    &mut rng,
                );
                if let Some(f) = out.admitted {
                    rsvp.teardown(&mut links, f.session).unwrap();
                }
            })
        });
    }

    group.bench_function("sp", |b| {
        let mut links =
            LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
        let mut rsvp = ReservationEngine::new();
        let sp = ShortestPathSystem::new(routes.nearest_member(source).unwrap());
        b.iter(|| {
            let out = sp.admit(
                routes.routes_from(source).unwrap(),
                &mut links,
                &mut rsvp,
                demand,
            );
            if let Some(f) = out.admitted {
                rsvp.teardown(&mut links, f.session).unwrap();
            }
        })
    });

    group.bench_function("gdi", |b| {
        let mut links =
            LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
        let mut rsvp = ReservationEngine::new();
        let mut gdi = GlobalDynamicSystem::new();
        b.iter(|| {
            let out = gdi.admit(&topo, &agroup, source, &mut links, &mut rsvp, demand);
            if let Some(f) = out.admitted {
                rsvp.teardown(&mut links, f.session).unwrap();
            }
        })
    });
    group.finish();
}

fn bench_blocking_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_blocking");
    group.bench_function("erlang_b_312", |b| {
        b.iter(|| black_box(erlang_b(black_box(280.0), black_box(312))))
    });
    group.bench_function("uaa_312", |b| {
        b.iter(|| black_box(uaa_blocking(black_box(280.0), black_box(312))))
    });
    group.finish();
}

fn bench_fixed_point(c: &mut Criterion) {
    let topo = topologies::mci();
    let mut group = c.benchmark_group("fixed_point_mci");
    for lambda in [20.0, 50.0] {
        let scenario = build_paper_scenario(&topo, lambda, AnalyzedSystem::Ed1);
        group.bench_function(format!("erlang_lambda{lambda}"), |b| {
            b.iter(|| black_box(predict_ap(black_box(&scenario), BlockingModel::ErlangB)))
        });
        group.bench_function(format!("uaa_lambda{lambda}"), |b| {
            b.iter(|| black_box(predict_ap(black_box(&scenario), BlockingModel::Uaa)))
        });
    }
    group.finish();
}

fn bench_short_simulation(c: &mut Criterion) {
    let topo = topologies::mci();
    c.bench_function("closed_loop_sim_60s_lambda20", |b| {
        b.iter_batched(
            || {
                ExperimentConfig::paper_defaults(20.0, SystemSpec::dac(PolicySpec::Ed, 2))
                    .with_warmup_secs(10.0)
                    .with_measure_secs(50.0)
            },
            |cfg| black_box(run_experiment(&topo, &cfg)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_weight_assignment,
    bench_reservation_walk,
    bench_admission_per_system,
    bench_blocking_functions,
    bench_fixed_point,
    bench_short_simulation
);
criterion_main!(benches);
