//! JSON emission for machine-readable figure output.
//!
//! The implementation moved to [`anycast_telemetry::json`] so the
//! telemetry exporters and the figure binaries share one emitter; this
//! module re-exports it under the historical `anycast_bench::json` path.

pub use anycast_telemetry::json::{emit_results, parse, write_results, JsonValue};
