//! Minimal JSON emission for machine-readable figure output.
//!
//! The vendored `serde` is an API stub without real serialization, so the
//! experiment binaries build their JSON explicitly through [`JsonValue`]
//! — which also keeps the emitted schema an intentional, reviewed
//! artifact rather than a mirror of internal struct layout.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via Rust's shortest-round-trip formatting).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: an array of numbers.
    pub fn nums<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        JsonValue::Arr(values.into_iter().map(JsonValue::Num).collect())
    }

    /// Convenience: an array of strings.
    pub fn strs<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        JsonValue::Arr(
            values
                .into_iter()
                .map(|s| JsonValue::Str(s.into()))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Keep integers integral so downstream tools reading
                    // e.g. seeds or counts never see a float artifact.
                    if x.fract() == 0.0 && x.abs() < 9_007_199_254_740_992.0 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `value` to `results/<name>.json` (relative to the working
/// directory, creating `results/` if needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_results(name: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(path)
}

/// Emits to `results/` and notes where on stderr — stderr so that
/// redirecting a binary's stdout into `results/<name>.txt` captures the
/// tables alone — warning instead of failing when the directory is not
/// writable (figure output must still appear).
pub fn emit_results(name: &str, value: &JsonValue) {
    match write_results(name, value) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write results/{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Num(2.5).render(), "2.5");
        assert_eq!(JsonValue::Num(42.0).render(), "42");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("fig6".into())),
            ("lambdas", JsonValue::nums([5.0, 10.0])),
            (
                "series",
                JsonValue::Arr(vec![JsonValue::obj([
                    ("label", JsonValue::Str("<ED,2>".into())),
                    ("ap", JsonValue::nums([0.99, 0.95])),
                ])]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig6","lambdas":[5,10],"series":[{"label":"<ED,2>","ap":[0.99,0.95]}]}"#
        );
    }

    #[test]
    fn write_results_round_trips() {
        let v = JsonValue::nums([1.0, 2.0]);
        let path = write_results("json_unit_test", &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text, "[1,2]\n");
    }
}
