//! PR 10 performance snapshot: the on-demand route oracle vs the eagerly
//! materialised route table on datacenter-scale fat-tree fabrics —
//! written to `BENCH_pr10.json`.
//!
//! The precomputed [`RouteTable`] runs one BFS per topology node at
//! construction and keeps `nodes × members` paths resident, even though
//! an experiment only ever looks up its configured sources. The
//! [`RouteOracle`] computes per-source route sets on first use and holds
//! them in a bounded, epoch-stamped cache, so residency tracks the
//! working set (the sources) instead of the topology. On the paper's
//! 19-node MCI backbone the difference is noise; on a ~10k-node fat-tree
//! the table pays tens of millions of BFS edge relaxations for routes
//! nobody asks for.
//!
//! Every workload runs in both modes and asserts the **divergence
//! gate**: oracle metrics must be bit-identical to the table's (routes
//! are pure functions of the immutable topology, so there is nothing the
//! cache may legitimately change). The report records wall time,
//! requests/s, the oracle's peak resident entries and hit rate, and the
//! honest residency comparison: `nodes × members` table paths vs
//! `peak_entries × members` oracle paths.
//!
//! [`RouteTable`]: anycast_net::RouteTable
//! [`RouteOracle`]: anycast_net::RouteOracle

use anycast_bench::default_jobs;
use anycast_bench::json::JsonValue;
use anycast_bench::stats::percentile;
use anycast_dac::experiment::{
    run_experiment_with_route_stats, ExperimentConfig, Metrics, SystemSpec,
};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Bandwidth, NodeId, RouteCacheStats, RouteMode, Topology};
use std::time::Instant;

/// One fat-tree scenario: fabric size, placement density and run length.
struct Profile {
    name: &'static str,
    /// Fat-tree parameter (k pods; `(k/2)² + k² + k·(k/2)²` nodes).
    k: usize,
    /// Anycast group size (hosts, spread across pods).
    members: usize,
    /// Number of source hosts driving load.
    sources: usize,
    lambda: f64,
    warmup_secs: f64,
    measure_secs: f64,
    iters: usize,
    seed: u64,
}

impl Profile {
    /// CI gate: a 36-node fat-tree, seconds end to end.
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            k: 4,
            members: 4,
            sources: 8,
            lambda: 20.0,
            warmup_secs: 30.0,
            measure_secs: 90.0,
            iters: 1,
            seed: 1010,
        }
    }

    /// A 1.3k-node fabric: the table's eager BFS is already visible.
    fn quick() -> Self {
        Profile {
            name: "quick",
            k: 16,
            members: 8,
            sources: 48,
            lambda: 40.0,
            warmup_secs: 120.0,
            measure_secs: 480.0,
            iters: 3,
            seed: 1010,
        }
    }

    /// The acceptance scenario: an 11 271-node fat-tree (k = 34).
    fn full() -> Self {
        Profile {
            name: "full",
            k: 34,
            members: 8,
            sources: 64,
            lambda: 40.0,
            warmup_secs: 300.0,
            measure_secs: 900.0,
            iters: 3,
            seed: 1010,
        }
    }
}

/// Picks `count` evenly spaced entries of `pool` (deterministic, no RNG).
fn spread(pool: &[NodeId], count: usize) -> Vec<NodeId> {
    assert!(count <= pool.len(), "fabric too small for the placement");
    (0..count).map(|i| pool[i * pool.len() / count]).collect()
}

/// Times `iters` repetitions of one config (the topology build and any
/// route precomputation happen inside, so the table's eager BFS is paid
/// inside the measured window, exactly as a user pays it). Returns the
/// first run's metrics and cache stats plus the median wall seconds.
fn time_runs(
    topo: &Topology,
    config: &ExperimentConfig,
    iters: usize,
) -> (Metrics, Option<RouteCacheStats>, f64) {
    let mut samples_us: Vec<u64> = Vec::with_capacity(iters);
    let mut first: Option<(Metrics, Option<RouteCacheStats>)> = None;
    for _ in 0..iters {
        let start = Instant::now();
        let (m, stats) = run_experiment_with_route_stats(topo, config);
        samples_us.push(start.elapsed().as_micros() as u64);
        match &first {
            None => first = Some((m, stats)),
            Some((m0, _)) => {
                assert_eq!(*m0, m, "repeated runs of one config must be bit-identical")
            }
        }
    }
    samples_us.sort_unstable();
    let median_secs = percentile(&samples_us, 0.5) as f64 / 1e6;
    let (metrics, stats) = first.expect("at least one iteration");
    (metrics, stats, median_secs)
}

fn main() {
    let mut profile = Profile::quick();
    let mut out = String::from("BENCH_pr10.json");
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr10: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr10: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr10: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr10 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  runs admission on a fat-tree in table and oracle route modes,");
                println!("  asserts the metrics are bit-identical, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr10: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let cap = Bandwidth::from_mbps(100);
    let nodes = topologies::fat_tree_node_count(profile.k);
    println!(
        "bench_pr10: profile={} fat_tree(k={}) nodes={nodes} members={} sources={} jobs={jobs}",
        profile.name, profile.k, profile.members, profile.sources
    );
    let topo = topologies::fat_tree(profile.k, cap);
    assert_eq!(topo.node_count(), nodes);
    let hosts = topologies::fat_tree_hosts(profile.k);
    let members = spread(&hosts, profile.members);
    let source_pool: Vec<NodeId> = hosts
        .iter()
        .copied()
        .filter(|h| !members.contains(h))
        .collect();
    let sources = spread(&source_pool, profile.sources);

    let systems: [(&str, SystemSpec); 2] = [
        ("wddh", SystemSpec::dac(PolicySpec::wd_dh_default(), 2)),
        ("ed", SystemSpec::dac(PolicySpec::Ed, 2)),
    ];
    let mut entries = Vec::new();
    for (system_name, system) in systems {
        let base = ExperimentConfig::paper_defaults(profile.lambda, system)
            .with_group(members.clone())
            .with_sources(sources.clone())
            .with_warmup_secs(profile.warmup_secs)
            .with_measure_secs(profile.measure_secs)
            .with_seed(profile.seed);
        let table_config = base.clone(); // RouteMode::Precomputed is the default.
        let oracle_config = base.clone().with_routing(RouteMode::on_demand());
        let (table_metrics, table_stats, table_secs) =
            time_runs(&topo, &table_config, profile.iters);
        assert!(table_stats.is_none(), "the table has no cache to report");
        let (oracle_metrics, oracle_stats, oracle_secs) =
            time_runs(&topo, &oracle_config, profile.iters);
        // The divergence gate: the route mode is an execution knob only.
        assert_eq!(
            table_metrics, oracle_metrics,
            "{system_name}: oracle diverged from the precomputed table"
        );
        let stats = oracle_stats.expect("oracle runs surface cache stats");
        assert!(
            stats.peak_entries <= profile.sources,
            "residency must track the working set: {} sources, {} resident",
            profile.sources,
            stats.peak_entries
        );
        let offered = table_metrics.offered;
        let table_resident_paths = nodes * profile.members;
        let oracle_resident_paths = stats.peak_entries * profile.members;
        println!(
            "  {:<5} offered={:<7} AP={:.4} table={:.3}s oracle={:.3}s \
             cache: peak={} hit_rate={:.4} resident_paths {}→{}",
            system_name,
            offered,
            table_metrics.admission_probability,
            table_secs,
            oracle_secs,
            stats.peak_entries,
            stats.hit_rate(),
            table_resident_paths,
            oracle_resident_paths
        );
        entries.push(JsonValue::obj([
            ("name", JsonValue::Str(system_name.into())),
            ("lambda", JsonValue::Num(profile.lambda)),
            ("offered_requests", JsonValue::Num(offered as f64)),
            (
                "mean_ap",
                JsonValue::Num(table_metrics.admission_probability),
            ),
            ("table_secs", JsonValue::Num(table_secs)),
            ("oracle_secs", JsonValue::Num(oracle_secs)),
            (
                "table_requests_per_sec",
                JsonValue::Num(offered as f64 / table_secs),
            ),
            (
                "oracle_requests_per_sec",
                JsonValue::Num(offered as f64 / oracle_secs),
            ),
            ("cache_hits", JsonValue::Num(stats.hits as f64)),
            ("cache_misses", JsonValue::Num(stats.misses as f64)),
            ("cache_hit_rate", JsonValue::Num(stats.hit_rate())),
            (
                "cache_peak_entries",
                JsonValue::Num(stats.peak_entries as f64),
            ),
            (
                "cache_invalidations",
                JsonValue::Num(stats.invalidations as f64),
            ),
            (
                "table_resident_paths",
                JsonValue::Num(table_resident_paths as f64),
            ),
            (
                "oracle_resident_paths",
                JsonValue::Num(oracle_resident_paths as f64),
            ),
        ]));
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr10_route_oracle".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        (
            "topology",
            JsonValue::Str(format!("fat_tree:{}", profile.k)),
        ),
        ("nodes", JsonValue::Num(nodes as f64)),
        ("members", JsonValue::Num(profile.members as f64)),
        ("sources", JsonValue::Num(profile.sources as f64)),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr10: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
