//! Regenerates Table 2: analysis vs simulation for `SP`.
use anycast_analysis::scenario::AnalyzedSystem;
use anycast_bench::figures::analysis_table;
use anycast_bench::parse_args;

fn main() {
    let settings = parse_args("table2_sp_analysis_vs_sim");
    analysis_table(
        "Table 2: analysis vs simulation, system SP",
        AnalyzedSystem::Sp,
        &settings,
    );
}
