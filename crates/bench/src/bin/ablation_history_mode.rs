//! Ablation: the two readings of the WD/D+H weight update (DESIGN.md §2) —
//! recompute from base distance weights each selection vs iteratively
//! mutate a persistent weight vector.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::{HistoryMode, PolicySpec};
use anycast_net::topologies;

const LAMBDAS: [f64; 4] = [20.0, 30.0, 40.0, 50.0];

fn main() {
    let settings = parse_args("ablation_history_mode");
    let topo = topologies::mci();
    let modes = [
        ("FromBase", HistoryMode::FromBase),
        ("Iterative", HistoryMode::Iterative),
    ];
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        for (_, mode) in modes {
            let policy = PolicySpec::WdDh { alpha: 0.5, mode };
            configs.push(
                ExperimentConfig::paper_defaults(lambda, SystemSpec::dac(policy, 2))
                    .with_warmup_secs(settings.warmup_secs)
                    .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: WD/D+H weight-update interpretation (alpha = 0.5, R = 2)");
    println!();
    let mut table = Table::new(vec![
        "lambda".into(),
        "FromBase AP".into(),
        "Iterative AP".into(),
        "FromBase tries".into(),
        "Iterative tries".into(),
    ]);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        table.row(vec![
            format!("{lambda:.1}"),
            format!("{:.4}", results[i * 2].admission_probability),
            format!("{:.4}", results[i * 2 + 1].admission_probability),
            format!("{:.4}", results[i * 2].mean_tries),
            format!("{:.4}", results[i * 2 + 1].mean_tries),
        ]);
    }
    print!("{}", table.render());
}
