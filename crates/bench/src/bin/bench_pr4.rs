//! PR 4 performance snapshot: the cost of latency-aware two-phase
//! signalling, written to `BENCH_pr4.json`.
//!
//! Four workloads over the same λ grid:
//!
//! * **atomic** — the baseline instantaneous-reservation engine.
//! * **two_phase_degenerate** — two-phase mode with zero per-hop delay
//!   and no signalling faults. Asserted **bit-identical** to atomic, so
//!   its timing measures the express-path dispatch overhead alone.
//! * **two_phase_delayed** — 20 ms per hop: every setup is a real
//!   PATH/RESV exchange through the event queue with pending holds, so
//!   this row prices the event-driven engine and shows how stale state
//!   moves admission.
//! * **two_phase_lossy** — delayed plus 2% per-crossing message loss:
//!   timeouts, hold expiry and bounded-backoff retransmission all fire.
//!
//! Every workload runs serial and parallel and asserts the two are
//! bit-identical. `--smoke` shrinks the grid for CI; `--quick`/`--full`
//! follow the usual run-length profiles. The JSON schema extends
//! `BENCH_pr2.json`'s with per-workload `mean_ap` and
//! `mean_setup_latency_secs`.

use anycast_bench::json::JsonValue;
use anycast_bench::{default_jobs, run_grid, ReplicatedMetrics};
use anycast_chaos::{FaultPlan, MessageFault, SignalingFaults};
use anycast_dac::experiment::{ExperimentConfig, SignalingMode, SystemSpec, TwoPhaseConfig};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Topology};
use std::time::Instant;

/// Per-hop signalling latency for the delayed/lossy workloads, seconds.
const PER_HOP_DELAY_SECS: f64 = 0.02;
/// Source-side setup timer for the delayed/lossy workloads, seconds.
const SETUP_TIMEOUT_SECS: f64 = 1.0;
/// Per-crossing loss probability for the lossy workload.
const LOSS_PROBABILITY: f64 = 0.02;

/// Run lengths and grid sizes for one profile.
struct Profile {
    name: &'static str,
    warmup_secs: f64,
    measure_secs: f64,
    seeds: Vec<u64>,
    lambdas: Vec<f64>,
}

impl Profile {
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_secs: 30.0,
            measure_secs: 90.0,
            seeds: vec![101, 202],
            lambdas: vec![10.0, 30.0, 50.0],
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            warmup_secs: 300.0,
            measure_secs: 600.0,
            seeds: vec![101],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
        }
    }

    fn full() -> Self {
        Profile {
            name: "full",
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            seeds: vec![101, 202, 303],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
        }
    }

    fn grid(&self, signaling: SignalingMode, faults: Option<FaultPlan>) -> Vec<ExperimentConfig> {
        self.lambdas
            .iter()
            .map(|&lambda| {
                let mut config = ExperimentConfig::paper_defaults(
                    lambda,
                    SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
                )
                .with_warmup_secs(self.warmup_secs)
                .with_measure_secs(self.measure_secs)
                .with_signaling(signaling);
                if let Some(plan) = faults.clone() {
                    config = config.with_faults(plan);
                }
                config
            })
            .collect()
    }
}

fn offered_requests(results: &[ReplicatedMetrics]) -> u64 {
    results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.offered)
        .sum()
}

fn mean_ap(results: &[ReplicatedMetrics]) -> f64 {
    let runs: Vec<f64> = results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.admission_probability)
        .collect();
    runs.iter().sum::<f64>() / runs.len() as f64
}

fn mean_setup_latency(results: &[ReplicatedMetrics]) -> f64 {
    let runs: Vec<f64> = results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.mean_setup_latency_secs)
        .collect();
    runs.iter().sum::<f64>() / runs.len() as f64
}

fn timed_grid(
    topo: &Topology,
    configs: &[ExperimentConfig],
    seeds: &[u64],
    jobs: usize,
) -> (Vec<ReplicatedMetrics>, f64) {
    let start = Instant::now();
    let results = run_grid(topo, configs, seeds, jobs);
    (results, start.elapsed().as_secs_f64())
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr4: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr4: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr4: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr4 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  times atomic vs degenerate/delayed/lossy two-phase signalling,");
                println!("  asserts degenerate == atomic bit-for-bit, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr4: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr4: profile={} jobs={jobs} available_parallelism={cores}",
        profile.name
    );
    let delayed = TwoPhaseConfig {
        per_hop_delay_secs: PER_HOP_DELAY_SECS,
        setup_timeout_secs: SETUP_TIMEOUT_SECS,
        ..TwoPhaseConfig::default()
    };
    let lossy_faults = FaultPlan::none().with_signaling(SignalingFaults {
        path: MessageFault {
            loss_probability: LOSS_PROBABILITY,
            extra_delay_secs: 0.0,
        },
        resv: MessageFault {
            loss_probability: LOSS_PROBABILITY,
            extra_delay_secs: 0.0,
        },
        resv_err: MessageFault {
            loss_probability: LOSS_PROBABILITY,
            extra_delay_secs: 0.0,
        },
    });
    let workloads = [
        ("atomic", profile.grid(SignalingMode::Atomic, None)),
        (
            "two_phase_degenerate",
            profile.grid(SignalingMode::TwoPhase(TwoPhaseConfig::default()), None),
        ),
        (
            "two_phase_delayed",
            profile.grid(SignalingMode::TwoPhase(delayed), None),
        ),
        (
            "two_phase_lossy",
            profile.grid(SignalingMode::TwoPhase(delayed), Some(lossy_faults)),
        ),
    ];
    let mut entries = Vec::new();
    let mut atomic_runs: Option<Vec<ReplicatedMetrics>> = None;
    for (name, configs) in workloads {
        let (serial, serial_secs) = timed_grid(&topo, &configs, &profile.seeds, 1);
        let (parallel, parallel_secs) = timed_grid(&topo, &configs, &profile.seeds, jobs);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.runs, b.runs, "{name}: parallel run diverged from serial");
        }
        match (name, &atomic_runs) {
            ("atomic", _) => atomic_runs = Some(serial.clone()),
            ("two_phase_degenerate", Some(base)) => {
                for (a, b) in base.iter().zip(&serial) {
                    assert_eq!(
                        a.runs, b.runs,
                        "degenerate two-phase diverged from the atomic engine"
                    );
                }
            }
            _ => {}
        }
        let offered = offered_requests(&serial);
        let ap = mean_ap(&serial);
        let latency = mean_setup_latency(&serial);
        let speedup = serial_secs / parallel_secs;
        println!(
            "  {:<22} cells={:<3} reqs={:<8} AP={:.4} setup={:.3}s serial={:.2}s parallel={:.2}s speedup={:.2}x",
            name,
            configs.len(),
            offered,
            ap,
            latency,
            serial_secs,
            parallel_secs,
            speedup
        );
        entries.push(JsonValue::obj([
            ("name", JsonValue::Str(name.into())),
            ("grid_cells", JsonValue::Num(configs.len() as f64)),
            ("replications", JsonValue::Num(profile.seeds.len() as f64)),
            ("offered_requests", JsonValue::Num(offered as f64)),
            ("mean_ap", JsonValue::Num(ap)),
            ("mean_setup_latency_secs", JsonValue::Num(latency)),
            ("serial_secs", JsonValue::Num(serial_secs)),
            ("parallel_secs", JsonValue::Num(parallel_secs)),
            ("speedup", JsonValue::Num(speedup)),
            (
                "serial_requests_per_sec",
                JsonValue::Num(offered as f64 / serial_secs),
            ),
            (
                "parallel_requests_per_sec",
                JsonValue::Num(offered as f64 / parallel_secs),
            ),
        ]));
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr4_two_phase".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("available_parallelism", JsonValue::Num(cores as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr4: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
