//! PR 9 daemon overload benchmark: sustained request rate and decision
//! latency against a live `anycast-daemon` service loop at 1×, 2× and 4×
//! its engine capacity, with and without the hysteresis shed controller,
//! written to `BENCH_pr9.json`.
//!
//! Capacity is made synthetic and explicit: every dispatched admit burns
//! a fixed `admit_spin` of engine-thread wall clock (standing in for a
//! heavier admission policy), so the engine sustains ≈ 1/spin requests
//! per second and the load factors mean something reproducible. An
//! open-loop client swarm then offers `factor × capacity` for a fixed
//! window over real TCP, and the harness reports, per cell:
//!
//! * offered and decided request rates;
//! * decision latency p50/p99 (the daemon's own `latency_us`, measured
//!   from queue admission to verdict delivery — queueing delay included);
//! * how many admits were refused `overloaded` (shed controller or hard
//!   queue bound) and how many the shutdown drain rejected.
//!
//! The gate: at every load factor with shedding enabled, latency p99
//! must stay under the structural bound `queue_limit × spin` with slack
//! — overload must surface as explicit refusals, not unbounded queueing
//! delay — and the service-layer accounting identity must balance in
//! every cell.

use anycast_bench::json::JsonValue;
use anycast_bench::stats::percentile;
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_daemon::{
    BoundServer, Endpoint, OverloadOptions, ServeOptions, ServeReport, ShutdownFlag,
};
use anycast_net::topologies;
use anycast_telemetry::json::parse;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Sizing for one profile.
struct Profile {
    name: &'static str,
    /// Synthetic per-admit engine cost; capacity ≈ 1/spin req/s.
    admit_spin: Duration,
    /// Offered-load window per cell, wall seconds.
    window_secs: f64,
    /// Client connections spreading the offered load.
    connections: usize,
    /// Admission queue bound (shed watermarks scale from it).
    queue_limit: usize,
}

impl Profile {
    /// CI gate: 1 ms spin (≈1000 req/s capacity), 2 s windows.
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            admit_spin: Duration::from_micros(1_000),
            window_secs: 2.0,
            connections: 4,
            queue_limit: 256,
        }
    }

    /// 0.5 ms spin (≈2000 req/s capacity), 6 s windows.
    fn quick() -> Self {
        Profile {
            name: "quick",
            admit_spin: Duration::from_micros(500),
            window_secs: 6.0,
            connections: 8,
            queue_limit: 512,
        }
    }

    /// The checked-in artifact: 12 s windows at quick's capacity.
    fn full() -> Self {
        Profile {
            name: "full",
            window_secs: 12.0,
            ..Profile::quick()
        }
    }
}

/// What one (factor, shedding) cell measured.
struct Cell {
    factor: f64,
    offered: u64,
    latencies_us: Vec<u64>,
    elapsed_secs: f64,
    report: ServeReport,
}

/// Runs one cell: a fresh daemon, an open-loop swarm at
/// `factor × capacity` for `window_secs`, a graceful shutdown.
fn run_cell(profile: &Profile, factor: f64, shedding: bool) -> Cell {
    let topo = topologies::mci();
    // Rolling mode: the bench window is wall time, not a scenario
    // horizon. High speed keeps holding times short so session state
    // churns instead of accumulating.
    let config =
        ExperimentConfig::paper_defaults(1.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2))
            .with_warmup_secs(0.0)
            .with_measure_secs(3_600.0)
            .with_seed(17);
    let options = ServeOptions {
        speed: 200.0,
        tick: Duration::from_millis(1),
        window_secs: Some(300.0),
        overload: OverloadOptions {
            admit_spin: profile.admit_spin,
            shed: shedding,
            ..OverloadOptions::default().with_queue_limit(profile.queue_limit)
        },
        ..ServeOptions::default()
    };
    let shutdown = ShutdownFlag::new();
    let server = BoundServer::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    let capacity = 1.0 / profile.admit_spin.as_secs_f64();
    let rate_per_conn = factor * capacity / profile.connections as f64;
    // Pace in batches: sleeps of a few ms are dependable, sub-ms ones
    // are not.
    let batch = (rate_per_conn / 100.0).ceil().max(1.0) as usize;
    let batch_interval = Duration::from_secs_f64(batch as f64 / rate_per_conn);
    let window = Duration::from_secs_f64(profile.window_secs);

    let (report, offered, latencies, elapsed) = std::thread::scope(|s| {
        let serve = s.spawn(|| server.run(&topo, &config, &options, shutdown).unwrap());

        let started = Instant::now();
        let mut senders = Vec::new();
        for c in 0..profile.connections {
            let addr = addr.clone();
            senders.push(s.spawn(move || {
                let stream = TcpStream::connect(&addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let reader = BufReader::new(stream);

                // Collect the daemon-reported decision latency of every
                // verdict that comes back on this connection.
                let collector = std::thread::spawn(move || {
                    let mut latencies = Vec::new();
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        let Ok(v) = parse(line.trim()) else { continue };
                        if let JsonValue::Obj(pairs) = &v {
                            let op = pairs.iter().find(|(k, _)| k == "op");
                            if !matches!(op, Some((_, JsonValue::Str(s))) if s == "decision") {
                                continue;
                            }
                            if let Some((_, JsonValue::Num(us))) =
                                pairs.iter().find(|(k, _)| k == "latency_us")
                            {
                                latencies.push(*us as u64);
                            }
                        }
                    }
                    latencies
                });

                let source = 1 + (c % 8);
                let line = format!(
                    "{{\"op\":\"admit\",\"source\":{source},\"group\":0,\
                     \"demand_bps\":64000,\"holding_secs\":10}}\n"
                );
                let mut sent: u64 = 0;
                while started.elapsed() < window {
                    for _ in 0..batch {
                        if writer.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        sent += 1;
                    }
                    let _ = writer.flush();
                    std::thread::sleep(batch_interval);
                }
                // Keep the socket open: the tail of the queue decides
                // after the send window ends, and those (slowest)
                // verdicts must reach the collector or p99 would be
                // under-measured. The collector drains until the daemon
                // closes the connection at shutdown.
                (sent, collector, writer)
            }));
        }

        let mut offered = 0u64;
        let mut collectors = Vec::new();
        let mut held_open = Vec::new();
        for h in senders {
            let (sent, collector, writer) = h.join().unwrap();
            offered += sent;
            collectors.push(collector);
            held_open.push(writer);
        }
        // Let the queue drain before shutdown so the decided rate
        // reflects service, not the drain rejection.
        std::thread::sleep(Duration::from_millis(500));
        let elapsed = started.elapsed().as_secs_f64();

        let control = TcpStream::connect(&addr).unwrap();
        let mut cw = control.try_clone().unwrap();
        let mut cr = BufReader::new(control);
        cw.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut ack = String::new();
        let _ = cr.read_line(&mut ack);

        let report = serve.join().unwrap();
        drop(held_open);
        let mut latencies = Vec::new();
        for c in collectors {
            latencies.extend(c.join().unwrap());
        }
        (report, offered, latencies, elapsed)
    });

    Cell {
        factor,
        offered,
        latencies_us: latencies,
        elapsed_secs: elapsed,
        report,
    }
}

fn main() {
    let mut profile = Profile::quick();
    let mut out = String::from("BENCH_pr9.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr9: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr9 [--smoke|--quick|--full] [--out PATH]");
                println!("  drives a live daemon at 1x/2x/4x engine capacity with and");
                println!("  without overload shedding, gates decision-latency p99 under");
                println!("  the structural queue bound, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr9: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let capacity = 1.0 / profile.admit_spin.as_secs_f64();
    println!(
        "bench_pr9: profile={} capacity={capacity:.0} req/s queue_limit={} window={}s",
        profile.name, profile.queue_limit, profile.window_secs
    );

    // The structural latency ceiling with shedding: a queue never deeper
    // than its bound, drained at one admit per spin. Generous slack (4x)
    // absorbs scheduler noise; without a bound like this, overload p99
    // would scale with the *offered* load instead of the queue.
    let p99_bound_us =
        (profile.queue_limit as f64 * profile.admit_spin.as_secs_f64() * 1e6 * 4.0) as u64;

    let mut cells = Vec::new();
    let mut gate_failures = Vec::new();
    for &factor in &[1.0, 2.0, 4.0] {
        for &shedding in &[true, false] {
            let cell = run_cell(&profile, factor, shedding);
            let mut sorted = cell.latencies_us.clone();
            sorted.sort_unstable();
            let p50 = percentile(&sorted, 0.50);
            let p99 = percentile(&sorted, 0.99);
            let c = &cell.report.counters;

            // Accounting identity, every cell: nothing vanished.
            assert_eq!(
                c.admits_received,
                cell.report.submitted + c.duplicates + c.shed + c.rejected_shutdown,
                "cell factor={factor} shedding={shedding}: accounting does not balance"
            );

            let offered_rate = cell.offered as f64 / cell.elapsed_secs;
            let decided_rate = cell.report.decided as f64 / cell.elapsed_secs;
            println!(
                "  {factor:.0}x shed={} offered={offered_rate:.0}/s decided={decided_rate:.0}/s \
                 shed_count={} p50={p50}us p99={p99}us queue_peak={}",
                if shedding { "on " } else { "off" },
                c.shed,
                c.queue_peak
            );
            if shedding && !sorted.is_empty() && p99 > p99_bound_us {
                gate_failures.push(format!(
                    "factor={factor} p99={p99}us exceeds bound={p99_bound_us}us"
                ));
            }
            cells.push(JsonValue::obj([
                ("load_factor", JsonValue::Num(factor)),
                ("shedding", JsonValue::Bool(shedding)),
                ("offered", JsonValue::Num(cell.offered as f64)),
                ("offered_per_sec", JsonValue::Num(offered_rate)),
                ("decided", JsonValue::Num(cell.report.decided as f64)),
                ("decided_per_sec", JsonValue::Num(decided_rate)),
                ("submitted", JsonValue::Num(cell.report.submitted as f64)),
                ("shed_count", JsonValue::Num(c.shed as f64)),
                (
                    "rejected_shutdown",
                    JsonValue::Num(c.rejected_shutdown as f64),
                ),
                ("queue_peak", JsonValue::Num(c.queue_peak as f64)),
                ("shed_engaged", JsonValue::Num(c.shed_engaged as f64)),
                ("latency_p50_us", JsonValue::Num(p50 as f64)),
                ("latency_p99_us", JsonValue::Num(p99 as f64)),
                (
                    "latency_samples",
                    JsonValue::Num(cell.latencies_us.len() as f64),
                ),
                ("factor_requested", JsonValue::Num(cell.factor)),
            ]));
        }
    }

    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr9_daemon_overload".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("capacity_per_sec", JsonValue::Num(capacity)),
        (
            "admit_spin_us",
            JsonValue::Num(profile.admit_spin.as_micros() as f64),
        ),
        ("queue_limit", JsonValue::Num(profile.queue_limit as f64)),
        ("connections", JsonValue::Num(profile.connections as f64)),
        ("window_secs", JsonValue::Num(profile.window_secs)),
        ("p99_bound_us", JsonValue::Num(p99_bound_us as f64)),
        ("cells", JsonValue::Arr(cells)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr9: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    // The hard gate, last so the JSON survives for debugging a failure.
    assert!(
        gate_failures.is_empty(),
        "overload latency not bounded under shedding:\n  {}",
        gate_failures.join("\n  ")
    );
    println!("bench_pr9: p99 stayed under {p99_bound_us}us in every shedding cell");
}
