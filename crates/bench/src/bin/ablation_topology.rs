//! Ablation: does the Figure-6 system ordering survive on other
//! topologies? Re-runs the comparison on a grid, a ring and a Waxman
//! random graph (the paper only evaluates the MCI backbone).
use anycast_bench::figures::comparison_on;
use anycast_bench::parse_args;
use anycast_net::{topologies, Bandwidth, NodeId};

fn main() {
    let settings = parse_args("ablation_topology");
    let lambdas = [10.0, 25.0, 40.0];
    let cap = Bandwidth::from_mbps(100);

    // 5×4 grid: members spread over the mesh, odd sources.
    let grid = topologies::grid(5, 4, cap);
    comparison_on(
        "Grid 5x4",
        &grid,
        [0u32, 4, 9, 12, 18].map(NodeId::new).to_vec(),
        (0..20).filter(|n| n % 2 == 1).map(NodeId::new).collect(),
        &lambdas,
        &settings,
    );

    // 19-ring: the adversarial no-alternative-routes case.
    let ring = topologies::ring(19, cap);
    comparison_on(
        "Ring 19",
        &ring,
        [0u32, 4, 8, 12, 16].map(NodeId::new).to_vec(),
        (0..19).filter(|n| n % 2 == 1).map(NodeId::new).collect(),
        &lambdas,
        &settings,
    );

    // Waxman random ISP-like graph.
    let wax = topologies::waxman(19, 0.5, 0.5, 7, cap).expect("seed 7 yields a connected graph");
    comparison_on(
        "Waxman 19 (seed 7)",
        &wax,
        [0u32, 4, 8, 12, 16].map(NodeId::new).to_vec(),
        (0..19).filter(|n| n % 2 == 1).map(NodeId::new).collect(),
        &lambdas,
        &settings,
    );
}
