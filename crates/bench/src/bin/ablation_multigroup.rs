//! Ablation (extension): several anycast services sharing one backbone.
//! The paper evaluates a single K=5 group; real deployments host many
//! services with different replica placements competing for the same
//! anycast partition. Three-group mix vs the same total load on one group.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ExperimentConfig, GroupSpec, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, NodeId};

const LAMBDAS: [f64; 3] = [20.0, 35.0, 50.0];

fn multi_groups() -> Vec<GroupSpec> {
    vec![
        // A well-replicated CDN-like service takes half the traffic.
        GroupSpec {
            members: [0u32, 4, 8, 12, 16].map(NodeId::new).to_vec(),
            share: 2.0,
        },
        // A two-site database service.
        GroupSpec {
            members: [2u32, 14].map(NodeId::new).to_vec(),
            share: 1.0,
        },
        // A single-site legacy service (pure unicast).
        GroupSpec {
            members: [10u32].map(NodeId::new).to_vec(),
            share: 1.0,
        },
    ]
}

fn main() {
    let settings = parse_args("ablation_multigroup");
    let topo = topologies::mci();
    let system = SystemSpec::dac(PolicySpec::wd_dh_default(), 2);
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        configs.push(
            ExperimentConfig::paper_defaults(lambda, system)
                .with_warmup_secs(settings.warmup_secs)
                .with_measure_secs(settings.measure_secs),
        );
        configs.push(
            ExperimentConfig::paper_defaults(lambda, system)
                .with_groups(multi_groups())
                .with_warmup_secs(settings.warmup_secs)
                .with_measure_secs(settings.measure_secs),
        );
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: <WD/D+H,2> with one K=5 group vs three services sharing the partition");
    println!();
    let mut table = Table::new(vec![
        "lambda".into(),
        "single K=5".into(),
        "3 services overall".into(),
        "K=5 CDN".into(),
        "K=2 DB".into(),
        "K=1 legacy".into(),
    ]);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let single = &results[i * 2];
        let multi = &results[i * 2 + 1];
        // Per-group APs averaged over replications.
        let mut per_group = [0.0f64; 3];
        for run in &multi.runs {
            for (g, ap) in run.per_group_ap.iter().enumerate() {
                per_group[g] += ap / multi.runs.len() as f64;
            }
        }
        table.row(vec![
            format!("{lambda:.1}"),
            format!("{:.4}", single.admission_probability),
            format!("{:.4}", multi.admission_probability),
            format!("{:.4}", per_group[0]),
            format!("{:.4}", per_group[1]),
            format!("{:.4}", per_group[2]),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("Sparser services suffer first: replication degree buys admission probability.");
}
