//! Ablation: admission probability and network availability of SP, GDI,
//! `<ED,2>` and `<WD/D+H,2>` as the link failure rate rises.
use anycast_bench::figures::faults_ablation;
use anycast_bench::parse_args;

fn main() {
    let settings = parse_args("ablation_faults");
    faults_ablation(&settings);
}
