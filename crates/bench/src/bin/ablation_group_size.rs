//! Ablation: admission probability vs anycast group size K (the paper
//! fixes K = 5). Larger groups give the randomized selection more freedom.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, NodeId};

const LAMBDAS: [f64; 3] = [20.0, 35.0, 50.0];

fn main() {
    let settings = parse_args("ablation_group_size");
    let topo = topologies::mci();
    let groups: [(&str, &[u32]); 4] = [
        ("K=1", &[8]),
        ("K=2", &[0, 8]),
        ("K=3", &[0, 8, 16]),
        ("K=5", &[0, 4, 8, 12, 16]),
    ];
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        for (_, members) in groups {
            configs.push(
                ExperimentConfig::paper_defaults(
                    lambda,
                    SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
                )
                .with_group(members.iter().map(|&n| NodeId::new(n)).collect())
                .with_warmup_secs(settings.warmup_secs)
                .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: <WD/D+H,2> admission probability vs group size K");
    println!();
    let mut headers = vec!["lambda".to_string()];
    headers.extend(groups.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..groups.len() {
            row.push(format!(
                "{:.4}",
                results[i * groups.len() + j].admission_probability
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
