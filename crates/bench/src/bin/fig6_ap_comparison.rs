//! Regenerates Figure 6: AP of the three DAC systems (R = 2) vs SP and GDI.
use anycast_bench::figures::comparison_figure;
use anycast_bench::parse_args;

fn main() {
    let settings = parse_args("fig6_ap_comparison");
    comparison_figure(&settings);
}
