//! PR 7 performance snapshot: sequential vs parallel **in-batch**
//! candidate evaluation — the sharded link-state fan-out inside one
//! simulation run — written to `BENCH_pr7.json`.
//!
//! Unlike `bench_pr2` (which parallelises across independent runs), this
//! benchmark keeps a single run and times the same batched workload with
//! `batch_jobs = 1` against `batch_jobs = --jobs`: the candidate
//! evaluations of every same-quantum batch are fanned across the worker
//! pool over a borrowed [`ShardedSnapshot`] while the commit loop stays
//! sequential. Workloads:
//!
//! * **wddh** — `<WD/D+H,2>`, where the fan-out primes the per-source
//!   route-bandwidth caches;
//! * **gdi** — the global-knowledge baseline, where it precomputes the
//!   per-(source, demand) feasibility memo;
//! * **wddh_express** — express two-phase signalling (zero per-hop
//!   delay), where batching stays active and the primed caches feed the
//!   express setup walk.
//!
//! Every workload asserts the **divergence gate**: parallel metrics must
//! be bit-identical to sequential. On a single-core runner a ~1× speedup
//! is expected and fine — the gate is the point, the speedup is the
//! bonus.
//!
//! [`ShardedSnapshot`]: anycast_net::ShardedSnapshot

use anycast_bench::default_jobs;
use anycast_bench::json::JsonValue;
use anycast_bench::stats::percentile;
use anycast_dac::experiment::{
    run_experiment, ExperimentConfig, Metrics, SignalingMode, SystemSpec, TwoPhaseConfig,
};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;
use std::time::Instant;

/// Run lengths, λ grid and timing repetitions for one profile.
struct Profile {
    name: &'static str,
    warmup_secs: f64,
    measure_secs: f64,
    lambdas: Vec<f64>,
    iters: usize,
    seed: u64,
}

impl Profile {
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_secs: 30.0,
            measure_secs: 90.0,
            lambdas: vec![40.0],
            iters: 1,
            seed: 101,
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            warmup_secs: 300.0,
            measure_secs: 600.0,
            lambdas: vec![35.0, 50.0],
            iters: 3,
            seed: 101,
        }
    }

    fn full() -> Self {
        Profile {
            name: "full",
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            lambdas: vec![35.0, 50.0],
            iters: 5,
            seed: 101,
        }
    }
}

/// One batched workload to time in both execution modes.
struct Workload {
    name: String,
    config: ExperimentConfig,
}

/// Times `iters` repetitions of one config and returns the metrics of the
/// first run plus the median wall time in seconds (nearest-rank over
/// microsecond samples, so repeated runs damp scheduler noise).
fn time_runs(
    topo: &anycast_net::Topology,
    config: &ExperimentConfig,
    iters: usize,
) -> (Metrics, f64) {
    let mut samples_us: Vec<u64> = Vec::with_capacity(iters);
    let mut metrics: Option<Metrics> = None;
    for _ in 0..iters {
        let start = Instant::now();
        let m = run_experiment(topo, config);
        samples_us.push(start.elapsed().as_micros() as u64);
        match &metrics {
            None => metrics = Some(m),
            Some(first) => assert_eq!(
                *first, m,
                "repeated runs of one config must be bit-identical"
            ),
        }
    }
    samples_us.sort_unstable();
    let median_secs = percentile(&samples_us, 0.5) as f64 / 1e6;
    (metrics.expect("at least one iteration"), median_secs)
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr7.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr7: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr7: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr7: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr7 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  times batched runs with batch_jobs=1 vs batch_jobs=N,");
                println!("  asserts the metrics are bit-identical, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr7: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr7: profile={} jobs={jobs} available_parallelism={cores}",
        profile.name
    );

    let systems: [(&str, SystemSpec, Option<SignalingMode>); 3] = [
        (
            "wddh",
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            None,
        ),
        ("gdi", SystemSpec::GlobalDynamic, None),
        (
            "wddh_express",
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            Some(SignalingMode::TwoPhase(TwoPhaseConfig::default())),
        ),
    ];
    let mut workloads: Vec<Workload> = Vec::new();
    for (system_name, system, signaling) in systems {
        for &lambda in &profile.lambdas {
            let mut config = ExperimentConfig::paper_defaults(lambda, system)
                .with_warmup_secs(profile.warmup_secs)
                .with_measure_secs(profile.measure_secs)
                .with_seed(profile.seed)
                .with_batching(true);
            if let Some(mode) = signaling {
                config = config.with_signaling(mode);
            }
            workloads.push(Workload {
                name: format!("{system_name}_lambda{lambda:.0}"),
                config,
            });
        }
    }

    let mut entries = Vec::new();
    for w in &workloads {
        let sequential_config = w.config.clone().with_batch_jobs(1);
        let parallel_config = w.config.clone().with_batch_jobs(jobs);
        let (seq_metrics, sequential_secs) = time_runs(&topo, &sequential_config, profile.iters);
        let (par_metrics, parallel_secs) = time_runs(&topo, &parallel_config, profile.iters);
        // The divergence gate: batch_jobs is an execution knob only.
        assert_eq!(
            seq_metrics, par_metrics,
            "{}: batch_jobs={jobs} diverged from batch_jobs=1",
            w.name
        );
        let offered = seq_metrics.offered;
        let speedup = sequential_secs / parallel_secs;
        println!(
            "  {:<22} offered={:<7} AP={:.4} seq={:.3}s par={:.3}s speedup={:.2}x",
            w.name,
            offered,
            seq_metrics.admission_probability,
            sequential_secs,
            parallel_secs,
            speedup
        );
        entries.push(JsonValue::obj([
            ("name", JsonValue::Str(w.name.clone())),
            ("lambda", JsonValue::Num(w.config.lambda)),
            ("offered_requests", JsonValue::Num(offered as f64)),
            ("mean_ap", JsonValue::Num(seq_metrics.admission_probability)),
            ("sequential_secs", JsonValue::Num(sequential_secs)),
            ("parallel_secs", JsonValue::Num(parallel_secs)),
            ("speedup", JsonValue::Num(speedup)),
            (
                "sequential_requests_per_sec",
                JsonValue::Num(offered as f64 / sequential_secs),
            ),
            (
                "parallel_requests_per_sec",
                JsonValue::Num(offered as f64 / parallel_secs),
            ),
        ]));
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr7_parallel_batch".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("available_parallelism", JsonValue::Num(cores as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr7: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
