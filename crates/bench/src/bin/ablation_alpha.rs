//! Ablation: sensitivity of WD/D+H to the history-damping parameter α.
//!
//! The paper never states the α used in its experiments (see DESIGN.md §2);
//! this sweep shows how much it matters. α = 1 disables history entirely
//! (pure distance weighting); α = 0 gives one failure veto power.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::{HistoryMode, PolicySpec};
use anycast_net::topologies;

const ALPHAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const LAMBDAS: [f64; 4] = [20.0, 30.0, 40.0, 50.0];

fn main() {
    let settings = parse_args("ablation_alpha");
    let topo = topologies::mci();
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        for &alpha in &ALPHAS {
            let policy = PolicySpec::WdDh {
                alpha,
                mode: HistoryMode::FromBase,
            };
            configs.push(
                ExperimentConfig::paper_defaults(lambda, SystemSpec::dac(policy, 2))
                    .with_warmup_secs(settings.warmup_secs)
                    .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: WD/D+H admission probability vs alpha (R = 2)");
    println!();
    let mut headers = vec!["lambda".to_string()];
    headers.extend(ALPHAS.iter().map(|a| format!("alpha={a:.2}")));
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..ALPHAS.len() {
            row.push(format!(
                "{:.4}",
                results[i * ALPHAS.len() + j].admission_probability
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
