//! Regenerates Figure 7: average number of tries per request (R = 2).
use anycast_bench::figures::retrials_figure;
use anycast_bench::parse_args;

fn main() {
    let settings = parse_args("fig7_avg_retrials");
    retrials_figure(&settings);
}
