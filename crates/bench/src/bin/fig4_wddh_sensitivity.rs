//! Regenerates Figure 4: admission probability of `<WD/D+H,R>` vs arrival rate.
use anycast_bench::figures::main_sensitivity;
use anycast_dac::policy::PolicySpec;

fn main() {
    main_sensitivity(
        "fig4_wddh_sensitivity",
        "Figure 4",
        PolicySpec::wd_dh_default(),
    );
}
