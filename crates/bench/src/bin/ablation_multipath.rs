//! Ablation (extension): what does path diversity buy? The paper fixes one
//! route per (source, member); this compares the single-path DAC against
//! the multipath variant (k shortest routes per member, Yen's algorithm)
//! and the GDI oracle that may use any path.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;

const LAMBDAS: [f64; 5] = [20.0, 27.5, 35.0, 42.5, 50.0];

fn main() {
    let settings = parse_args("ablation_multipath");
    let topo = topologies::mci();
    let systems = [
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 2),
        SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 3),
        SystemSpec::GlobalDynamic,
    ];
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        for &system in &systems {
            configs.push(
                ExperimentConfig::paper_defaults(lambda, system)
                    .with_warmup_secs(settings.warmup_secs)
                    .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: single-path vs multipath DAC (WD/D+H, R = 2) vs GDI");
    println!();
    let mut headers = vec!["lambda".to_string()];
    headers.extend(systems.iter().map(|s| s.label()));
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..systems.len() {
            row.push(format!(
                "{:.4}",
                results[i * systems.len() + j].admission_probability
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
