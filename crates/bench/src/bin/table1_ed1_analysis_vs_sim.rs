//! Regenerates Table 1: analysis vs simulation for `<ED,1>`.
use anycast_analysis::scenario::AnalyzedSystem;
use anycast_bench::figures::analysis_table;
use anycast_bench::parse_args;

fn main() {
    let settings = parse_args("table1_ed1_analysis_vs_sim");
    analysis_table(
        "Table 1: analysis vs simulation, system <ED,1>",
        AnalyzedSystem::Ed1,
        &settings,
    );
}
