//! PR 5 performance snapshot: batched same-quantum admission vs the
//! one-at-a-time path, written to `BENCH_pr5.json`.
//!
//! Two systems, each as a sequential/batched workload pair over the same
//! Figure-6-style λ grid:
//!
//! * **wddh** — `<WD/D+H,2>`, the paper's default multi-destination
//!   policy; batching routes its weight computation through the flat
//!   scratch-buffer path.
//! * **gdi** — the global-knowledge baseline, whose exhaustive residual
//!   search is the hot spot batching memoises within a quantum.
//!
//! Every batched workload is asserted **bit-identical** to its sequential
//! twin (the tentpole equivalence), and every workload runs serial and
//! parallel and asserts those bit-identical too. `--smoke` shrinks the
//! grid for CI; `--quick`/`--full` follow the usual run-length profiles.
//! The JSON schema extends `BENCH_pr2.json`'s with per-workload `mean_ap`.

use anycast_bench::json::JsonValue;
use anycast_bench::{default_jobs, run_grid, ReplicatedMetrics};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Topology};
use std::time::Instant;

/// Run lengths and grid sizes for one profile.
struct Profile {
    name: &'static str,
    warmup_secs: f64,
    measure_secs: f64,
    seeds: Vec<u64>,
    lambdas: Vec<f64>,
}

impl Profile {
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_secs: 30.0,
            measure_secs: 90.0,
            seeds: vec![101, 202],
            lambdas: vec![10.0, 30.0, 50.0],
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            warmup_secs: 300.0,
            measure_secs: 600.0,
            seeds: vec![101],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
        }
    }

    fn full() -> Self {
        Profile {
            name: "full",
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            seeds: vec![101, 202, 303],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
        }
    }

    fn grid(&self, system: &SystemSpec, batch: bool) -> Vec<ExperimentConfig> {
        self.lambdas
            .iter()
            .map(|&lambda| {
                ExperimentConfig::paper_defaults(lambda, *system)
                    .with_warmup_secs(self.warmup_secs)
                    .with_measure_secs(self.measure_secs)
                    .with_batching(batch)
            })
            .collect()
    }
}

fn offered_requests(results: &[ReplicatedMetrics]) -> u64 {
    results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.offered)
        .sum()
}

fn mean_ap(results: &[ReplicatedMetrics]) -> f64 {
    let runs: Vec<f64> = results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.admission_probability)
        .collect();
    runs.iter().sum::<f64>() / runs.len() as f64
}

fn timed_grid(
    topo: &Topology,
    configs: &[ExperimentConfig],
    seeds: &[u64],
    jobs: usize,
) -> (Vec<ReplicatedMetrics>, f64) {
    let start = Instant::now();
    let results = run_grid(topo, configs, seeds, jobs);
    (results, start.elapsed().as_secs_f64())
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr5.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr5: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr5: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr5: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr5 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  times batched same-quantum admission against the sequential path,");
                println!("  asserts batched == sequential bit-for-bit, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr5: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr5: profile={} jobs={jobs} available_parallelism={cores}",
        profile.name
    );
    let systems = [
        ("wddh", SystemSpec::dac(PolicySpec::wd_dh_default(), 2)),
        ("gdi", SystemSpec::GlobalDynamic),
    ];
    let mut entries = Vec::new();
    for (system_name, system) in systems {
        let mut sequential_runs: Option<Vec<ReplicatedMetrics>> = None;
        for batch in [false, true] {
            let name = format!(
                "{system_name}_{}",
                if batch { "batched" } else { "sequential" }
            );
            let configs = profile.grid(&system, batch);
            let (serial, serial_secs) = timed_grid(&topo, &configs, &profile.seeds, 1);
            let (parallel, parallel_secs) = timed_grid(&topo, &configs, &profile.seeds, jobs);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.runs, b.runs, "{name}: parallel run diverged from serial");
            }
            // The tentpole gate: the batched grid replays the sequential
            // grid bit-for-bit, every cell, every replication.
            match (&sequential_runs, batch) {
                (None, false) => sequential_runs = Some(serial.clone()),
                (Some(base), true) => {
                    for (a, b) in base.iter().zip(&serial) {
                        assert_eq!(
                            a.runs, b.runs,
                            "{system_name}: batched admission diverged from sequential"
                        );
                    }
                }
                _ => unreachable!("sequential always runs first"),
            }
            let offered = offered_requests(&serial);
            let ap = mean_ap(&serial);
            let speedup = serial_secs / parallel_secs;
            println!(
                "  {:<17} cells={:<3} reqs={:<8} AP={:.4} serial={:.2}s parallel={:.2}s speedup={:.2}x",
                name,
                configs.len(),
                offered,
                ap,
                serial_secs,
                parallel_secs,
                speedup
            );
            entries.push(JsonValue::obj([
                ("name", JsonValue::Str(name)),
                ("grid_cells", JsonValue::Num(configs.len() as f64)),
                ("replications", JsonValue::Num(profile.seeds.len() as f64)),
                ("offered_requests", JsonValue::Num(offered as f64)),
                ("mean_ap", JsonValue::Num(ap)),
                ("serial_secs", JsonValue::Num(serial_secs)),
                ("parallel_secs", JsonValue::Num(parallel_secs)),
                ("speedup", JsonValue::Num(speedup)),
                (
                    "serial_requests_per_sec",
                    JsonValue::Num(offered as f64 / serial_secs),
                ),
                (
                    "parallel_requests_per_sec",
                    JsonValue::Num(offered as f64 / parallel_secs),
                ),
            ]));
        }
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr5_batched_admission".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("available_parallelism", JsonValue::Num(cores as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr5: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
