//! PR 2 performance snapshot: wall-clock of the figure sweeps, serial vs
//! parallel, written to `BENCH_pr2.json`.
//!
//! Each workload is one figure-shaped `run_grid` (Figure 6 comparison,
//! Figure 7 retrials, the fault ablation). Every grid is run twice —
//! `--jobs 1` and `--jobs N` — the outputs are asserted **bit-identical**,
//! and both timings land in the JSON together with requests/sec so later
//! PRs can track the perf trajectory.
//!
//! `--smoke` shrinks the grids for CI; `--quick`/`--full` follow the usual
//! run-length profiles. The JSON schema is stable:
//! `{jobs, available_parallelism, profile, workloads: [{name, grid_cells,
//! replications, offered_requests, serial_secs, parallel_secs, speedup,
//! serial_requests_per_sec, parallel_requests_per_sec}]}`.

use anycast_bench::figures::{comparison_systems, ABLATION_MTTR_SECS};
use anycast_bench::json::JsonValue;
use anycast_bench::{default_jobs, run_grid, ReplicatedMetrics};
use anycast_chaos::FaultPlan;
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Topology};
use std::time::Instant;

/// One figure-shaped grid to time.
struct Workload {
    name: &'static str,
    configs: Vec<ExperimentConfig>,
}

/// Run lengths and grid sizes for one profile.
struct Profile {
    name: &'static str,
    warmup_secs: f64,
    measure_secs: f64,
    seeds: Vec<u64>,
    lambdas: Vec<f64>,
    mtbfs: Vec<f64>,
}

impl Profile {
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_secs: 30.0,
            measure_secs: 90.0,
            seeds: vec![101, 202],
            lambdas: vec![10.0, 30.0, 50.0],
            mtbfs: vec![f64::INFINITY, 500.0],
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            warmup_secs: 300.0,
            measure_secs: 600.0,
            seeds: vec![101],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
            mtbfs: vec![f64::INFINITY, 1_000.0, 250.0],
        }
    }

    fn full() -> Self {
        Profile {
            name: "full",
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            seeds: vec![101, 202, 303],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
            mtbfs: vec![f64::INFINITY, 1_000.0, 250.0],
        }
    }

    fn base(&self, lambda: f64, system: SystemSpec) -> ExperimentConfig {
        ExperimentConfig::paper_defaults(lambda, system)
            .with_warmup_secs(self.warmup_secs)
            .with_measure_secs(self.measure_secs)
    }

    fn workloads(&self) -> Vec<Workload> {
        let mut fig6 = Vec::new();
        for &lambda in &self.lambdas {
            for &system in &comparison_systems() {
                fig6.push(self.base(lambda, system));
            }
        }
        let dac_systems = [
            SystemSpec::dac(PolicySpec::Ed, 2),
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            SystemSpec::dac(PolicySpec::WdDb, 2),
        ];
        let mut fig7 = Vec::new();
        for &lambda in &self.lambdas {
            for &system in &dac_systems {
                fig7.push(self.base(lambda, system));
            }
        }
        let fault_systems = [
            SystemSpec::ShortestPath,
            SystemSpec::GlobalDynamic,
            SystemSpec::dac(PolicySpec::Ed, 2),
        ];
        let mut faults = Vec::new();
        for &mtbf in &self.mtbfs {
            for &system in &fault_systems {
                let mut cfg = self.base(30.0, system);
                if mtbf.is_finite() {
                    cfg = cfg
                        .with_faults(FaultPlan::none().with_link_model(mtbf, ABLATION_MTTR_SECS));
                }
                faults.push(cfg);
            }
        }
        vec![
            Workload {
                name: "fig6_ap_comparison",
                configs: fig6,
            },
            Workload {
                name: "fig7_avg_retrials",
                configs: fig7,
            },
            Workload {
                name: "ablation_faults",
                configs: faults,
            },
        ]
    }
}

fn offered_requests(results: &[ReplicatedMetrics]) -> u64 {
    results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.offered)
        .sum()
}

fn timed_grid(
    topo: &Topology,
    configs: &[ExperimentConfig],
    seeds: &[u64],
    jobs: usize,
) -> (Vec<ReplicatedMetrics>, f64) {
    let start = Instant::now();
    let results = run_grid(topo, configs, seeds, jobs);
    (results, start.elapsed().as_secs_f64())
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr2.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr2: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr2: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr2: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr2 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  times the figure sweeps serial (--jobs 1) vs parallel (--jobs N),");
                println!("  asserts the results are bit-identical, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr2: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr2: profile={} jobs={jobs} available_parallelism={cores}",
        profile.name
    );
    let mut entries = Vec::new();
    for workload in profile.workloads() {
        let (serial, serial_secs) = timed_grid(&topo, &workload.configs, &profile.seeds, 1);
        let (parallel, parallel_secs) = timed_grid(&topo, &workload.configs, &profile.seeds, jobs);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.runs, b.runs,
                "{}: parallel run diverged from serial",
                workload.name
            );
        }
        let offered = offered_requests(&serial);
        let speedup = serial_secs / parallel_secs;
        println!(
            "  {:<20} cells={:<3} reqs={:<8} serial={:.2}s parallel={:.2}s speedup={:.2}x",
            workload.name,
            workload.configs.len(),
            offered,
            serial_secs,
            parallel_secs,
            speedup
        );
        entries.push(JsonValue::obj([
            ("name", JsonValue::Str(workload.name.into())),
            ("grid_cells", JsonValue::Num(workload.configs.len() as f64)),
            ("replications", JsonValue::Num(profile.seeds.len() as f64)),
            ("offered_requests", JsonValue::Num(offered as f64)),
            ("serial_secs", JsonValue::Num(serial_secs)),
            ("parallel_secs", JsonValue::Num(parallel_secs)),
            ("speedup", JsonValue::Num(speedup)),
            (
                "serial_requests_per_sec",
                JsonValue::Num(offered as f64 / serial_secs),
            ),
            (
                "parallel_requests_per_sec",
                JsonValue::Num(offered as f64 / parallel_secs),
            ),
        ]));
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr2_parallel_sweep_engine".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("available_parallelism", JsonValue::Num(cores as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr2: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
