//! PR 6 performance snapshot: the online admission engine driven as a
//! service — sustained request throughput and per-decision latency —
//! written to `BENCH_pr6.json`.
//!
//! Each workload records a scenario's arrival trace, then feeds it
//! through [`OnlineEngine`] one arrival at a time (submit → pump), the
//! exact path the daemon's service loop takes, timing every decision
//! from submission to drain:
//!
//! * **wddh** — `<WD/D+H,2>` with batched admission, the daemon default;
//! * **gdi** — the global-knowledge baseline, the heaviest per-decision
//!   search;
//! * **wddh_twophase** — asynchronous two-phase signalling, where
//!   decisions resolve across later pumps and the request-id correlation
//!   (the wire protocol's contract) is exercised for real.
//!
//! Every workload asserts the **replay-equivalence gate**: the online
//! run's metrics must be bit-identical to the offline engine's for the
//! same config. Workloads also run under `--jobs`-way parallelism via
//! the deterministic pool and must match the serial pass bit-for-bit.

use anycast_bench::default_jobs;
use anycast_bench::json::JsonValue;
use anycast_bench::stats::percentile;
use anycast_dac::experiment::{
    run_experiment, ExperimentConfig, Metrics, SignalingMode, SystemSpec, TwoPhaseConfig,
};
use anycast_dac::online::{record_arrivals, OnlineEngine};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Topology};
use anycast_sim::pool::parallel_map;
use anycast_telemetry::NullRecorder;
use std::time::Instant;

/// Run lengths and the λ grid for one profile.
struct Profile {
    name: &'static str,
    warmup_secs: f64,
    measure_secs: f64,
    lambdas: Vec<f64>,
    seed: u64,
}

impl Profile {
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_secs: 30.0,
            measure_secs: 90.0,
            lambdas: vec![30.0],
            seed: 101,
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            warmup_secs: 300.0,
            measure_secs: 600.0,
            lambdas: vec![20.0, 35.0, 50.0],
            seed: 101,
        }
    }

    fn full() -> Self {
        Profile {
            name: "full",
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            lambdas: vec![20.0, 35.0, 50.0],
            seed: 101,
        }
    }
}

/// One (system, λ) service workload.
struct Workload {
    name: String,
    config: ExperimentConfig,
}

/// What one online run produces: final metrics, wall time of the
/// submit/pump loop, and one latency sample per decision (submission to
/// drain, microseconds).
struct OnlineRun {
    metrics: Metrics,
    arrivals: u64,
    decisions: u64,
    wall_secs: f64,
    latencies_us: Vec<u64>,
}

/// Drives one workload through the online engine the way the daemon's
/// service loop does: submit each arrival, pump, time every decision from
/// its submission instant (request ids are the dense submission counter,
/// so late asynchronous decisions correlate exactly).
fn run_online(topo: &Topology, config: &ExperimentConfig) -> OnlineRun {
    let arrivals = record_arrivals(config);
    let mut engine = OnlineEngine::new(topo, config, NullRecorder);
    let mut submit_times: Vec<Instant> = Vec::with_capacity(arrivals.len());
    let mut latencies_us: Vec<u64> = Vec::with_capacity(arrivals.len());
    let start = Instant::now();
    for a in &arrivals {
        submit_times.push(Instant::now());
        engine.submit(*a);
        for d in engine.pump() {
            latencies_us.push(submit_times[d.request as usize].elapsed().as_micros() as u64);
        }
    }
    let (metrics, tail, _) = engine.finish();
    let wall_secs = start.elapsed().as_secs_f64();
    let mut decisions = latencies_us.len() as u64;
    for d in tail {
        latencies_us.push(submit_times[d.request as usize].elapsed().as_micros() as u64);
        decisions += 1;
    }
    OnlineRun {
        metrics,
        arrivals: arrivals.len() as u64,
        decisions,
        wall_secs,
        latencies_us,
    }
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr6.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr6: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr6: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr6: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr6 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  times the online admission engine on the daemon's submit/pump path,");
                println!("  asserts online == offline bit-for-bit, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr6: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr6: profile={} jobs={jobs} available_parallelism={cores}",
        profile.name
    );

    let two_phase = SignalingMode::TwoPhase(TwoPhaseConfig {
        per_hop_delay_secs: 0.005,
        ..TwoPhaseConfig::default()
    });
    let systems: [(&str, SystemSpec, Option<SignalingMode>, bool); 3] = [
        (
            "wddh",
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            None,
            true,
        ),
        ("gdi", SystemSpec::GlobalDynamic, None, true),
        (
            "wddh_twophase",
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            Some(two_phase),
            false, // batching auto-disables on asynchronous signalling
        ),
    ];
    let mut workloads: Vec<Workload> = Vec::new();
    for (system_name, system, signaling, batch) in systems {
        for &lambda in &profile.lambdas {
            let mut config = ExperimentConfig::paper_defaults(lambda, system)
                .with_warmup_secs(profile.warmup_secs)
                .with_measure_secs(profile.measure_secs)
                .with_seed(profile.seed)
                .with_batching(batch);
            if let Some(mode) = signaling {
                config = config.with_signaling(mode);
            }
            workloads.push(Workload {
                name: format!("{system_name}_lambda{lambda:.0}"),
                config,
            });
        }
    }

    // Serial pass: the measured run.
    let serial: Vec<OnlineRun> = workloads
        .iter()
        .map(|w| run_online(&topo, &w.config))
        .collect();
    // Parallel pass: same workloads through the deterministic pool.
    let parallel: Vec<OnlineRun> =
        parallel_map(jobs, &workloads, |_, w| run_online(&topo, &w.config));
    for ((w, a), b) in workloads.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            a.metrics, b.metrics,
            "{}: parallel online run diverged from serial",
            w.name
        );
    }

    let mut entries = Vec::new();
    for (w, run) in workloads.iter().zip(&serial) {
        // The replay-equivalence gate: the online engine must reproduce
        // the offline engine bit-for-bit on the same config.
        let offline = run_experiment(&topo, &w.config);
        assert_eq!(
            run.metrics, offline,
            "{}: online run diverged from the offline engine",
            w.name
        );
        let mut sorted = run.latencies_us.clone();
        sorted.sort_unstable();
        let p50 = percentile(&sorted, 0.50);
        let p99 = percentile(&sorted, 0.99);
        let req_per_sec = run.arrivals as f64 / run.wall_secs;
        println!(
            "  {:<22} arrivals={:<7} decisions={:<7} AP={:.4} {:>9.0} req/s p50={}us p99={}us",
            w.name,
            run.arrivals,
            run.decisions,
            run.metrics.admission_probability,
            req_per_sec,
            p50,
            p99
        );
        entries.push(JsonValue::obj([
            ("name", JsonValue::Str(w.name.clone())),
            ("lambda", JsonValue::Num(w.config.lambda)),
            ("arrivals", JsonValue::Num(run.arrivals as f64)),
            ("decisions", JsonValue::Num(run.decisions as f64)),
            ("mean_ap", JsonValue::Num(run.metrics.admission_probability)),
            ("wall_secs", JsonValue::Num(run.wall_secs)),
            ("requests_per_sec", JsonValue::Num(req_per_sec)),
            ("p50_decision_latency_us", JsonValue::Num(p50 as f64)),
            ("p99_decision_latency_us", JsonValue::Num(p99 as f64)),
        ]));
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr6_online_daemon".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("available_parallelism", JsonValue::Num(cores as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr6: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
