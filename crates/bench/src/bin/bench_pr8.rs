//! PR 8 cross-validation harness: the parsimon-style link-decomposition
//! estimator vs the full DES, written to `BENCH_pr8.json`.
//!
//! For each of the five comparison systems (`<ED,2>`, `<WD/D+H,2>`,
//! `<WD/D+B,2>`, SP, GDI) the harness
//!
//! 1. **calibrates** the estimator from short, time-compressed DES
//!    bursts at a few anchor λs (`anycast-estimator::calibrate`);
//! 2. **predicts** AP over the whole λ grid in one `predict_batch` call;
//! 3. **simulates** every grid cell with the full DES at paper-style
//!    horizons and an *independent* seed;
//! 4. reports the per-cell absolute AP error and the end-to-end
//!    wall-clock speedup (total DES time over calibration + prediction).
//!
//! The error gate is hard: the run aborts if any cell's absolute AP
//! error exceeds `--error-bound` (default 0.05). The speedup is
//! reported, not gated — it measures the economics, which on the smoke
//! profile are deliberately unfavourable (the DES baseline there is cut
//! to CI length while the calibration cost is irreducible; quick/full
//! measure the real trade).

use anycast_bench::default_jobs;
use anycast_bench::json::JsonValue;
use anycast_dac::calibrate::CalibrationBurst;
use anycast_dac::experiment::{run_experiment, ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_estimator::{CalibrationOptions, Estimator};
use anycast_net::topologies;
use std::time::Instant;

/// Grid, horizons and calibration sizing for one profile.
struct Profile {
    name: &'static str,
    /// λ grid every system is validated on.
    lambdas: Vec<f64>,
    /// DES horizons per validation cell.
    des_warmup_secs: f64,
    des_measure_secs: f64,
    /// Anchor λs the estimator calibrates at.
    anchors: Vec<f64>,
    /// Burst horizons in compressed simulated seconds.
    calib_warmup_secs: f64,
    calib_measure_secs: f64,
    /// Time-compression factor for the bursts.
    compression: f64,
}

impl Profile {
    /// CI gate: a 3-λ grid against a shortened (but still ≥3 mean
    /// holding times of warmup) DES. Validates accuracy, not economics.
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            lambdas: vec![15.0, 30.0, 45.0],
            des_warmup_secs: 540.0,
            des_measure_secs: 300.0,
            anchors: vec![12.0, 30.0, 48.0],
            calib_warmup_secs: 90.0,
            calib_measure_secs: 60.0,
            compression: 6.0,
        }
    }

    /// A 50-cell grid (5 systems × 10 λs) against 2/3-paper-length DES
    /// runs — the fast way to validate accuracy over the whole sweep.
    fn quick() -> Self {
        Profile {
            name: "quick",
            lambdas: (1..=10).map(|i| 5.0 * i as f64).collect(),
            des_warmup_secs: 1_200.0,
            des_measure_secs: 2_400.0,
            anchors: vec![5.0, 12.5, 20.0, 27.5, 35.0, 50.0],
            calib_warmup_secs: 90.0,
            calib_measure_secs: 60.0,
            compression: 6.0,
        }
    }

    /// The checked-in artifact: paper-faithful horizons (1800 s + 3600 s
    /// per cell) over a dense λ grid (step 2.5, 95 cells). The dense grid
    /// is where the economics live — calibration is paid once per system
    /// and amortised over every cell the DES must simulate one by one.
    fn full() -> Self {
        Profile {
            name: "full",
            lambdas: (2..=20).map(|i| 2.5 * i as f64).collect(),
            des_warmup_secs: 1_800.0,
            des_measure_secs: 3_600.0,
            ..Profile::quick()
        }
    }
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr8.json");
    let mut error_bound = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr8: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr8: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--error-bound" => {
                let v = args.next().unwrap_or_default();
                error_bound = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr8: --error-bound wants a number, got `{v}`");
                    std::process::exit(2);
                });
                if !(error_bound > 0.0 && error_bound.is_finite()) {
                    eprintln!("bench_pr8: --error-bound must be positive");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr8: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_pr8 [--smoke|--quick|--full] [--jobs N] \
                     [--error-bound E] [--out PATH]"
                );
                println!("  calibrates the link-decomposition estimator per system,");
                println!("  cross-validates every (system, lambda) cell against the");
                println!("  full DES, asserts |AP_est - AP_sim| <= E, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr8: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr8: profile={} jobs={jobs} cells={} error_bound={error_bound} \
         available_parallelism={cores}",
        profile.name,
        5 * profile.lambdas.len()
    );

    let systems: [SystemSpec; 5] = [
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac(PolicySpec::WdDb, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ];
    // Calibration and validation must not share randomness: bursts run
    // under the estimator's default seed, the DES under its own.
    const DES_SEED: u64 = 101;

    let calib_options = CalibrationOptions {
        anchors: profile.anchors.clone(),
        burst: CalibrationBurst {
            warmup_secs: profile.calib_warmup_secs,
            measure_secs: profile.calib_measure_secs,
            ..CalibrationBurst::default()
        },
        time_compression: profile.compression,
        jobs,
        ..CalibrationOptions::default()
    };

    let mut system_entries = Vec::new();
    let mut worst: (f64, String, f64) = (0.0, String::new(), 0.0);
    let mut total_des_secs = 0.0;
    let mut total_estimator_secs = 0.0;
    for system in systems {
        let label = system.label();
        let base = ExperimentConfig::paper_defaults(profile.lambdas[0], system);

        let start = Instant::now();
        let estimator = Estimator::calibrated(&topo, &base, &calib_options);
        let calibrate_secs = start.elapsed().as_secs_f64();
        let calibration_requests = estimator
            .calibration()
            .expect("calibrated estimator has a table")
            .total_requests();

        let start = Instant::now();
        let estimates = estimator.predict_batch(jobs, &profile.lambdas);
        let predict_secs = start.elapsed().as_secs_f64();

        let mut cells = Vec::new();
        let mut des_secs = 0.0;
        let mut max_abs_err = 0.0f64;
        for (est, &lambda) in estimates.iter().zip(&profile.lambdas) {
            let config = ExperimentConfig::paper_defaults(lambda, system)
                .with_warmup_secs(profile.des_warmup_secs)
                .with_measure_secs(profile.des_measure_secs)
                .with_seed(DES_SEED);
            let start = Instant::now();
            let metrics = run_experiment(&topo, &config);
            let cell_secs = start.elapsed().as_secs_f64();
            des_secs += cell_secs;

            let abs_err = (est.admission_probability - metrics.admission_probability).abs();
            assert!(
                est.admission_probability.is_finite()
                    && (0.0..=1.0).contains(&est.admission_probability),
                "{label} λ={lambda}: estimate {} is not a probability",
                est.admission_probability
            );
            max_abs_err = max_abs_err.max(abs_err);
            if abs_err > worst.0 {
                worst = (abs_err, label.clone(), lambda);
            }
            cells.push(JsonValue::obj([
                ("lambda", JsonValue::Num(lambda)),
                ("ap_sim", JsonValue::Num(metrics.admission_probability)),
                ("ap_est", JsonValue::Num(est.admission_probability)),
                ("ap_est_raw", JsonValue::Num(est.raw_admission_probability)),
                ("residual", JsonValue::Num(est.residual_correction)),
                ("abs_err", JsonValue::Num(abs_err)),
                ("tries_sim", JsonValue::Num(metrics.mean_tries)),
                ("tries_est", JsonValue::Num(est.mean_tries)),
                ("offered_requests", JsonValue::Num(metrics.offered as f64)),
                ("des_secs", JsonValue::Num(cell_secs)),
            ]));
        }
        let estimator_secs = calibrate_secs + predict_secs;
        total_des_secs += des_secs;
        total_estimator_secs += estimator_secs;
        println!(
            "  {:<11} max|err|={max_abs_err:.4} des={des_secs:.2}s \
             calib={calibrate_secs:.2}s predict={predict_secs:.4}s speedup={:.1}x",
            label,
            des_secs / estimator_secs
        );
        system_entries.push(JsonValue::obj([
            ("system", JsonValue::Str(label.clone())),
            ("max_abs_err", JsonValue::Num(max_abs_err)),
            (
                "calibration_requests",
                JsonValue::Num(calibration_requests as f64),
            ),
            ("calibrate_secs", JsonValue::Num(calibrate_secs)),
            ("predict_secs", JsonValue::Num(predict_secs)),
            ("des_secs", JsonValue::Num(des_secs)),
            ("speedup", JsonValue::Num(des_secs / estimator_secs)),
            ("cells", JsonValue::Arr(cells)),
        ]));
    }

    let speedup = total_des_secs / total_estimator_secs;
    println!(
        "bench_pr8: worst |err|={:.4} ({} λ={}) bound={error_bound} overall speedup={speedup:.1}x",
        worst.0, worst.1, worst.2
    );
    let doc = JsonValue::obj([
        (
            "bench",
            JsonValue::Str("pr8_estimator_cross_validation".into()),
        ),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("error_bound", JsonValue::Num(error_bound)),
        ("max_abs_err", JsonValue::Num(worst.0)),
        ("worst_system", JsonValue::Str(worst.1.clone())),
        ("worst_lambda", JsonValue::Num(worst.2)),
        ("total_des_secs", JsonValue::Num(total_des_secs)),
        ("total_estimator_secs", JsonValue::Num(total_estimator_secs)),
        ("speedup", JsonValue::Num(speedup)),
        ("systems", JsonValue::Arr(system_entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr8: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    // The hard gate, last so the JSON survives for debugging a failure.
    assert!(
        worst.0 <= error_bound,
        "estimator error {:.4} on {} at λ={} exceeds the bound {error_bound}",
        worst.0,
        worst.1,
        worst.2
    );
    println!("bench_pr8: error bound held on every cell");
}
