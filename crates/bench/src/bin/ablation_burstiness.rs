//! Ablation (extension): how robust is the paper's Poisson assumption?
//! The same long-run arrival rate is offered as plain Poisson and as
//! increasingly bursty MMPP-2 streams; burstiness concentrates arrivals
//! and erodes admission probability at equal mean load.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ArrivalProcess, ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;

const LAMBDAS: [f64; 3] = [20.0, 35.0, 50.0];
const BURSTINESS: [f64; 4] = [1.0, 1.3, 1.6, 1.9];

fn main() {
    let settings = parse_args("ablation_burstiness");
    let topo = topologies::mci();
    let system = SystemSpec::dac(PolicySpec::wd_dh_default(), 2);
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        configs.push(
            ExperimentConfig::paper_defaults(lambda, system)
                .with_warmup_secs(settings.warmup_secs)
                .with_measure_secs(settings.measure_secs),
        );
        for &b in &BURSTINESS[1..] {
            configs.push(
                ExperimentConfig::paper_defaults(lambda, system)
                    .with_arrivals(ArrivalProcess::Bursty {
                        burstiness: b,
                        mean_sojourn_secs: 60.0,
                    })
                    .with_warmup_secs(settings.warmup_secs)
                    .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: <WD/D+H,2> under bursty (MMPP-2) arrivals at equal mean rate");
    println!();
    let mut headers = vec!["lambda".to_string(), "Poisson".to_string()];
    headers.extend(BURSTINESS[1..].iter().map(|b| format!("bursty {b:.1}")));
    let mut table = Table::new(headers);
    let cols = BURSTINESS.len();
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..cols {
            row.push(format!(
                "{:.4}",
                results[i * cols + j].admission_probability
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
