//! Regenerates Figure 3: admission probability of `<ED,R>` vs arrival rate.
use anycast_bench::figures::main_sensitivity;
use anycast_dac::policy::PolicySpec;

fn main() {
    main_sensitivity("fig3_ed_sensitivity", "Figure 3", PolicySpec::Ed);
}
