//! Ablation: the paper's fixed retrial counter vs the adaptive extension
//! that stops early when the untried destinations' selection weights are
//! negligible — saving signaling messages at equal admission probability.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_dac::RetrialPolicy;
use anycast_net::topologies;

const LAMBDAS: [f64; 4] = [20.0, 30.0, 40.0, 50.0];

fn main() {
    let settings = parse_args("ablation_adaptive_retrial");
    let topo = topologies::mci();
    let policies = [
        ("fixed R=5", RetrialPolicy::FixedLimit(5)),
        (
            "adaptive 5/0.05",
            RetrialPolicy::Adaptive {
                max: 5,
                min_weight: 0.05,
            },
        ),
        (
            "adaptive 5/0.15",
            RetrialPolicy::Adaptive {
                max: 5,
                min_weight: 0.15,
            },
        ),
    ];
    let mut configs = Vec::new();
    for &lambda in &LAMBDAS {
        for (_, retrial) in policies {
            let system = SystemSpec::Dac {
                policy: PolicySpec::wd_dh_default(),
                retrial,
            };
            configs.push(
                ExperimentConfig::paper_defaults(lambda, system)
                    .with_warmup_secs(settings.warmup_secs)
                    .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: fixed vs adaptive retrial control (WD/D+H)");
    println!();
    let mut headers = vec!["lambda".to_string()];
    for (name, _) in policies {
        headers.push(format!("{name} AP"));
        headers.push(format!("{name} msg/req"));
    }
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..policies.len() {
            let m = &results[i * policies.len() + j];
            row.push(format!("{:.4}", m.admission_probability));
            row.push(format!("{:.2}", m.messages_per_request));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
