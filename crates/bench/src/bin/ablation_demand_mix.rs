//! Ablation: heterogeneous bandwidth demands (extension — every flow in
//! the paper demands 64 kb/s). A mix of thin (16 kb/s), standard
//! (64 kb/s) and fat (512 kb/s) flows stresses the admission logic with
//! unequal slot sizes; total offered bits are held constant across rows.
use anycast_bench::{parse_args, run_grid, Table};
use anycast_dac::experiment::{DemandClass, ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Bandwidth};

fn main() {
    let settings = parse_args("ablation_demand_mix");
    let topo = topologies::mci();
    // Mixes with equal mean demand (64 kb/s) so rows are comparable.
    let mixes: [(&str, Vec<DemandClass>); 3] = [
        ("uniform 64k", vec![]),
        (
            "bimodal 16k/112k",
            vec![
                DemandClass {
                    bandwidth: Bandwidth::from_kbps(16),
                    weight: 0.5,
                },
                DemandClass {
                    bandwidth: Bandwidth::from_kbps(112),
                    weight: 0.5,
                },
            ],
        ),
        (
            "heavy-tailed 16k/64k/512k",
            vec![
                DemandClass {
                    bandwidth: Bandwidth::from_kbps(16),
                    weight: 0.571,
                },
                DemandClass {
                    bandwidth: Bandwidth::from_kbps(64),
                    weight: 0.357,
                },
                DemandClass {
                    bandwidth: Bandwidth::from_kbps(512),
                    weight: 0.072,
                },
            ],
        ),
    ];
    let lambdas = [20.0, 35.0, 50.0];
    let mut configs = Vec::new();
    for &lambda in &lambdas {
        for (_, mix) in &mixes {
            configs.push(
                ExperimentConfig::paper_defaults(
                    lambda,
                    SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
                )
                .with_demand_mix(mix.clone())
                .with_warmup_secs(settings.warmup_secs)
                .with_measure_secs(settings.measure_secs),
            );
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Ablation: <WD/D+H,2> under heterogeneous demands (equal mean 64 kb/s)");
    println!();
    let mut headers = vec!["lambda".to_string()];
    headers.extend(mixes.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);
    for (i, &lambda) in lambdas.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..mixes.len() {
            row.push(format!(
                "{:.4}",
                results[i * mixes.len() + j].admission_probability
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
}
