//! PR 3 performance snapshot: telemetry overhead on the Figure 6 sweep,
//! written to `BENCH_pr3.json`.
//!
//! The same figure-shaped grid is timed three times — telemetry **off**
//! (the pre-telemetry `run_grid` hot path), **null** (hooks compiled in
//! but disabled through a `NullRecorder`), and **ring** (full event
//! capture plus the periodic link sampler) — each serial and parallel.
//! All six runs are asserted **bit-identical** on their metrics, so the
//! numbers measure recording cost alone, never behavioural drift. The
//! `off` vs `null` pair is the zero-overhead claim in wall-clock form;
//! `ring` bounds the cost of turning tracing on.
//!
//! `--smoke` shrinks the grid for CI; `--quick`/`--full` follow the usual
//! run-length profiles. The JSON schema matches `BENCH_pr2.json`:
//! `{bench, profile, jobs, available_parallelism, workloads: [{name,
//! grid_cells, replications, offered_requests, serial_secs,
//! parallel_secs, speedup, serial_requests_per_sec,
//! parallel_requests_per_sec}]}`.

use anycast_bench::figures::comparison_systems;
use anycast_bench::json::JsonValue;
use anycast_bench::{default_jobs, run_grid_traced, ReplicatedMetrics};
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_net::{topologies, Topology};
use anycast_telemetry::{TelemetryMode, DEFAULT_RING_CAPACITY};
use std::time::Instant;

/// Link-sampler cadence for the ring workload, in simulated seconds.
const RING_SAMPLE_SECS: f64 = 60.0;

/// Run lengths and grid sizes for one profile.
struct Profile {
    name: &'static str,
    warmup_secs: f64,
    measure_secs: f64,
    seeds: Vec<u64>,
    lambdas: Vec<f64>,
}

impl Profile {
    fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_secs: 30.0,
            measure_secs: 90.0,
            seeds: vec![101, 202],
            lambdas: vec![10.0, 30.0, 50.0],
        }
    }

    fn quick() -> Self {
        Profile {
            name: "quick",
            warmup_secs: 300.0,
            measure_secs: 600.0,
            seeds: vec![101],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
        }
    }

    fn full() -> Self {
        Profile {
            name: "full",
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            seeds: vec![101, 202, 303],
            lambdas: vec![5.0, 20.0, 35.0, 50.0],
        }
    }

    fn base(&self, lambda: f64, system: SystemSpec) -> ExperimentConfig {
        ExperimentConfig::paper_defaults(lambda, system)
            .with_warmup_secs(self.warmup_secs)
            .with_measure_secs(self.measure_secs)
    }

    /// The Figure 6 comparison grid: every system at every λ.
    fn fig6(&self) -> Vec<ExperimentConfig> {
        let mut configs = Vec::new();
        for &lambda in &self.lambdas {
            for &system in &comparison_systems() {
                configs.push(self.base(lambda, system));
            }
        }
        configs
    }
}

fn offered_requests(results: &[ReplicatedMetrics]) -> u64 {
    results
        .iter()
        .flat_map(|r| r.runs.iter())
        .map(|m| m.offered)
        .sum()
}

fn timed_grid(
    topo: &Topology,
    configs: &[ExperimentConfig],
    seeds: &[u64],
    jobs: usize,
    mode: TelemetryMode,
) -> (Vec<ReplicatedMetrics>, f64) {
    let start = Instant::now();
    let (results, _cells) = run_grid_traced(topo, configs, seeds, jobs, mode);
    (results, start.elapsed().as_secs_f64())
}

fn main() {
    let mut profile = Profile::quick();
    let mut jobs = default_jobs();
    let mut out = String::from("BENCH_pr3.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => profile = Profile::smoke(),
            "--quick" => profile = Profile::quick(),
            "--full" => profile = Profile::full(),
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = v.parse().unwrap_or_else(|_| {
                    eprintln!("bench_pr3: --jobs wants a positive integer, got `{v}`");
                    std::process::exit(2);
                });
                if jobs == 0 {
                    eprintln!("bench_pr3: --jobs must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr3: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: bench_pr3 [--smoke|--quick|--full] [--jobs N] [--out PATH]");
                println!("  times the Figure 6 sweep with telemetry off / null / ring,");
                println!("  asserts all modes produce bit-identical metrics, and writes {out}");
                return;
            }
            other => {
                eprintln!("bench_pr3: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let topo = topologies::mci();
    let cores = default_jobs();
    println!(
        "bench_pr3: profile={} jobs={jobs} available_parallelism={cores}",
        profile.name
    );
    let configs = profile.fig6();
    let modes = [
        ("fig6_telemetry_off", TelemetryMode::Off),
        ("fig6_telemetry_null", TelemetryMode::Null),
        (
            "fig6_telemetry_ring",
            TelemetryMode::Ring {
                sample_interval_secs: Some(RING_SAMPLE_SECS),
                capacity: DEFAULT_RING_CAPACITY,
            },
        ),
    ];
    let mut entries = Vec::new();
    let mut reference: Option<Vec<ReplicatedMetrics>> = None;
    for (name, mode) in modes {
        let (serial, serial_secs) = timed_grid(&topo, &configs, &profile.seeds, 1, mode);
        let (parallel, parallel_secs) = timed_grid(&topo, &configs, &profile.seeds, jobs, mode);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.runs, b.runs, "{name}: parallel run diverged from serial");
        }
        match &reference {
            None => reference = Some(serial.clone()),
            Some(base) => {
                for (a, b) in base.iter().zip(&serial) {
                    assert_eq!(
                        a.runs, b.runs,
                        "{name}: recording telemetry perturbed the simulation"
                    );
                }
            }
        }
        let offered = offered_requests(&serial);
        let speedup = serial_secs / parallel_secs;
        println!(
            "  {:<20} cells={:<3} reqs={:<8} serial={:.2}s parallel={:.2}s speedup={:.2}x",
            name,
            configs.len(),
            offered,
            serial_secs,
            parallel_secs,
            speedup
        );
        entries.push(JsonValue::obj([
            ("name", JsonValue::Str(name.into())),
            ("grid_cells", JsonValue::Num(configs.len() as f64)),
            ("replications", JsonValue::Num(profile.seeds.len() as f64)),
            ("offered_requests", JsonValue::Num(offered as f64)),
            ("serial_secs", JsonValue::Num(serial_secs)),
            ("parallel_secs", JsonValue::Num(parallel_secs)),
            ("speedup", JsonValue::Num(speedup)),
            (
                "serial_requests_per_sec",
                JsonValue::Num(offered as f64 / serial_secs),
            ),
            (
                "parallel_requests_per_sec",
                JsonValue::Num(offered as f64 / parallel_secs),
            ),
        ]));
    }
    let doc = JsonValue::obj([
        ("bench", JsonValue::Str("pr3_telemetry".into())),
        ("profile", JsonValue::Str(profile.name.into())),
        ("jobs", JsonValue::Num(jobs as f64)),
        ("available_parallelism", JsonValue::Num(cores as f64)),
        ("workloads", JsonValue::Arr(entries)),
    ]);
    match std::fs::write(&out, doc.render() + "\n") {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("bench_pr3: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
