//! Regenerates Figure 5: admission probability of `<WD/D+B,R>` vs arrival rate.
use anycast_bench::figures::main_sensitivity;
use anycast_dac::policy::PolicySpec;

fn main() {
    main_sensitivity("fig5_wddb_sensitivity", "Figure 5", PolicySpec::WdDb);
}
