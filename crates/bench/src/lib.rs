//! Experiment harness: parallel parameter sweeps, replication statistics
//! and table formatting for the per-figure/table binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin` that
//! drives [`run_replicated`] and prints the same rows/series the paper
//! reports:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig3_ed_sensitivity` | Figure 3 — AP of `<ED,R>` vs λ |
//! | `fig4_wddh_sensitivity` | Figure 4 — AP of `<WD/D+H,R>` vs λ |
//! | `fig5_wddb_sensitivity` | Figure 5 — AP of `<WD/D+B,R>` vs λ |
//! | `fig6_ap_comparison` | Figure 6 — AP of the three DAC systems vs SP and GDI |
//! | `fig7_avg_retrials` | Figure 7 — average tries per request |
//! | `table1_ed1_analysis_vs_sim` | Table 1 — analysis vs simulation, `<ED,1>` |
//! | `table2_sp_analysis_vs_sim` | Table 2 — analysis vs simulation, `SP` |
//! | `ablation_*` | design-choice ablations (α, history mode, topology, group size) |
//! | `ablation_faults` | AP and availability under rising link-failure rates |
//!
//! All binaries accept `--quick` (or `ANYCAST_QUICK=1`) for a shortened
//! smoke-test configuration, and `--jobs N` to select the sweep worker
//! count; output is deterministic for fixed seeds **and for every `--jobs`
//! value** — sweeps fan `(config, seed)` jobs across a scoped-thread
//! [`parallel_map`] pool whose reassembled results are bit-for-bit
//! identical to a serial run. Figure binaries additionally drop a
//! machine-readable copy of their series into `results/<binary>.json`
//! (see [`json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod json;
mod settings;
pub mod stats;
mod sweep;
mod table;

pub use anycast_sim::pool::{default_jobs, parallel_map, parallel_map_with};
pub use settings::{parse_args, RunSettings};
pub use sweep::{
    mean_and_stderr, run_grid, run_grid_traced, run_replicated, ReplicatedMetrics, TracedCell,
};
pub use table::Table;

/// The arrival-rate grid of the paper's figures (flows/second).
pub const LAMBDA_GRID: [f64; 10] = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];

/// The arrival rates of Tables 1 and 2.
pub const TABLE_LAMBDAS: [f64; 4] = [5.0, 20.0, 35.0, 50.0];

/// The retrial limits of Figures 3–5.
pub const RETRIAL_GRID: [u32; 5] = [1, 2, 3, 4, 5];
