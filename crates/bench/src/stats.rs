//! Small summary statistics shared by the bench binaries.

/// Nearest-rank percentile of an already **sorted** slice: the smallest
/// element with at least `p · n` of the sample at or below it
/// (`rank = ⌈p·n⌉`, clamped to `[1, n]`).
///
/// An empty slice yields 0 — bench workloads with no latency samples
/// report a zero percentile rather than panicking.
///
/// This replaces an earlier `((n-1)·p).round()` variant, which both
/// panicked on empty input and rounded *up* across the midpoint (for
/// `n = 2`, `p = 0.5` it returned the maximum instead of the median's
/// lower nearest rank).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile wants p in [0, 1], got {p}"
    );
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_zero() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[], 0.99), 0);
    }

    #[test]
    fn nearest_rank_on_small_samples() {
        // The regression the old rounding variant got wrong: the median
        // of two samples is the lower nearest rank, not the maximum.
        assert_eq!(percentile(&[10, 20], 0.5), 10);
        assert_eq!(percentile(&[10, 20], 0.51), 20);
        let one = [7];
        assert_eq!(percentile(&one, 0.0), 7);
        assert_eq!(percentile(&one, 1.0), 7);
    }

    #[test]
    fn matches_the_nearest_rank_definition() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        // p = 0 clamps to the first element rather than indexing rank 0.
        assert_eq!(percentile(&sorted, 0.0), 1);
    }

    #[test]
    #[should_panic(expected = "p in [0, 1]")]
    fn rejects_out_of_range_p() {
        let _ = percentile(&[1, 2, 3], 1.5);
    }
}
