//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table, enough to print the paper's tables and
/// figure series without pulling in a formatting dependency.
///
/// ```rust
/// use anycast_bench::Table;
/// let mut t = Table::new(vec!["λ".into(), "AP".into()]);
/// t.row(vec!["5.0".into(), "1.000000".into()]);
/// let s = t.render();
/// assert!(s.contains("λ"));
/// assert!(s.contains("1.000000"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["wide-cell".into(), "x".into()]);
        t.row(vec!["y".into(), "z".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column two starts at the same offset in every data line.
        let off = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('x').unwrap(), off);
        assert_eq!(lines[3].find('z').unwrap(), off);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(vec![]);
    }
}
