//! Run-length settings shared by every experiment binary.

use anycast_sim::pool::default_jobs;

/// How long and how often to simulate — and on how many worker threads.
///
/// The *full* profile reproduces §5.1 run lengths (1800 s warm-up, 3600 s
/// measured, 3 independent replications); the *quick* profile shrinks that
/// by roughly an order of magnitude for smoke tests and CI. `jobs` only
/// changes wall-clock, never results: sweeps are bit-for-bit identical
/// for every worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSettings {
    /// Warm-up seconds discarded from statistics.
    pub warmup_secs: f64,
    /// Measured seconds.
    pub measure_secs: f64,
    /// Replication seeds (one run per seed; results averaged).
    pub seeds: [u64; 3],
    /// Number of seeds actually used (quick mode uses 1).
    pub replications: usize,
    /// Worker threads for sweeps (default: available parallelism).
    pub jobs: usize,
}

impl RunSettings {
    /// The paper-faithful profile.
    pub fn full() -> Self {
        RunSettings {
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            seeds: [101, 202, 303],
            replications: 3,
            jobs: default_jobs(),
        }
    }

    /// The shortened smoke-test profile.
    pub fn quick() -> Self {
        RunSettings {
            warmup_secs: 300.0,
            measure_secs: 600.0,
            seeds: [101, 202, 303],
            replications: 1,
            jobs: default_jobs(),
        }
    }

    /// The seeds in use.
    pub fn active_seeds(&self) -> &[u64] {
        &self.seeds[..self.replications]
    }
}

/// Parses the common CLI contract of the experiment binaries:
/// `--quick` (or env `ANYCAST_QUICK=1`) selects [`RunSettings::quick`],
/// and `--jobs N` sets the sweep worker count (default: available
/// parallelism; results are identical for every value).
///
/// Unknown arguments abort with a usage message so typos never silently
/// run a multi-minute sweep with default settings.
pub fn parse_args(binary: &str) -> RunSettings {
    let mut quick = std::env::var("ANYCAST_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--jobs" | "-j" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("{binary}: --jobs needs a value (try --help)");
                    std::process::exit(2);
                });
                jobs = parse_jobs(binary, &value);
            }
            "--help" | "-h" => {
                println!("usage: {binary} [--quick|--full] [--jobs N]");
                println!("  --quick   shortened runs (also via ANYCAST_QUICK=1)");
                println!("  --full    paper-faithful run lengths (default)");
                println!("  --jobs N  sweep worker threads (default: available cores;");
                println!("            results are bit-identical for every N)");
                std::process::exit(0);
            }
            other => {
                eprintln!("{binary}: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let mut settings = if quick {
        RunSettings::quick()
    } else {
        RunSettings::full()
    };
    settings.jobs = jobs;
    settings
}

/// Parses a `--jobs` value, aborting with a usage error on garbage or zero.
pub(crate) fn parse_jobs(binary: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{binary}: --jobs wants a positive integer, got `{value}`");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let full = RunSettings::full();
        let quick = RunSettings::quick();
        assert!(full.measure_secs > quick.measure_secs);
        assert!(full.replications > quick.replications);
        assert_eq!(full.active_seeds().len(), 3);
        assert_eq!(quick.active_seeds().len(), 1);
        assert_eq!(quick.active_seeds(), &[101]);
    }

    #[test]
    fn default_jobs_is_wired_in() {
        assert!(RunSettings::full().jobs >= 1);
        assert!(RunSettings::quick().jobs >= 1);
    }

    #[test]
    fn jobs_values_parse() {
        assert_eq!(parse_jobs("test", "4"), 4);
        assert_eq!(parse_jobs("test", "1"), 1);
    }
}
