//! Run-length settings shared by every experiment binary.

/// How long and how often to simulate.
///
/// The *full* profile reproduces §5.1 run lengths (1800 s warm-up, 3600 s
/// measured, 3 independent replications); the *quick* profile shrinks that
/// by roughly an order of magnitude for smoke tests and CI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSettings {
    /// Warm-up seconds discarded from statistics.
    pub warmup_secs: f64,
    /// Measured seconds.
    pub measure_secs: f64,
    /// Replication seeds (one run per seed; results averaged).
    pub seeds: [u64; 3],
    /// Number of seeds actually used (quick mode uses 1).
    pub replications: usize,
}

impl RunSettings {
    /// The paper-faithful profile.
    pub fn full() -> Self {
        RunSettings {
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            seeds: [101, 202, 303],
            replications: 3,
        }
    }

    /// The shortened smoke-test profile.
    pub fn quick() -> Self {
        RunSettings {
            warmup_secs: 300.0,
            measure_secs: 600.0,
            seeds: [101, 202, 303],
            replications: 1,
        }
    }

    /// The seeds in use.
    pub fn active_seeds(&self) -> &[u64] {
        &self.seeds[..self.replications]
    }
}

/// Parses the common CLI contract of the experiment binaries:
/// `--quick` (or env `ANYCAST_QUICK=1`) selects [`RunSettings::quick`].
///
/// Unknown arguments abort with a usage message so typos never silently
/// run a multi-minute sweep with default settings.
pub fn parse_args(binary: &str) -> RunSettings {
    let mut quick = std::env::var("ANYCAST_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--help" | "-h" => {
                println!("usage: {binary} [--quick|--full]");
                println!("  --quick  shortened runs (also via ANYCAST_QUICK=1)");
                println!("  --full   paper-faithful run lengths (default)");
                std::process::exit(0);
            }
            other => {
                eprintln!("{binary}: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if quick {
        RunSettings::quick()
    } else {
        RunSettings::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let full = RunSettings::full();
        let quick = RunSettings::quick();
        assert!(full.measure_secs > quick.measure_secs);
        assert!(full.replications > quick.replications);
        assert_eq!(full.active_seeds().len(), 3);
        assert_eq!(quick.active_seeds().len(), 1);
        assert_eq!(quick.active_seeds(), &[101]);
    }
}
