//! Parallel sweep execution with replication averaging.
//!
//! Sweeps fan the flattened `(configuration, seed)` job list across the
//! [`pool`](crate::parallel_map) worker threads. Every job is a pure
//! function of its `(config, seed)` pair, and results are reassembled in
//! input order, so a sweep's output is **bit-for-bit identical** for every
//! `jobs` value — parallelism changes only the wall-clock.

use anycast_dac::experiment::{run_experiment, run_experiment_traced, ExperimentConfig, Metrics};
use anycast_net::Topology;
use anycast_sim::pool::parallel_map;
use anycast_telemetry::{NullRecorder, RingRecorder, TelemetryMode, TimedEvent};

/// Metrics averaged over independent replications of one configuration.
#[derive(Debug, Clone)]
pub struct ReplicatedMetrics {
    /// The system label of the underlying runs.
    pub label: String,
    /// Arrival rate.
    pub lambda: f64,
    /// Mean admission probability across replications.
    pub admission_probability: f64,
    /// Standard error of the AP across replications (0 for one rep).
    pub ap_stderr: f64,
    /// Mean of the per-run mean tries (Figure 7 metric).
    pub mean_tries: f64,
    /// Mean of the per-run mean retrials.
    pub mean_retrials: f64,
    /// Mean signaling messages per request.
    pub messages_per_request: f64,
    /// Mean time-average network utilization across replications.
    pub mean_network_utilization: f64,
    /// The individual replication results.
    pub runs: Vec<Metrics>,
}

/// Sample mean and standard error of a slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean_and_stderr(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "need at least one value");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Runs `config` once per seed (serially) and averages the replications.
pub fn run_replicated(
    topo: &Topology,
    config: &ExperimentConfig,
    seeds: &[u64],
) -> ReplicatedMetrics {
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<Metrics> = seeds
        .iter()
        .map(|&s| run_experiment(topo, &config.clone().with_seed(s)))
        .collect();
    summarize(runs)
}

fn summarize(runs: Vec<Metrics>) -> ReplicatedMetrics {
    let aps: Vec<f64> = runs.iter().map(|m| m.admission_probability).collect();
    let (ap, ap_stderr) = mean_and_stderr(&aps);
    let tries: Vec<f64> = runs.iter().map(|m| m.mean_tries).collect();
    let retrials: Vec<f64> = runs.iter().map(|m| m.mean_retrials).collect();
    let msgs: Vec<f64> = runs.iter().map(|m| m.messages_per_request).collect();
    let utils: Vec<f64> = runs.iter().map(|m| m.mean_network_utilization).collect();
    ReplicatedMetrics {
        label: runs[0].label.clone(),
        lambda: runs[0].lambda,
        admission_probability: ap,
        ap_stderr,
        mean_tries: mean_and_stderr(&tries).0,
        mean_retrials: mean_and_stderr(&retrials).0,
        messages_per_request: mean_and_stderr(&msgs).0,
        mean_network_utilization: mean_and_stderr(&utils).0,
        runs,
    }
}

/// Runs a grid of configurations on `jobs` worker threads and returns
/// results in input order.
///
/// Each grid cell is replicated over `seeds` and averaged. Work is
/// distributed over the flattened `(config, seed)` job list by
/// atomic-cursor stealing, so heavily loaded cells (high λ) do not
/// serialise the sweep. Every job runs `run_experiment` — a pure function
/// of `(topo, config, seed)` — and results are reassembled in input order,
/// so the returned vector is bit-for-bit identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `seeds` is empty or `jobs == 0`.
pub fn run_grid(
    topo: &Topology,
    configs: &[ExperimentConfig],
    seeds: &[u64],
    jobs: usize,
) -> Vec<ReplicatedMetrics> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let cells: Vec<(usize, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let metrics = parallel_map(jobs, &cells, |_, &(cfg_idx, seed)| {
        run_experiment(topo, &configs[cfg_idx].clone().with_seed(seed))
    });
    metrics
        .chunks(seeds.len())
        .map(|runs| summarize(runs.to_vec()))
        .collect()
}

/// One `(config, seed)` grid cell's run result together with the
/// telemetry events it produced.
///
/// Cells are keyed by `config_index` (position in the `configs` slice
/// handed to [`run_grid_traced`]) and the replication `seed`, so consumers
/// can reassociate events with their scenario regardless of how the sweep
/// was scheduled across worker threads.
#[derive(Debug, Clone)]
pub struct TracedCell {
    /// Index into the `configs` slice this cell ran.
    pub config_index: usize,
    /// Substream seed of this replication.
    pub seed: u64,
    /// The run's end-of-run metrics.
    pub metrics: Metrics,
    /// The telemetry events the run emitted (empty for
    /// [`TelemetryMode::Off`] and [`TelemetryMode::Null`]).
    pub events: Vec<TimedEvent>,
}

/// [`run_grid`] with a telemetry recorder attached to every cell.
///
/// Returns the same replication-averaged summaries as [`run_grid`] plus
/// one [`TracedCell`] per `(config, seed)` pair, **in input order**
/// (config-major, then seed). Each cell owns its recorder, and every
/// event stream is a pure function of `(topo, config, seed)`, so both
/// return values are bit-for-bit identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `seeds` is empty or `jobs == 0`.
pub fn run_grid_traced(
    topo: &Topology,
    configs: &[ExperimentConfig],
    seeds: &[u64],
    jobs: usize,
    mode: TelemetryMode,
) -> (Vec<ReplicatedMetrics>, Vec<TracedCell>) {
    assert!(!seeds.is_empty(), "need at least one seed");
    let cells: Vec<(usize, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let traced: Vec<TracedCell> = parallel_map(jobs, &cells, |_, &(cfg_idx, seed)| {
        let config = configs[cfg_idx].clone().with_seed(seed);
        let (metrics, events) = match mode {
            TelemetryMode::Off => (run_experiment(topo, &config), Vec::new()),
            TelemetryMode::Null => {
                let mut rec = NullRecorder;
                (run_experiment_traced(topo, &config, &mut rec), Vec::new())
            }
            TelemetryMode::Ring {
                sample_interval_secs,
                capacity,
            } => {
                let mut rec = RingRecorder::with_capacity(seed, capacity);
                if let Some(secs) = sample_interval_secs {
                    rec = rec.with_sample_interval(secs);
                }
                let metrics = run_experiment_traced(topo, &config, &mut rec);
                (metrics, rec.events())
            }
        };
        TracedCell {
            config_index: cfg_idx,
            seed,
            metrics,
            events,
        }
    });
    let summaries = traced
        .chunks(seeds.len())
        .map(|cells| summarize(cells.iter().map(|c| c.metrics.clone()).collect()))
        .collect();
    (summaries, traced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_dac::experiment::SystemSpec;
    use anycast_dac::policy::PolicySpec;
    use anycast_net::topologies;

    fn tiny(lambda: f64) -> ExperimentConfig {
        ExperimentConfig::paper_defaults(lambda, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_warmup_secs(50.0)
            .with_measure_secs(100.0)
    }

    #[test]
    fn mean_stderr_hand_case() {
        let (m, se) = mean_and_stderr(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((se - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let (m1, se1) = mean_and_stderr(&[5.0]);
        assert_eq!((m1, se1), (5.0, 0.0));
    }

    #[test]
    fn replication_is_deterministic_and_ordered() {
        let topo = topologies::mci();
        let cfg = tiny(20.0);
        let a = run_replicated(&topo, &cfg, &[1, 2]);
        let b = run_replicated(&topo, &cfg, &[1, 2]);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.runs[0].seed, 1);
        assert_eq!(a.runs[1].seed, 2);
        assert!(a.ap_stderr >= 0.0);
    }

    #[test]
    fn grid_matches_sequential() {
        let topo = topologies::mci();
        let configs = vec![tiny(10.0), tiny(30.0)];
        let grid = run_grid(&topo, &configs, &[7, 8], 4);
        for (cfg, rep) in configs.iter().zip(&grid) {
            let seq = run_replicated(&topo, cfg, &[7, 8]);
            assert_eq!(rep.runs, seq.runs, "parallel and sequential runs agree");
        }
        assert_eq!(grid[0].lambda, 10.0);
        assert_eq!(grid[1].lambda, 30.0);
    }

    #[test]
    fn traced_grid_matches_plain_grid_in_every_mode() {
        let topo = topologies::mci();
        let configs = vec![tiny(15.0)];
        let plain = run_grid(&topo, &configs, &[5], 1);
        for mode in [
            TelemetryMode::Off,
            TelemetryMode::Null,
            TelemetryMode::ring(),
        ] {
            let (summary, cells) = run_grid_traced(&topo, &configs, &[5], 1, mode);
            assert_eq!(summary[0].runs, plain[0].runs, "mode {mode:?}");
            assert_eq!(cells.len(), 1);
            assert_eq!(cells[0].config_index, 0);
            assert_eq!(cells[0].seed, 5);
            assert_eq!(cells[0].metrics, plain[0].runs[0], "mode {mode:?}");
            match mode {
                TelemetryMode::Ring { .. } => assert!(!cells[0].events.is_empty()),
                _ => assert!(cells[0].events.is_empty()),
            }
        }
    }

    #[test]
    fn grid_is_identical_for_every_job_count() {
        let topo = topologies::mci();
        let configs = vec![tiny(10.0), tiny(25.0), tiny(40.0)];
        let serial = run_grid(&topo, &configs, &[3, 4], 1);
        for jobs in [2, 8] {
            let par = run_grid(&topo, &configs, &[3, 4], jobs);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.runs, b.runs, "jobs={jobs}");
            }
        }
    }
}
