//! Shared drivers behind the per-figure/table binaries.

use crate::json::{emit_results, JsonValue};
use crate::{
    parse_args, run_grid, ReplicatedMetrics, RunSettings, Table, LAMBDA_GRID, RETRIAL_GRID,
    TABLE_LAMBDAS,
};
use anycast_analysis::scenario::{build_paper_scenario, AnalyzedSystem};
use anycast_analysis::{predict_ap_batch, BlockingModel};
use anycast_chaos::FaultPlan;
use anycast_dac::experiment::{ExperimentConfig, SystemSpec};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, NodeId, Topology};

fn base_config(lambda: f64, system: SystemSpec, settings: &RunSettings) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(settings.warmup_secs)
        .with_measure_secs(settings.measure_secs)
}

/// Figures 3–5: sensitivity of AP to the retrial limit `R` for one
/// destination-selection algorithm. Prints one column per `R ∈ 1..=5`,
/// one row per arrival rate.
pub fn sensitivity_figure(title: &str, policy: PolicySpec, settings: &RunSettings) {
    let topo = topologies::mci();
    let mut configs = Vec::new();
    for &lambda in &LAMBDA_GRID {
        for &r in &RETRIAL_GRID {
            configs.push(base_config(lambda, SystemSpec::dac(policy, r), settings));
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!(
        "{title}: admission probability of <{},R> vs arrival rate",
        policy.name()
    );
    println!();
    let mut headers = vec!["lambda".to_string()];
    headers.extend(RETRIAL_GRID.iter().map(|r| format!("R={r}")));
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDA_GRID.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..RETRIAL_GRID.len() {
            let m = &results[i * RETRIAL_GRID.len() + j];
            row.push(format!("{:.4}", m.admission_probability));
        }
        table.row(row);
    }
    print!("{}", table.render());
}

/// The five systems of Figure 6 / Figure 7 with the paper's `R = 2`.
pub fn comparison_systems() -> Vec<SystemSpec> {
    vec![
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac(PolicySpec::WdDb, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ]
}

/// Runs the Figure 6/7 grid: all comparison systems over the λ grid.
pub fn run_comparison(topo: &Topology, settings: &RunSettings) -> Vec<Vec<ReplicatedMetrics>> {
    let systems = comparison_systems();
    let mut configs = Vec::new();
    for &lambda in &LAMBDA_GRID {
        for &system in &systems {
            configs.push(base_config(lambda, system, settings));
        }
    }
    let flat = run_grid(topo, &configs, settings.active_seeds(), settings.jobs);
    flat.chunks(systems.len()).map(|c| c.to_vec()).collect()
}

/// Figure 6: AP of `<ED,2>`, `<WD/D+H,2>`, `<WD/D+B,2>` vs the SP and GDI
/// baselines.
pub fn comparison_figure(settings: &RunSettings) {
    let topo = topologies::mci();
    let rows = run_comparison(&topo, settings);
    println!("Figure 6: admission probability of DAC systems vs baselines");
    println!();
    let mut headers = vec!["lambda".to_string()];
    headers.extend(comparison_systems().iter().map(|s| s.label()));
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDA_GRID.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for m in &rows[i] {
            row.push(format!("{:.4}", m.admission_probability));
        }
        table.row(row);
    }
    print!("{}", table.render());
    let series = comparison_systems()
        .iter()
        .enumerate()
        .map(|(j, s)| {
            JsonValue::obj([
                ("label", JsonValue::Str(s.label())),
                (
                    "admission_probability",
                    JsonValue::nums(rows.iter().map(|r| r[j].admission_probability)),
                ),
                (
                    "ap_stderr",
                    JsonValue::nums(rows.iter().map(|r| r[j].ap_stderr)),
                ),
            ])
        })
        .collect();
    emit_results(
        "fig6_ap_comparison",
        &JsonValue::obj([
            ("figure", JsonValue::Str("fig6_ap_comparison".into())),
            ("lambda", JsonValue::nums(LAMBDA_GRID)),
            ("series", JsonValue::Arr(series)),
        ]),
    );
}

/// Figure 7: average number of destinations tried per request for the
/// three DAC systems (R = 2), plus the signaling messages that cost.
pub fn retrials_figure(settings: &RunSettings) {
    let topo = topologies::mci();
    let systems = [
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac(PolicySpec::WdDb, 2),
    ];
    let mut configs = Vec::new();
    for &lambda in &LAMBDA_GRID {
        for &system in &systems {
            configs.push(base_config(lambda, system, settings));
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Figure 7: average number of tries per request (R = 2)");
    println!();
    let mut headers = vec!["lambda".to_string()];
    for s in &systems {
        headers.push(format!("{} tries", s.label()));
        headers.push(format!("{} msg/req", s.label()));
    }
    let mut table = Table::new(headers);
    for (i, &lambda) in LAMBDA_GRID.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..systems.len() {
            let m = &results[i * systems.len() + j];
            row.push(format!("{:.4}", m.mean_tries));
            row.push(format!("{:.2}", m.messages_per_request));
        }
        table.row(row);
    }
    print!("{}", table.render());
    let series = systems
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let column = |f: fn(&ReplicatedMetrics) -> f64| {
                JsonValue::nums((0..LAMBDA_GRID.len()).map(|i| f(&results[i * systems.len() + j])))
            };
            JsonValue::obj([
                ("label", JsonValue::Str(s.label())),
                ("mean_tries", column(|m| m.mean_tries)),
                ("messages_per_request", column(|m| m.messages_per_request)),
            ])
        })
        .collect();
    emit_results(
        "fig7_avg_retrials",
        &JsonValue::obj([
            ("figure", JsonValue::Str("fig7_avg_retrials".into())),
            ("lambda", JsonValue::nums(LAMBDA_GRID)),
            ("series", JsonValue::Arr(series)),
        ]),
    );
}

/// Tables 1 and 2: analytical admission probability (Appendix A) against
/// simulation, for `<ED,1>` or `SP` at λ ∈ {5, 20, 35, 50}.
pub fn analysis_table(title: &str, system: AnalyzedSystem, settings: &RunSettings) {
    let topo = topologies::mci();
    let sim_system = match system {
        AnalyzedSystem::Ed1 => SystemSpec::dac(PolicySpec::Ed, 1),
        AnalyzedSystem::Sp => SystemSpec::ShortestPath,
    };
    let configs: Vec<ExperimentConfig> = TABLE_LAMBDAS
        .iter()
        .map(|&l| base_config(l, sim_system, settings))
        .collect();
    let sims = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("{title}");
    println!();
    let mut headers = vec!["Method".to_string()];
    headers.extend(TABLE_LAMBDAS.iter().map(|l| format!("lambda={l:.1}")));
    let mut table = Table::new(headers);
    let models = [
        ("Mathematical Analysis (Erlang-B)", BlockingModel::ErlangB),
        ("Mathematical Analysis (UAA)", BlockingModel::Uaa),
    ];
    // All model × λ fixed points are independent: fan them through the
    // same worker pool as the simulation grid, in row-major order.
    let mut cases = Vec::with_capacity(models.len() * TABLE_LAMBDAS.len());
    for &(_, model) in &models {
        for &lambda in &TABLE_LAMBDAS {
            cases.push((build_paper_scenario(&topo, lambda, system), model));
        }
    }
    let predictions = predict_ap_batch(settings.jobs, &cases);
    for (row_idx, (name, _)) in models.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for p in &predictions[row_idx * TABLE_LAMBDAS.len()..(row_idx + 1) * TABLE_LAMBDAS.len()] {
            row.push(format!("{:.6}", p.admission_probability));
        }
        table.row(row);
    }
    let mut row = vec!["Computer Simulation".to_string()];
    for m in &sims {
        row.push(format!("{:.6}", m.admission_probability));
    }
    table.row(row);
    print!("{}", table.render());
}

/// Shared Figure-6-style comparison on an arbitrary topology (used by the
/// topology ablation).
pub fn comparison_on(
    name: &str,
    topo: &Topology,
    members: Vec<NodeId>,
    sources: Vec<NodeId>,
    lambdas: &[f64],
    settings: &RunSettings,
) {
    let systems = comparison_systems();
    let mut configs = Vec::new();
    for &lambda in lambdas {
        for &system in &systems {
            configs.push(
                base_config(lambda, system, settings)
                    .with_group(members.clone())
                    .with_sources(sources.clone()),
            );
        }
    }
    let results = run_grid(topo, &configs, settings.active_seeds(), settings.jobs);
    println!("{name}: admission probability");
    let mut headers = vec!["lambda".to_string()];
    headers.extend(systems.iter().map(|s| s.label()));
    let mut table = Table::new(headers);
    for (i, &lambda) in lambdas.iter().enumerate() {
        let mut row = vec![format!("{lambda:.1}")];
        for j in 0..systems.len() {
            row.push(format!(
                "{:.4}",
                results[i * systems.len() + j].admission_probability
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!();
}

/// The link-MTBF grid of the fault ablation (seconds; `INFINITY` = no
/// faults). MTTR is fixed at [`ABLATION_MTTR_SECS`].
pub const ABLATION_MTBF_GRID: [f64; 5] = [f64::INFINITY, 2_000.0, 1_000.0, 500.0, 250.0];

/// Mean time to repair used throughout the fault ablation (seconds).
pub const ABLATION_MTTR_SECS: f64 = 60.0;

fn mean_availability(rep: &ReplicatedMetrics) -> f64 {
    rep.runs.iter().map(|m| m.availability).sum::<f64>() / rep.runs.len() as f64
}

/// Fault ablation: AP of `<ED,2>` and `<WD/D+H,2>` vs the SP and GDI
/// baselines as the link failure rate rises (fixed 60 s mean repair).
///
/// The fault timeline is a function of the seed and the plan only, so for
/// a given MTBF every system sees the identical outage schedule and the
/// availability column applies to the whole row.
pub fn faults_ablation(settings: &RunSettings) {
    let topo = topologies::mci();
    let systems = [
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
    ];
    const LAMBDA: f64 = 30.0;
    let mut configs = Vec::new();
    for &mtbf in &ABLATION_MTBF_GRID {
        for &system in &systems {
            let mut cfg = base_config(LAMBDA, system, settings);
            if mtbf.is_finite() {
                cfg = cfg.with_faults(FaultPlan::none().with_link_model(mtbf, ABLATION_MTTR_SECS));
            }
            configs.push(cfg);
        }
    }
    let results = run_grid(&topo, &configs, settings.active_seeds(), settings.jobs);
    println!("Fault ablation: admission probability vs link failure rate (lambda = {LAMBDA:.0})");
    println!();
    let mut headers = vec!["link MTBF".to_string(), "avail".to_string()];
    headers.extend(systems.iter().map(|s| s.label()));
    let mut table = Table::new(headers);
    for (i, &mtbf) in ABLATION_MTBF_GRID.iter().enumerate() {
        let row_results = &results[i * systems.len()..(i + 1) * systems.len()];
        let mut row = vec![
            if mtbf.is_finite() {
                format!("{mtbf:.0}s")
            } else {
                "none".to_string()
            },
            format!("{:.4}", mean_availability(&row_results[0])),
        ];
        for m in row_results {
            row.push(format!("{:.4}", m.admission_probability));
        }
        table.row(row);
    }
    print!("{}", table.render());
    let series = systems
        .iter()
        .enumerate()
        .map(|(j, s)| {
            JsonValue::obj([
                ("label", JsonValue::Str(s.label())),
                (
                    "admission_probability",
                    JsonValue::nums(
                        (0..ABLATION_MTBF_GRID.len())
                            .map(|i| results[i * systems.len() + j].admission_probability),
                    ),
                ),
            ])
        })
        .collect();
    emit_results(
        "ablation_faults",
        &JsonValue::obj([
            ("figure", JsonValue::Str("ablation_faults".into())),
            ("lambda", JsonValue::Num(LAMBDA)),
            ("mttr_secs", JsonValue::Num(ABLATION_MTTR_SECS)),
            ("link_mtbf_secs", JsonValue::nums(ABLATION_MTBF_GRID)),
            (
                "availability",
                JsonValue::nums(
                    (0..ABLATION_MTBF_GRID.len())
                        .map(|i| mean_availability(&results[i * systems.len()])),
                ),
            ),
            ("series", JsonValue::Arr(series)),
        ]),
    );
}

/// Entry point shared by the thin figure binaries.
pub fn main_sensitivity(binary: &str, title: &str, policy: PolicySpec) {
    let settings = parse_args(binary);
    sensitivity_figure(title, policy, &settings);
}
