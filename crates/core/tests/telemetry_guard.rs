//! Zero-overhead guard: attaching telemetry must never change what the
//! simulation computes.
//!
//! Three runs of the same `(topology, config)` — the plain
//! `run_experiment` hot path, the hooked path with a disabled
//! `NullRecorder`, and the hooked path with a full `RingRecorder` plus the
//! link sampler — must produce **bit-identical** `Metrics`. The recorder
//! only observes; it consumes no randomness and schedules nothing that
//! mutates state.

use anycast_dac::experiment::{
    run_experiment, run_experiment_traced, ExperimentConfig, SystemSpec,
};
use anycast_dac::policy::PolicySpec;
use anycast_net::topologies;
use anycast_telemetry::{Event, NullRecorder, RingRecorder, SkipReason};

fn saturated(system: SystemSpec) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(50.0, system)
        .with_warmup_secs(30.0)
        .with_measure_secs(120.0)
}

/// The tentpole guarantee, across every admission system: plain, null and
/// ring runs are bit-identical.
#[test]
fn telemetry_never_perturbs_metrics() {
    let topo = topologies::mci();
    for system in [
        SystemSpec::dac(PolicySpec::Ed, 2),
        SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        SystemSpec::dac(PolicySpec::WdDb, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ] {
        let config = saturated(system);
        let plain = run_experiment(&topo, &config);
        let mut null = NullRecorder;
        let with_null = run_experiment_traced(&topo, &config, &mut null);
        let mut ring = RingRecorder::new(config.seed).with_sample_interval(25.0);
        let with_ring = run_experiment_traced(&topo, &config, &mut ring);
        assert_eq!(
            plain, with_null,
            "{}: NullRecorder changed the run",
            plain.label
        );
        assert_eq!(
            plain, with_ring,
            "{}: RingRecorder changed the run",
            plain.label
        );
        assert!(!ring.is_empty(), "{}: ring captured nothing", plain.label);
    }
}

/// The ring stream itself is a pure function of `(topo, config)`.
#[test]
fn ring_event_stream_is_deterministic() {
    let topo = topologies::mci();
    let config = saturated(SystemSpec::dac(PolicySpec::Ed, 2));
    let mut a = RingRecorder::new(config.seed).with_sample_interval(50.0);
    let mut b = RingRecorder::new(config.seed).with_sample_interval(50.0);
    run_experiment_traced(&topo, &config, &mut a);
    run_experiment_traced(&topo, &config, &mut b);
    assert_eq!(a.events(), b.events());
    assert_eq!(a.dropped(), b.dropped());
}

/// Every rejection's decision trace is complete: one skipped step per
/// probe, each carrying the weight it was drawn at and a concrete skip
/// reason, plus the full first-draw weight vector over the group.
#[test]
fn rejection_traces_enumerate_every_probe() {
    let topo = topologies::mci();
    let config = saturated(SystemSpec::dac(PolicySpec::wd_dh_default(), 2));
    let group_size = config.group_members.len();
    let mut ring = RingRecorder::new(config.seed);
    run_experiment_traced(&topo, &config, &mut ring);
    let mut rejections = 0;
    for timed in ring.events() {
        let Event::Rejection {
            request: _,
            tries,
            trace,
        } = timed.event
        else {
            continue;
        };
        rejections += 1;
        assert_eq!(
            trace.steps.len(),
            tries as usize,
            "a rejected request must record one skipped step per probe"
        );
        assert_eq!(trace.weights.len(), group_size);
        let sum: f64 = trace.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must be a distribution");
        for step in &trace.steps {
            assert!(step.member_index < group_size);
            assert!(step.weight > 0.0, "a probed member had positive weight");
            match step.skip {
                SkipReason::LinkBlocked { link, .. } => {
                    assert!(topo.link(link).is_ok(), "blocked link must exist");
                }
                other => panic!("DAC probes only skip on blocked links, got {other:?}"),
            }
        }
    }
    assert!(rejections > 0, "a saturated run must reject something");
}

/// The event stream is consistent with the run's own books: counts of
/// setups and rejections match admitted/rejected totals, and arrivals
/// match offered + warmup arrivals.
#[test]
fn event_counts_match_metrics() {
    let topo = topologies::mci();
    let config = saturated(SystemSpec::dac(PolicySpec::Ed, 2));
    let mut ring = RingRecorder::new(config.seed);
    let metrics = run_experiment_traced(&topo, &config, &mut ring);
    assert_eq!(ring.dropped(), 0, "default capacity must hold a short run");
    let mut arrivals = 0u64;
    let mut setups = 0u64;
    let mut rejections = 0u64;
    for timed in ring.events() {
        match timed.event {
            Event::RequestArrival { .. } => arrivals += 1,
            Event::ReservationSetup { .. } => setups += 1,
            Event::Rejection { .. } => rejections += 1,
            _ => {}
        }
    }
    // The recorder sees warmup too; metrics only count the measured phase.
    assert!(arrivals >= metrics.offered);
    assert!(setups >= metrics.admitted);
    assert_eq!(
        setups + rejections,
        arrivals,
        "every arrival ends in exactly one setup or rejection"
    );
}
