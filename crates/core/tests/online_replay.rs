//! Replay determinism: feeding a recorded arrival trace through the
//! externally-fed [`OnlineEngine`] in virtual time must be bit-identical
//! to the self-driving offline engine — same [`Metrics`], same telemetry
//! event stream, same per-request decisions — for every system, batching
//! mode, signalling mode and fault plan, and for any worker count.

use anycast_chaos::FaultPlan;
use anycast_dac::experiment::{
    run_experiment_traced, ArrivalProcess, DemandClass, ExperimentConfig, GroupSpec, SignalingMode,
    SystemSpec, TwoPhaseConfig,
};
use anycast_dac::online::{record_arrivals, OnlineEngine};
use anycast_dac::policy::PolicySpec;
use anycast_net::{topologies, Bandwidth, NodeId};
use anycast_sim::pool::parallel_map;
use anycast_telemetry::{NullRecorder, RingRecorder};

fn quick(lambda: f64, system: SystemSpec) -> ExperimentConfig {
    ExperimentConfig::paper_defaults(lambda, system)
        .with_warmup_secs(300.0)
        .with_measure_secs(600.0)
        .with_seed(17)
}

/// Runs `config` offline and as a virtual-time trace replay, with ring
/// recorders on both sides, and asserts the runs are indistinguishable.
fn assert_replay_identical(config: &ExperimentConfig) {
    let topo = topologies::mci();
    let mut offline_rec = RingRecorder::with_capacity(config.seed, 1 << 20);
    let offline = run_experiment_traced(&topo, config, &mut offline_rec);

    let trace = record_arrivals(config);
    assert!(!trace.is_empty(), "trace must cover the run");
    let replay_rec = RingRecorder::with_capacity(config.seed, 1 << 20);
    let (replayed, decisions, replay_rec) = OnlineEngine::replay(&topo, config, &trace, replay_rec);

    assert_eq!(offline, replayed, "metrics diverged ({})", offline.label);
    let (_, offline_events, offline_dropped) = offline_rec.into_parts();
    let (_, replay_events, replay_dropped) = replay_rec.into_parts();
    assert_eq!(offline_dropped, 0, "ring too small for the offline run");
    assert_eq!(replay_dropped, 0, "ring too small for the replay");
    assert_eq!(
        offline_events, replay_events,
        "telemetry stream diverged ({})",
        offline.label
    );

    // Decisions are finalised in simulated-time order and never decide
    // the same request twice. (Under asynchronous two-phase signalling
    // they may resolve out of *arrival* order — setups race.)
    assert!(decisions.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
    let mut ids: Vec<u64> = decisions.iter().map(|d| d.request).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        decisions.len(),
        "duplicate decision for a request"
    );
}

#[test]
fn replay_matches_offline_batched_dac() {
    assert_replay_identical(&quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_batching(true));
}

#[test]
fn replay_matches_offline_sequential_dac() {
    assert_replay_identical(&quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_batching(false));
}

#[test]
fn replay_matches_offline_every_system() {
    for system in [
        SystemSpec::dac(PolicySpec::wd_dh_default(), 3),
        SystemSpec::dac(PolicySpec::WdDb, 2),
        SystemSpec::dac_multipath(PolicySpec::WdDb, 2, 2),
        SystemSpec::ShortestPath,
        SystemSpec::GlobalDynamic,
    ] {
        assert_replay_identical(&quick(25.0, system).with_batching(true));
    }
}

#[test]
fn replay_matches_offline_two_phase_express() {
    // Zero per-hop delay with inert signaling faults degenerates to the
    // atomic exchange; batching stays active on this path.
    assert_replay_identical(
        &quick(20.0, SystemSpec::dac(PolicySpec::WdDb, 2))
            .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig::default()))
            .with_batching(true),
    );
}

#[test]
fn replay_matches_offline_two_phase_async() {
    // Real per-hop latency: admission is event-driven and asynchronous,
    // decisions resolve after their arrival instant, batching is
    // auto-disabled. Replay must still be bit-identical.
    assert_replay_identical(
        &quick(15.0, SystemSpec::dac(PolicySpec::WdDb, 2))
            .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig {
                per_hop_delay_secs: 0.002,
                setup_timeout_secs: 1.0,
                ..TwoPhaseConfig::default()
            }))
            .with_batching(true),
    );
}

#[test]
fn replay_matches_offline_under_chaos() {
    // The kitchen sink: bursty arrivals, a demand mix, two groups, link
    // faults, control-plane teardown loss — every auxiliary RNG stream in
    // play at once.
    let config = quick(18.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2))
        .with_arrivals(ArrivalProcess::Bursty {
            burstiness: 1.6,
            mean_sojourn_secs: 40.0,
        })
        .with_demand_mix(vec![
            DemandClass {
                bandwidth: Bandwidth::from_kbps(64),
                weight: 3.0,
            },
            DemandClass {
                bandwidth: Bandwidth::from_kbps(256),
                weight: 1.0,
            },
        ])
        .with_groups(vec![
            GroupSpec {
                members: vec![NodeId::new(2), NodeId::new(10), NodeId::new(14)],
                share: 2.0,
            },
            GroupSpec {
                members: vec![NodeId::new(5), NodeId::new(12)],
                share: 1.0,
            },
        ])
        .with_faults({
            let mut plan = FaultPlan::none().with_link_model(900.0, 60.0);
            plan.control.teardown_loss_probability = 0.05;
            plan.control.teardown_delay_secs = 2.0;
            plan
        })
        .with_batching(true);
    assert_replay_identical(&config);
}

#[test]
fn recorded_trace_is_deterministic_and_ordered() {
    let config = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2));
    let a = record_arrivals(&config);
    let b = record_arrivals(&config);
    assert_eq!(a, b, "recording must be a pure function of the config");
    assert!(a.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
    let horizon = config.warmup_secs + config.measure_secs;
    assert!(a.iter().all(|x| x.at_secs <= horizon));
    // ~λ·horizon arrivals: the trace covers the whole run, not a prefix.
    assert!(a.len() as f64 > 0.8 * config.lambda * horizon);
}

#[test]
fn every_sync_arrival_gets_exactly_one_decision() {
    let topo = topologies::mci();
    let config = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_batching(true);
    let trace = record_arrivals(&config);
    let (metrics, decisions, _) = OnlineEngine::replay(&topo, &config, &trace, NullRecorder);
    assert_eq!(
        decisions.len(),
        trace.len(),
        "synchronous admission decides every submitted arrival"
    );
    // The measured-period counters are a subset of the decision log
    // (warm-up decisions are made but not measured).
    let admitted = decisions.iter().filter(|d| d.admitted).count() as u64;
    assert!(metrics.admitted <= admitted);
    for d in &decisions {
        if d.admitted {
            assert!(d.member_index.is_some() && d.session.is_some());
        } else {
            assert!(d.member_index.is_none() && d.session.is_none());
        }
    }
}

#[test]
fn incremental_pumping_equals_one_shot_replay() {
    // Submitting arrival-by-arrival with a pump after each (as the live
    // daemon does) must equal submitting everything then finishing.
    let topo = topologies::mci();
    let config = quick(20.0, SystemSpec::dac(PolicySpec::WdDb, 2)).with_batching(true);
    let trace = record_arrivals(&config);

    let (one_shot, one_decisions, _) = OnlineEngine::replay(&topo, &config, &trace, NullRecorder);

    let mut eng = OnlineEngine::new(&topo, &config, NullRecorder);
    let mut incremental = Vec::new();
    for a in &trace {
        eng.submit(*a);
        incremental.extend(eng.pump());
    }
    let (stepped, tail, _) = eng.finish();
    incremental.extend(tail);

    assert_eq!(one_shot, stepped, "pacing must not change the outcome");
    assert_eq!(one_decisions, incremental);
}

#[test]
fn replay_is_identical_for_any_worker_count() {
    // The daemon's bench fans replays across a worker pool; the pool
    // contract (bit-identical output for any job count) must carry over.
    let topo = topologies::mci();
    let seeds: Vec<u64> = (0..4).collect();
    let run_all = |jobs: usize| {
        parallel_map(jobs, &seeds, |_, &seed| {
            let config = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2))
                .with_seed(seed)
                .with_batching(true);
            let trace = record_arrivals(&config);
            let (metrics, decisions, _) =
                OnlineEngine::replay(&topo, &config, &trace, NullRecorder);
            (metrics, decisions)
        })
    };
    let sequential = run_all(1);
    for jobs in [2, 4] {
        assert_eq!(sequential, run_all(jobs), "jobs={jobs} diverged");
    }
}
