//! Property-based tests for the admission-control invariants.

use anycast_dac::policy::{Ed, HistoryMode, SelectionContext, WdDb, WdDh, WeightAssigner};
use anycast_dac::qos::{guaranteed_delay, required_bandwidth, FlowSpec};
use anycast_dac::{
    bandwidth_distance_weights, distance_weights, history_adjusted_weights, normalize_weights,
    uniform_weights, AdmissionController, HistoryTable, RetrialPolicy,
};
use anycast_net::routing::RouteTable;
use anycast_net::{topologies, AnycastGroup, Bandwidth, LinkId, LinkStateTable, NodeId};
use anycast_rsvp::ReservationEngine;
use anycast_sim::SimRng;
use proptest::prelude::*;

fn assert_distribution(w: &[f64]) -> Result<(), TestCaseError> {
    prop_assert!(!w.is_empty());
    let sum: f64 = w.iter().sum();
    prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}: {w:?}");
    for &x in w {
        prop_assert!(x.is_finite() && x >= 0.0, "bad weight {x} in {w:?}");
    }
    Ok(())
}

proptest! {
    /// Every weight formula yields a probability distribution (eq. 1),
    /// for arbitrary distances, histories and bandwidths.
    #[test]
    fn all_weight_formulas_are_distributions(
        entries in prop::collection::vec((0u32..50, 0u32..20, 0.0f64..1e9), 1..12),
        alpha in 0.0f64..=1.0,
    ) {
        let distances: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let history: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let bandwidth: Vec<f64> = entries.iter().map(|e| e.2).collect();
        assert_distribution(&uniform_weights(distances.len()))?;
        let base = distance_weights(&distances);
        assert_distribution(&base)?;
        assert_distribution(&history_adjusted_weights(&base, &history, alpha))?;
        assert_distribution(&bandwidth_distance_weights(&bandwidth, &distances))?;
    }

    /// Normalisation is idempotent and scale-invariant.
    #[test]
    fn normalize_idempotent_and_scale_invariant(
        raw in prop::collection::vec(0.0f64..1e6, 1..10),
        scale in 0.001f64..1e3,
    ) {
        let mut a = raw.clone();
        normalize_weights(&mut a);
        let mut b: Vec<f64> = raw.iter().map(|x| x * scale).collect();
        normalize_weights(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
        let mut again = a.clone();
        normalize_weights(&mut again);
        for (x, y) in a.iter().zip(&again) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// A member with strictly more failures never gets a larger
    /// history-adjusted weight than an otherwise identical member.
    #[test]
    fn more_failures_never_increase_weight(
        k in 2usize..8,
        h_low in 0u32..5,
        extra in 1u32..5,
        alpha in 0.01f64..0.99,
    ) {
        let base = uniform_weights(k);
        let mut history = vec![0u32; k];
        history[0] = h_low;
        history[1] = h_low + extra;
        let w = history_adjusted_weights(&base, &history, alpha);
        prop_assert!(
            w[1] <= w[0] + 1e-12,
            "h={history:?} α={alpha}: w={w:?}"
        );
    }

    /// WD/D+B weights are monotone in route bandwidth: raising one
    /// route's bandwidth never lowers its weight.
    #[test]
    fn wddb_monotone_in_bandwidth(
        k in 2usize..8,
        bw in prop::collection::vec(0.0f64..1e8, 8),
        boost in 1.0f64..1e6,
    ) {
        let distances: Vec<u32> = (1..=k as u32).collect();
        let bw = &bw[..k];
        let before = bandwidth_distance_weights(bw, &distances);
        let mut boosted = bw.to_vec();
        boosted[0] += boost;
        let after = bandwidth_distance_weights(&boosted, &distances);
        // Degenerate all-zero case falls back to distance weights, where
        // the comparison still holds (first member gains mass).
        prop_assert!(after[0] >= before[0] - 1e-12);
    }

    /// The history table is a fold of its event stream: success zeroes,
    /// failure increments.
    #[test]
    fn history_is_fold_of_events(
        k in 1usize..8,
        events in prop::collection::vec((any::<bool>(), 0usize..8), 0..100),
    ) {
        let mut table = HistoryTable::new(k);
        let mut model = vec![0u32; k];
        for (success, who) in events {
            let m = who % k;
            if success {
                table.record_success(m);
                model[m] = 0;
            } else {
                table.record_failure(m);
                model[m] += 1;
            }
            prop_assert_eq!(table.entries(), model.as_slice());
            prop_assert_eq!(
                table.clean_count(),
                model.iter().filter(|&&h| h == 0).count()
            );
        }
    }

    /// The controller never exceeds its retry budget, never exceeds the
    /// group size, and leaves the ledger balanced when every admitted flow
    /// is torn down.
    #[test]
    fn controller_respects_budgets(
        r in 1u32..8,
        seed in any::<u64>(),
        saturate in prop::collection::vec(any::<u32>(), 0..6),
        policy_pick in 0u8..3,
    ) {
        let topo = topologies::mci();
        let group =
            AnycastGroup::new("G", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
        let routes = RouteTable::shortest_paths(&topo, &group);
        let mut links =
            LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
        for raw in saturate {
            let l = LinkId::new(raw % topo.link_count() as u32);
            let avail = links.available(l);
            if !avail.is_zero() {
                links.reserve(l, avail).unwrap();
            }
        }
        let baseline_reserved = links.total_reserved();
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(seed);
        let source = NodeId::new(9);
        let policy: Box<dyn WeightAssigner> = match policy_pick {
            0 => Box::new(Ed),
            1 => Box::new(WdDh::new(0.5, HistoryMode::FromBase).unwrap()),
            _ => Box::new(WdDb),
        };
        let mut controller = AdmissionController::new(
            policy,
            RetrialPolicy::FixedLimit(r),
            routes.distances(source).expect("source is in the topology"),
        );
        let mut sessions = Vec::new();
        for _ in 0..30 {
            let out = controller.admit(
                routes.routes_from(source).expect("source is in the topology"),
                &mut links,
                &mut rsvp,
                Bandwidth::from_kbps(64),
                &mut rng,
            );
            prop_assert!(out.tries >= 1);
            prop_assert!(out.tries <= r);
            prop_assert!(out.tries as usize <= group.len());
            if let Some(flow) = out.admitted {
                prop_assert!(flow.member_index < group.len());
                sessions.push(flow.session);
            }
        }
        for s in sessions {
            rsvp.teardown(&mut links, s).unwrap();
        }
        prop_assert_eq!(links.total_reserved(), baseline_reserved);
    }

    /// The delay→bandwidth mapping is safe (the granted rate meets the
    /// bound) and tight (halving the rate would violate it), wherever it
    /// declares feasibility.
    #[test]
    fn qos_mapping_safe_and_tight(
        burst in 100u64..100_000,
        packet in 64u64..9_000,
        sustained_kbps in 1u64..1_000,
        delay_ms in 1.0f64..2_000.0,
        hops in 0usize..10,
    ) {
        let spec = FlowSpec {
            burst_bytes: burst,
            max_packet_bytes: packet,
            sustained_rate: Bandwidth::from_kbps(sustained_kbps),
        };
        let cap = Bandwidth::from_mbps(100);
        let bound = delay_ms / 1_000.0;
        match required_bandwidth(&spec, bound, hops, cap, 1_500) {
            Ok(rate) => {
                prop_assert!(rate >= spec.sustained_rate);
                let achieved = guaranteed_delay(&spec, rate, hops, cap, 1_500);
                prop_assert!(
                    achieved <= bound + 1e-9,
                    "achieved {achieved} vs bound {bound}"
                );
                // Tightness only applies when the rate-dependent term
                // binds (above the sustained-rate floor) on a real route.
                if hops > 0 && rate > spec.sustained_rate {
                    let halved = Bandwidth::from_bps(rate.bps() / 2);
                    if !halved.is_zero() {
                        let worse = guaranteed_delay(&spec, halved, hops, cap, 1_500);
                        prop_assert!(worse > bound);
                    }
                }
            }
            Err(_) => {
                // Infeasible must mean the fixed per-hop latency alone
                // exceeds the bound: no rate, however large, can help.
                let floor =
                    guaranteed_delay(&spec, Bandwidth::from_bps(u64::MAX / 2), hops, cap, 1_500);
                prop_assert!(floor >= bound - 1e-9);
            }
        }
    }

    /// Tighter delay bounds never need less bandwidth.
    #[test]
    fn qos_mapping_monotone_in_bound(
        hops in 1usize..8,
        loose_ms in 2.0f64..2_000.0,
        frac in 0.1f64..0.9,
    ) {
        let spec = FlowSpec::voice_like();
        let cap = Bandwidth::from_mbps(100);
        let loose = loose_ms / 1_000.0;
        let tight = loose * frac;
        let loose_bw = required_bandwidth(&spec, loose, hops, cap, 1_500);
        let tight_bw = required_bandwidth(&spec, tight, hops, cap, 1_500);
        match (loose_bw, tight_bw) {
            (Ok(l), Ok(t)) => prop_assert!(t >= l),
            (Ok(_), Err(_)) => {} // tight became infeasible: consistent
            (Err(_), Ok(_)) => {
                prop_assert!(false, "loose infeasible but tight feasible");
            }
            (Err(_), Err(_)) => {}
        }
    }

    /// Policies are deterministic functions of (context, internal state):
    /// two fresh instances fed identical contexts give identical weights.
    #[test]
    fn policies_are_deterministic(
        entries in prop::collection::vec((1u32..20, 0u32..10, 1.0f64..1e8), 2..8),
        alpha in 0.0f64..=1.0,
    ) {
        let distances: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let history: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let bandwidth: Vec<f64> = entries.iter().map(|e| e.2).collect();
        let ctx = SelectionContext {
            distances: &distances,
            history: &history,
            route_bandwidth_bps: &bandwidth,
        };
        prop_assert_eq!(Ed.assign(&ctx), Ed.assign(&ctx));
        let mut a = WdDh::new(alpha, HistoryMode::Iterative).unwrap();
        let mut b = WdDh::new(alpha, HistoryMode::Iterative).unwrap();
        for _ in 0..3 {
            prop_assert_eq!(a.assign(&ctx), b.assign(&ctx));
        }
        prop_assert_eq!(WdDb.assign(&ctx), WdDb.assign(&ctx));
    }
}
