//! The local admission history of eqs. (5)–(7).

use serde::{Deserialize, Serialize};

/// Per-AC-router admission history `H = <h₁, …, h_K>` (eq. 5).
///
/// `h_i` counts the *consecutive* failures in the most recent selections of
/// member `i`: it resets to zero whenever a reservation toward `i` succeeds
/// (eq. 7). This log is "readily available at the AC-router. Its collection
/// does not cost much at all" (§4.3.2) — it is the cheap dynamic signal
/// behind the WD/D+H algorithm.
///
/// ```rust
/// use anycast_dac::HistoryTable;
/// let mut h = HistoryTable::new(3);
/// h.record_failure(1);
/// h.record_failure(1);
/// assert_eq!(h.entries(), &[0, 2, 0]);
/// h.record_success(1);
/// assert_eq!(h.entries(), &[0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryTable {
    entries: Vec<u32>,
}

impl HistoryTable {
    /// Creates an all-zero history for a group of `k` members (eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "history needs at least one member");
        HistoryTable {
            entries: vec![0; k],
        }
    }

    /// Group size `K`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: constructed non-empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw `h_i` values in member order.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// `h_i` for one member.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn failures(&self, member: usize) -> u32 {
        self.entries[member]
    }

    /// Records that a reservation toward `member` succeeded: `h_i ← 0`.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn record_success(&mut self, member: usize) {
        self.entries[member] = 0;
    }

    /// Records that a reservation toward `member` failed: `h_i ← h_i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn record_failure(&mut self, member: usize) {
        self.entries[member] = self.entries[member].saturating_add(1);
    }

    /// Number of members with a clean record (`h_i = 0`) — the `M` of
    /// eq. (9).
    pub fn clean_count(&self) -> usize {
        self.entries.iter().filter(|&&h| h == 0).count()
    }

    /// Clears all records back to the initial state.
    pub fn reset(&mut self) {
        self.entries.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clean() {
        let h = HistoryTable::new(5);
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
        assert_eq!(h.entries(), &[0; 5]);
        assert_eq!(h.clean_count(), 5);
    }

    #[test]
    fn failures_accumulate_and_success_resets() {
        let mut h = HistoryTable::new(3);
        h.record_failure(0);
        h.record_failure(0);
        h.record_failure(2);
        assert_eq!(h.failures(0), 2);
        assert_eq!(h.failures(1), 0);
        assert_eq!(h.failures(2), 1);
        assert_eq!(h.clean_count(), 1);
        h.record_success(0);
        assert_eq!(h.failures(0), 0);
        assert_eq!(h.clean_count(), 2);
    }

    #[test]
    fn reset_clears_all() {
        let mut h = HistoryTable::new(2);
        h.record_failure(0);
        h.record_failure(1);
        h.reset();
        assert_eq!(h.entries(), &[0, 0]);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut h = HistoryTable::new(1);
        h.entries[0] = u32::MAX;
        h.record_failure(0);
        assert_eq!(h.failures(0), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_rejected() {
        let _ = HistoryTable::new(0);
    }
}
