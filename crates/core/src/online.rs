//! The online admission engine: the closed-loop experiment of
//! [`experiment`](crate::experiment), decoupled from its pre-scheduled
//! arrival process so a long-lived service can feed it arrivals as they
//! happen.
//!
//! [`run_experiment`](crate::experiment::run_experiment) owns its whole
//! timeline: the workload draws every arrival up front and the event loop
//! runs straight to the horizon. An admission *daemon* cannot do that —
//! requests arrive from the outside world (a replayed trace, a wire
//! protocol) and time is advanced by a real clock. [`OnlineEngine`] is the
//! bridge: it owns the same simulation state and drives the **same** event
//! handler, but its arrival feed is an externally-submitted queue and its
//! clock advances only as far as the caller says.
//!
//! Because the offline and online engines share one code path (down to
//! the RNG fork order — the workload is constructed, consuming its
//! substreams, even when it is never drawn from), a virtual-time replay
//! of a config's recorded arrival trace is **bit-identical** to the
//! offline run: same decisions, same [`Metrics`], same telemetry stream.
//! [`record_arrivals`] + [`OnlineEngine::replay`] round-trip is the
//! contract; `core/tests/online_replay.rs` enforces it.

use crate::experiment::{
    draw_arrival_trace, ArrivalSlot, Decision, Event, ExperimentConfig, Metrics, ServiceSnapshot,
    Sim,
};
use anycast_net::{Bandwidth, Topology};
use anycast_rsvp::SessionId;
use anycast_sim::{Engine, SimTime};
use anycast_telemetry::Recorder;
use std::collections::VecDeque;

/// Trailing-window admission counters for the rolling (run-forever)
/// service mode: every decision is folded into a fixed number of
/// simulated-time buckets and buckets older than the window are evicted,
/// so memory stays O(buckets) no matter how long the daemon runs.
#[derive(Debug, Clone)]
struct RollingWindow {
    window_secs: f64,
    bucket_secs: f64,
    /// (bucket start, offered, admitted), oldest first.
    buckets: VecDeque<(f64, u64, u64)>,
}

/// Buckets per window: coarse enough to stay tiny, fine enough that the
/// reported window is within ~1/32 of the configured width.
const WINDOW_BUCKETS: f64 = 32.0;

impl RollingWindow {
    fn new(window_secs: f64) -> Self {
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "rolling window must be positive seconds, got {window_secs}"
        );
        RollingWindow {
            window_secs,
            bucket_secs: window_secs / WINDOW_BUCKETS,
            buckets: VecDeque::new(),
        }
    }

    fn evict(&mut self, now_secs: f64) {
        let cutoff = now_secs - self.window_secs;
        while let Some(&(start, ..)) = self.buckets.front() {
            if start + self.bucket_secs <= cutoff {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    fn note(&mut self, at_secs: f64, admitted: bool) {
        let start = (at_secs / self.bucket_secs).floor() * self.bucket_secs;
        match self.buckets.back_mut() {
            Some((s, offered, adm)) if *s >= start => {
                *offered += 1;
                *adm += u64::from(admitted);
            }
            _ => self.buckets.push_back((start, 1, u64::from(admitted))),
        }
        self.evict(at_secs);
    }

    fn totals(&mut self, now_secs: f64) -> (u64, u64) {
        self.evict(now_secs);
        let mut offered = 0;
        let mut admitted = 0;
        for &(_, o, a) in &self.buckets {
            offered += o;
            admitted += a;
        }
        (offered, admitted)
    }
}

/// One externally-submitted arrival: the online analogue of a workload
/// draw, in plain units so trace files and wire messages map onto it
/// directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineArrival {
    /// Simulated arrival time, seconds.
    pub at_secs: f64,
    /// Index into the config's source list.
    pub source_index: usize,
    /// Index into the config's effective anycast groups.
    pub group_index: usize,
    /// Flow holding time, seconds.
    pub holding_secs: f64,
    /// Requested bandwidth.
    pub demand: Bandwidth,
}

/// A long-lived admission engine fed by external arrivals.
///
/// Lifecycle: [`new`](Self::new) → any interleaving of
/// [`submit`](Self::submit) / [`pump`](Self::pump) /
/// [`advance_to`](Self::advance_to) → [`finish`](Self::finish) (run out
/// the full horizon, for replays) or [`finish_now`](Self::finish_now)
/// (stop where the clock stands, for services shutting down).
pub struct OnlineEngine<R: Recorder> {
    sim: Sim<R>,
    engine: Engine<Event>,
    last_submit: SimTime,
    rolling: Option<RollingWindow>,
}

impl<R: Recorder> OnlineEngine<R> {
    /// Builds an externally-fed engine for `config` on `topo`.
    ///
    /// Warm-up, the fault timeline, refresh sweeps and telemetry sampling
    /// are scheduled exactly as in the offline experiment; only arrivals
    /// wait for [`submit`](Self::submit). Decision capture is on.
    ///
    /// # Panics
    ///
    /// As [`run_experiment`](crate::experiment::run_experiment) for
    /// invalid configs.
    pub fn new(topo: &Topology, config: &ExperimentConfig, recorder: R) -> Self {
        let (mut sim, engine) = Sim::new(topo, config, recorder, true);
        sim.enable_decision_capture();
        OnlineEngine {
            sim,
            engine,
            last_submit: SimTime::ZERO,
            rolling: None,
        }
    }

    /// Switches the engine into rolling-window service mode: the run
    /// horizon moves out to an effectively unbounded instant (so `serve`
    /// runs until told to stop, not to `warmup + measure`), and
    /// [`snapshot`](Self::snapshot) reports trailing-window admission
    /// counters over the last `window_secs` of simulated time alongside
    /// the monotone totals.
    ///
    /// The configured `warmup + measure` span still scopes the fault
    /// timeline; warm-up stat gating is unchanged. Replays that need
    /// bit-identical offline metrics must not enable this.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive and finite.
    pub fn enable_rolling(&mut self, window_secs: f64) {
        self.rolling = Some(RollingWindow::new(window_secs));
        self.sim.make_unbounded();
    }

    /// Whether rolling-window mode is on.
    pub fn is_rolling(&self) -> bool {
        self.rolling.is_some()
    }

    /// Current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// End of the warm-up period: decisions before it are made but not
    /// measured, exactly as offline.
    pub fn warmup_end(&self) -> SimTime {
        self.sim.warmup_end()
    }

    /// The run horizon (`warmup_secs + measure_secs`); the engine never
    /// advances past it and arrivals beyond it are rejected at submit.
    pub fn horizon(&self) -> SimTime {
        self.sim.horizon()
    }

    /// Number of configured source routers (valid `source_index` bound).
    pub fn source_count(&self) -> usize {
        self.sim.source_count()
    }

    /// Number of effective anycast groups (valid `group_index` bound).
    pub fn group_count(&self) -> usize {
        self.sim.group_count()
    }

    /// Shared access to the recorder (e.g. to inspect a ring buffer).
    pub fn recorder(&self) -> &R {
        self.sim.recorder()
    }

    /// A point-in-time operational snapshot (the daemon's `stats`
    /// endpoint). In rolling mode the trailing-window counters are
    /// filled in; otherwise they are zero and `window_secs` is 0.
    pub fn snapshot(&mut self) -> ServiceSnapshot {
        let now = self.engine.now();
        let mut snap = self.sim.snapshot(now);
        if let Some(window) = self.rolling.as_mut() {
            let (offered, admitted) = window.totals(now.as_secs());
            snap.window_secs = window.window_secs;
            snap.window_offered = offered;
            snap.window_admitted = admitted;
            snap.window_rejected = offered - admitted;
        }
        snap
    }

    /// Tears down a live admitted session right now — the wire `teardown`
    /// op. Returns `false` when the session is not live (already departed
    /// at its holding deadline, already torn down, fault-killed, or never
    /// existed): lost and duplicate teardowns are harmless because the
    /// §4.4 soft-state path reclaims the reservation regardless.
    pub fn teardown(&mut self, session: SessionId) -> bool {
        let Self { sim, engine, .. } = self;
        sim.teardown_session(engine, session)
    }

    /// Enqueues one arrival. The decision is made when the engine's
    /// clock reaches `arrival.at_secs` — call [`pump`](Self::pump) or
    /// [`advance_to`](Self::advance_to) to collect it.
    ///
    /// # Panics
    ///
    /// Panics if the arrival is before the engine's current time or an
    /// earlier submission, past the horizon, references an unknown source
    /// or group, or has a non-positive demand or holding time.
    pub fn submit(&mut self, arrival: OnlineArrival) {
        assert!(
            arrival.at_secs.is_finite() && arrival.at_secs >= 0.0,
            "arrival time must be finite and nonnegative, got {}",
            arrival.at_secs
        );
        let at = SimTime::from_secs(arrival.at_secs);
        assert!(
            at >= self.engine.now(),
            "arrival at {:?} is in the past (engine is at {:?})",
            at,
            self.engine.now()
        );
        assert!(
            at >= self.last_submit,
            "arrivals must be submitted in nondecreasing time order"
        );
        assert!(
            at <= self.sim.horizon(),
            "arrival at {:?} is past the horizon {:?}",
            at,
            self.sim.horizon()
        );
        self.sim.submit_slot(
            &mut self.engine,
            ArrivalSlot {
                at,
                source_index: arrival.source_index,
                group_index: arrival.group_index,
                holding_secs: arrival.holding_secs,
                demand: arrival.demand,
            },
        );
        self.last_submit = at;
    }

    /// Advances the clock to the latest submitted arrival, deciding
    /// everything due by then, and drains the finalised decisions.
    pub fn pump(&mut self) -> Vec<Decision> {
        self.advance_to(self.last_submit)
    }

    /// Advances the clock to `t` (clamped to the horizon), processing
    /// every event due by then — admissions, departures, signalling
    /// exchanges, faults — and drains the finalised decisions.
    ///
    /// Advancing to a time earlier than [`now`](Self::now) is a no-op
    /// apart from draining.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<Decision> {
        let target = t.min(self.sim.horizon());
        let Self { sim, engine, .. } = self;
        engine.run_until(target, |eng, now, event| sim.handle(eng, now, event));
        let decisions = sim.take_decisions();
        if let Some(window) = self.rolling.as_mut() {
            for d in &decisions {
                window.note(d.at_secs, d.admitted);
            }
        }
        decisions
    }

    /// Runs the engine out to the full horizon and closes the run. This
    /// is the replay path: its [`Metrics`] are bit-identical to the
    /// offline engine's for the same config and arrival trace.
    pub fn finish(mut self) -> (Metrics, Vec<Decision>, R) {
        if self.rolling.is_some() {
            // A rolling engine has no meaningful horizon to run out to
            // (it is ~1e15 s away, with self-rescheduling periodic events
            // in between); close where the clock stands instead.
            return self.finish_now();
        }
        let horizon = self.sim.horizon();
        let decisions = self.advance_to(horizon);
        let (metrics, recorder) = self.sim.finish(horizon);
        (metrics, decisions, recorder)
    }

    /// Closes the run where the clock currently stands, without running
    /// out the horizon — the graceful-shutdown path. In-flight two-phase
    /// holds are drained (and audited via `leaked_hold_bps`), the ledger
    /// is audited via `leaked_bandwidth_bps`, and time-weighted averages
    /// cover `[warmup_end, now]`.
    pub fn finish_now(mut self) -> (Metrics, Vec<Decision>, R) {
        let end = self.engine.now();
        let decisions = self.sim.take_decisions();
        let (metrics, recorder) = self.sim.finish(end);
        (metrics, decisions, recorder)
    }

    /// Replays a recorded arrival trace in virtual time: submits every
    /// arrival, runs to the horizon and closes the run. Returns the
    /// metrics, every decision in request order, and the recorder.
    ///
    /// # Panics
    ///
    /// As [`submit`](Self::submit) for malformed traces.
    pub fn replay(
        topo: &Topology,
        config: &ExperimentConfig,
        arrivals: &[OnlineArrival],
        recorder: R,
    ) -> (Metrics, Vec<Decision>, R) {
        let mut eng = OnlineEngine::new(topo, config, recorder);
        for a in arrivals {
            eng.submit(*a);
        }
        eng.finish()
    }
}

/// Draws a config's complete arrival process — every arrival in
/// `[0, warmup + measure]`, with its source, group, demand and holding
/// time — without running any admission. This is what `anycast record`
/// writes to a trace file; replaying the result through
/// [`OnlineEngine::replay`] reproduces the offline run bit-identically.
pub fn record_arrivals(config: &ExperimentConfig) -> Vec<OnlineArrival> {
    draw_arrival_trace(config)
        .into_iter()
        .map(|s: ArrivalSlot| OnlineArrival {
            at_secs: s.at.as_secs(),
            source_index: s.source_index,
            group_index: s.group_index,
            holding_secs: s.holding_secs,
            demand: s.demand,
        })
        .collect()
}
