//! Multipath DAC — relaxing the paper's fixed-single-path assumption.
//!
//! §3 fixes *one* route per (source, member) and §6 lists relaxing that as
//! future work. This module supplies each member with its `k` shortest
//! loop-free paths (Yen's algorithm) and lets a reservation failure fall
//! through to the member's alternate routes before the member is declared
//! failed. Destination selection, history and retrial control are
//! unchanged — only the reservation step gains depth — so the comparison
//! against the single-path DAC isolates exactly what path diversity buys
//! (`ablation_multipath`).

use crate::policy::{SelectionContext, WeightAssigner};
use crate::{AdmissionOutcome, AdmittedFlow, HistoryTable, RetrialPolicy};
use anycast_net::routing::k_shortest_paths;
use anycast_net::{AnycastGroup, Bandwidth, LinkStateTable, NodeId, Path, Topology};
use anycast_rsvp::ReservationEngine;
use anycast_sim::SimRng;
use std::collections::HashMap;

/// Fixed multipath routes: for every `(source, member)` pair, the `k`
/// shortest loop-free paths in preference order.
#[derive(Debug, Clone)]
pub struct MultipathRouteTable {
    group: AnycastGroup,
    paths_per_member: usize,
    /// `routes[source][member_index][rank]`
    routes: HashMap<NodeId, Vec<Vec<Path>>>,
}

impl MultipathRouteTable {
    /// Builds up to `paths_per_member` routes from every node to every
    /// member.
    ///
    /// # Panics
    ///
    /// Panics if `paths_per_member` is zero or some member is unreachable
    /// from some node (the paper's connectivity assumption).
    pub fn build(topo: &Topology, group: &AnycastGroup, paths_per_member: usize) -> Self {
        assert!(paths_per_member > 0, "need at least one path per member");
        let mut routes = HashMap::with_capacity(topo.node_count());
        for src in topo.nodes() {
            let per_member: Vec<Vec<Path>> = group
                .members()
                .iter()
                .map(|&m| {
                    let paths = k_shortest_paths(topo, src, m, paths_per_member);
                    assert!(
                        !paths.is_empty(),
                        "member {m} unreachable from {src}: topology must be connected"
                    );
                    paths
                })
                .collect();
            routes.insert(src, per_member);
        }
        MultipathRouteTable {
            group: group.clone(),
            paths_per_member,
            routes,
        }
    }

    /// The anycast group this table routes toward.
    pub fn group(&self) -> &AnycastGroup {
        &self.group
    }

    /// The requested number of paths per member (individual members may
    /// have fewer if the topology lacks diversity).
    pub fn paths_per_member(&self) -> usize {
        self.paths_per_member
    }

    /// All route fans from `source`, indexed `[member_index][rank]`.
    ///
    /// # Panics
    ///
    /// Panics if `source` was not a node of the topology.
    pub fn routes_from(&self, source: NodeId) -> &[Vec<Path>] {
        self.routes
            .get(&source)
            .map(Vec::as_slice)
            .unwrap_or_else(|| panic!("no routes recorded for source {source}"))
    }

    /// Primary (shortest) hop distances per member — the `D_i` fed to the
    /// weight formulas, identical to the single-path table's distances.
    ///
    /// # Panics
    ///
    /// Panics if `source` was not a node of the topology.
    pub fn distances(&self, source: NodeId) -> Vec<u32> {
        self.routes_from(source)
            .iter()
            .map(|fan| fan[0].hops() as u32)
            .collect()
    }
}

/// Outcome of a multipath admission: the member-level outcome plus how
/// many individual path reservations were attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultipathOutcome {
    /// Member-level view, comparable to the single-path
    /// [`AdmissionOutcome`] (tries counts *members*, as in the paper).
    pub outcome: AdmissionOutcome,
    /// Total path reservation attempts across all members tried.
    pub path_attempts: u32,
}

/// The multipath admission controller: the §4.2 loop where each selected
/// member may be probed over several fixed alternate routes.
#[derive(Debug)]
pub struct MultipathController {
    policy: Box<dyn WeightAssigner>,
    retrial: RetrialPolicy,
    history: HistoryTable,
    distances: Vec<u32>,
}

impl MultipathController {
    /// Creates a controller for one source (see
    /// [`AdmissionController::new`](crate::AdmissionController::new); the
    /// distances are the primary-path distances).
    ///
    /// # Panics
    ///
    /// Panics if `distances` is empty.
    pub fn new(
        policy: Box<dyn WeightAssigner>,
        retrial: RetrialPolicy,
        distances: Vec<u32>,
    ) -> Self {
        assert!(!distances.is_empty(), "group must have at least one member");
        let history = HistoryTable::new(distances.len());
        MultipathController {
            policy,
            retrial,
            history,
            distances,
        }
    }

    /// This router's local admission history.
    pub fn history(&self) -> &HistoryTable {
        &self.history
    }

    /// Runs the multipath DAC procedure for one flow request.
    ///
    /// `route_fans[i]` holds member `i`'s alternate routes in preference
    /// order. A member "fails" only when every alternate is blocked; the
    /// history then records one failure, exactly as a single-path failure
    /// would.
    ///
    /// # Panics
    ///
    /// Panics if `route_fans` does not match the construction-time group
    /// size or contains an empty fan.
    pub fn admit(
        &mut self,
        route_fans: &[Vec<Path>],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        rng: &mut SimRng,
    ) -> MultipathOutcome {
        assert_eq!(
            route_fans.len(),
            self.distances.len(),
            "route fans must cover every group member"
        );
        let k = route_fans.len();
        let mut untried = vec![true; k];
        let mut member_tries = 0u32;
        let mut path_attempts = 0u32;
        loop {
            let bw_info = self.route_bandwidth_info(route_fans, links);
            let ctx = SelectionContext {
                distances: &self.distances,
                history: self.history.entries(),
                route_bandwidth_bps: &bw_info,
            };
            let weights = self.policy.assign(&ctx);
            let pick = match rng.choose_weighted_masked(&weights, &untried) {
                Some(i) => i,
                None => {
                    let remaining: Vec<usize> = (0..k).filter(|&i| untried[i]).collect();
                    match remaining.len() {
                        0 => break,
                        n => remaining[rng.below(n)],
                    }
                }
            };
            member_tries += 1;
            let fan = &route_fans[pick];
            assert!(!fan.is_empty(), "member {pick} has no routes");
            let mut admitted = None;
            for path in fan {
                path_attempts += 1;
                if let Ok(out) = rsvp.probe_and_reserve(links, path, demand) {
                    admitted = Some(AdmittedFlow {
                        session: out.session,
                        member_index: pick,
                        route_bandwidth: out.route_bandwidth,
                    });
                    break;
                }
            }
            match admitted {
                Some(flow) => {
                    self.history.record_success(pick);
                    return MultipathOutcome {
                        outcome: AdmissionOutcome {
                            admitted: Some(flow),
                            tries: member_tries,
                        },
                        path_attempts,
                    };
                }
                None => {
                    self.history.record_failure(pick);
                    untried[pick] = false;
                }
            }
            if untried.iter().all(|&u| !u) {
                break;
            }
            let remaining_weight: f64 = weights
                .iter()
                .zip(&untried)
                .filter(|(_, &u)| u)
                .map(|(&w, _)| w)
                .sum();
            if !self.retrial.keep_going(member_tries, remaining_weight) {
                break;
            }
        }
        MultipathOutcome {
            outcome: AdmissionOutcome {
                admitted: None,
                tries: member_tries,
            },
            path_attempts,
        }
    }

    /// Resets the admission history.
    pub fn reset_history(&mut self) {
        self.history.reset();
    }

    fn route_bandwidth_info(&self, route_fans: &[Vec<Path>], links: &LinkStateTable) -> Vec<f64> {
        if !self.policy.needs_route_bandwidth() {
            return Vec::new();
        }
        // A member's usable bandwidth is the best bottleneck over its fan.
        route_fans
            .iter()
            .map(|fan| {
                fan.iter()
                    .map(|p| {
                        let bw = links.min_available_on(p).bps();
                        if bw == u64::MAX {
                            1e18
                        } else {
                            bw as f64
                        }
                    })
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Ed, PolicySpec};
    use anycast_net::{topologies, LinkId, TopologyBuilder};

    /// Diamond to a single member: two disjoint 2-hop routes.
    fn diamond() -> (Topology, AnycastGroup, MultipathRouteTable) {
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (1, 3), (0, 2), (2, 3)], Bandwidth::from_kbps(128))
            .unwrap();
        let topo = b.build();
        let group = AnycastGroup::new("G", [NodeId::new(3)]).unwrap();
        let table = MultipathRouteTable::build(&topo, &group, 2);
        (topo, group, table)
    }

    #[test]
    fn table_shape() {
        let (_, group, table) = diamond();
        assert_eq!(table.group(), &group);
        assert_eq!(table.paths_per_member(), 2);
        let fans = table.routes_from(NodeId::new(0));
        assert_eq!(fans.len(), 1);
        assert_eq!(fans[0].len(), 2);
        assert_eq!(table.distances(NodeId::new(0)), vec![2]);
    }

    #[test]
    fn falls_through_to_alternate_route() {
        let (topo, _, table) = diamond();
        let mut links = LinkStateTable::from_topology(&topo);
        // Kill the primary route (via node 1).
        let primary = &table.routes_from(NodeId::new(0))[0][0];
        links
            .reserve(primary.links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(1);
        let mut c = MultipathController::new(
            Box::new(Ed),
            RetrialPolicy::FixedLimit(1),
            table.distances(NodeId::new(0)),
        );
        let out = c.admit(
            table.routes_from(NodeId::new(0)),
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
            &mut rng,
        );
        assert!(
            out.outcome.is_admitted(),
            "alternate route must save the flow"
        );
        assert_eq!(out.outcome.tries, 1, "one member tried");
        assert_eq!(out.path_attempts, 2, "two paths probed");
        assert_eq!(c.history().failures(0), 0, "member succeeded overall");
    }

    #[test]
    fn member_fails_only_when_all_paths_fail() {
        let (topo, _, table) = diamond();
        let mut links = LinkStateTable::from_topology(&topo);
        for l in 0..4u32 {
            let id = LinkId::new(l);
            let avail = links.available(id);
            links.reserve(id, avail).unwrap();
        }
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(2);
        let mut c = MultipathController::new(
            Box::new(Ed),
            RetrialPolicy::FixedLimit(3),
            table.distances(NodeId::new(0)),
        );
        let out = c.admit(
            table.routes_from(NodeId::new(0)),
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
            &mut rng,
        );
        assert!(!out.outcome.is_admitted());
        assert_eq!(out.outcome.tries, 1, "single member exhausted");
        assert_eq!(out.path_attempts, 2);
        assert_eq!(c.history().failures(0), 1, "one member-level failure");
    }

    #[test]
    fn k1_matches_single_path_controller() {
        // With one path per member the multipath controller must behave
        // exactly like the classic one under the same RNG stream.
        let topo = topologies::mci();
        let group = AnycastGroup::new("G", topologies::MCI_GROUP_MEMBERS.map(NodeId::new)).unwrap();
        let multi = MultipathRouteTable::build(&topo, &group, 1);
        let single = anycast_net::RouteTable::shortest_paths(&topo, &group);
        let source = NodeId::new(7);
        let mut links_a =
            LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
        let mut links_b = links_a.clone();
        let mut rsvp_a = ReservationEngine::new();
        let mut rsvp_b = ReservationEngine::new();
        let mut rng_a = SimRng::seed_from(77);
        let mut rng_b = SimRng::seed_from(77);
        let mut mc = MultipathController::new(
            PolicySpec::wd_dh_default().build().unwrap(),
            RetrialPolicy::FixedLimit(2),
            multi.distances(source),
        );
        let mut sc = crate::AdmissionController::new(
            PolicySpec::wd_dh_default().build().unwrap(),
            RetrialPolicy::FixedLimit(2),
            single.distances(source).unwrap(),
        );
        for _ in 0..200 {
            let a = mc.admit(
                multi.routes_from(source),
                &mut links_a,
                &mut rsvp_a,
                Bandwidth::from_kbps(64),
                &mut rng_a,
            );
            let b = sc.admit(
                single.routes_from(source).unwrap(),
                &mut links_b,
                &mut rsvp_b,
                Bandwidth::from_kbps(64),
                &mut rng_b,
            );
            assert_eq!(a.outcome.is_admitted(), b.is_admitted());
            assert_eq!(a.outcome.tries, b.tries);
            assert_eq!(
                a.path_attempts, b.tries,
                "k=1: one path probe per member try"
            );
            match (a.outcome.admitted, b.admitted) {
                (Some(fa), Some(fb)) => assert_eq!(fa.member_index, fb.member_index),
                (None, None) => {}
                _ => unreachable!(),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn zero_paths_rejected() {
        let (topo, group, _) = diamond();
        let _ = MultipathRouteTable::build(&topo, &group, 0);
    }
}
