//! Distributed Admission Control (DAC) for anycast flows with QoS
//! requirements — the primary contribution of Xuan & Jia (ICDCS 2001).
//!
//! An anycast flow may be delivered to *any* member of a recipient group;
//! admitting one therefore requires choosing a destination before resources
//! can be reserved. This crate implements the paper's §4 procedure —
//! destination selection, resource reservation, retrial control — together
//! with its three weight-assignment algorithms and the two baseline systems
//! of §5:
//!
//! | System | Status information used |
//! |--------|-------------------------|
//! | [`Ed`](policy::Ed) | none (uniform weights, eq. 2) |
//! | [`WdDh`](policy::WdDh) | route distances + local admission history (eqs. 4–10) |
//! | [`WdDb`](policy::WdDb) | route distances + route available bandwidth (eq. 12) |
//! | [`ShortestPathSystem`](baselines::ShortestPathSystem) | distances only; always the nearest member |
//! | [`GlobalDynamicSystem`](baselines::GlobalDynamicSystem) | perfect global dynamic information |
//!
//! The closed-loop simulation that evaluates them lives in [`experiment`];
//! QoS mapping from delay bounds to bandwidth (the §6 extension) in [`qos`].
//!
//! # Quickstart
//!
//! ```rust
//! use anycast_dac::experiment::{ExperimentConfig, SystemSpec, run_experiment};
//! use anycast_dac::policy::PolicySpec;
//! use anycast_net::topologies;
//!
//! let topo = topologies::mci();
//! let config = ExperimentConfig::paper_defaults(20.0, SystemSpec::dac(PolicySpec::Ed, 2))
//!     .with_measure_secs(400.0)
//!     .with_seed(7);
//! let metrics = run_experiment(&topo, &config);
//! assert!(metrics.admission_probability > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod baselines;
pub mod calibrate;
mod controller;
mod error;
pub mod experiment;
mod history;
pub mod multipath;
pub mod online;
pub mod policy;
pub mod qos;
mod retrial;
mod weights;

pub use backoff::BackoffPolicy;
pub use controller::{AdmissionController, AdmissionOutcome, AdmittedFlow};
pub use error::DacError;
pub use history::HistoryTable;
pub use retrial::RetrialPolicy;
pub use weights::{
    bandwidth_distance_weights, distance_weights, history_adjusted_weights, normalize_weights,
    uniform_weights,
};
