//! The weight-assignment formulas of §4.3.
//!
//! Every destination-selection algorithm in the paper reduces to assigning
//! a probability weight `W_i` to each of the `K` group members, subject to
//! `Σ W_i = 1` (eq. 1). These free functions implement the formulas; the
//! [`policy`](crate::policy) module wraps them in stateful strategies.
//!
//! All functions guarantee the returned vector is the same length as the
//! input, non-negative, finite, and sums to 1 (within floating-point
//! rounding) — the invariants the property tests pin down.

/// Unbiased weights of the ED algorithm: `W_i = 1/K` (eq. 2).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn uniform_weights(k: usize) -> Vec<f64> {
    let mut out = Vec::new();
    uniform_weights_into(k, &mut out);
    out
}

/// [`uniform_weights`] writing into a caller-owned buffer.
///
/// The `_into` variants exist for the batched admission path: evaluating a
/// batch of same-quantum arrivals recomputes weights once per arrival, and
/// reusing one flat buffer per controller keeps that loop allocation-free.
/// Each produces bit-identical results to its allocating twin — same
/// formula, same operation order.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn uniform_weights_into(k: usize, out: &mut Vec<f64>) {
    assert!(k > 0, "cannot assign weights to an empty group");
    out.clear();
    out.resize(k, 1.0 / k as f64);
}

/// Normalises `weights` in place so they sum to one (eq. 1, eq. 10).
///
/// If every weight is zero the result is the uniform distribution — the
/// neutral fallback when an algorithm's status information degenerates
/// (e.g. WD/D+B with zero bandwidth everywhere).
///
/// # Panics
///
/// Panics if `weights` is empty, or any weight is negative or non-finite.
pub fn normalize_weights(weights: &mut [f64]) {
    assert!(
        !weights.is_empty(),
        "cannot normalise an empty weight vector"
    );
    let mut sum = 0.0;
    for &w in weights.iter() {
        assert!(
            w.is_finite() && w >= 0.0,
            "weights must be finite and non-negative, got {w}"
        );
        sum += w;
    }
    if sum <= 0.0 {
        let k = weights.len() as f64;
        weights.iter_mut().for_each(|w| *w = 1.0 / k);
    } else {
        weights.iter_mut().for_each(|w| *w /= sum);
    }
}

/// Distance-biased weights: `W_i ∝ 1/D_i` (eq. 4).
///
/// The paper measures `D_i` as the hop count of the fixed route to member
/// `i`. A member co-located with the source has hop count 0; its effective
/// distance is clamped to 1 so the weight stays finite (such a member is
/// maximally attractive, which matches the intent of eq. 3).
///
/// # Panics
///
/// Panics if `distances` is empty.
pub fn distance_weights(distances: &[u32]) -> Vec<f64> {
    let mut out = Vec::new();
    distance_weights_into(distances, &mut out);
    out
}

/// [`distance_weights`] writing into a caller-owned buffer (see
/// [`uniform_weights_into`] for why the `_into` family exists).
///
/// # Panics
///
/// Panics if `distances` is empty.
pub fn distance_weights_into(distances: &[u32], out: &mut Vec<f64>) {
    assert!(!distances.is_empty(), "need at least one distance");
    out.clear();
    out.extend(distances.iter().map(|&d| 1.0 / f64::from(d.max(1))));
    normalize_weights(out);
}

/// History-adjusted weights of WD/D+H (eqs. 8–10).
///
/// Starting from `base` weights (eq. 4 in the paper's initialisation),
/// members with recent consecutive failures `h_i > 0` are damped by
/// `α^{h_i}` and the freed probability mass `AW` (eq. 8) is redistributed
/// uniformly over the `M` members with clean records (eq. 9), then the
/// whole vector is renormalised (eq. 10).
///
/// Edge cases the paper leaves implicit:
///
/// * `α = 0` gives history maximal impact (`0⁰ = 1`, so clean members are
///   unaffected while any failure zeroes a member);
/// * `α = 1` disables history entirely (the result is `base` renormalised);
/// * when *no* member has a clean record (`M = 0`) there is nowhere to
///   redistribute `AW`, so only the damping step applies before
///   renormalisation;
/// * if damping annihilates every weight (e.g. `α = 0` and all `h_i > 0`)
///   the result falls back to the uniform distribution via
///   [`normalize_weights`].
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, if any base weight
/// is negative/non-finite, or if `alpha` is outside `[0, 1]`.
pub fn history_adjusted_weights(base: &[f64], history: &[u32], alpha: f64) -> Vec<f64> {
    let mut out = Vec::new();
    history_adjusted_weights_into(base, history, alpha, &mut out);
    out
}

/// [`history_adjusted_weights`] writing into a caller-owned buffer (see
/// [`uniform_weights_into`] for why the `_into` family exists).
///
/// # Panics
///
/// Same contract as [`history_adjusted_weights`].
pub fn history_adjusted_weights_into(
    base: &[f64],
    history: &[u32],
    alpha: f64,
    out: &mut Vec<f64>,
) {
    assert_eq!(
        base.len(),
        history.len(),
        "base weights and history must have equal length"
    );
    assert!(!base.is_empty(), "need at least one member");
    assert!(
        (0.0..=1.0).contains(&alpha),
        "alpha must lie in [0, 1], got {alpha}"
    );
    // Eq. (8): adjustable mass. alpha^0 = 1 so clean members contribute 0.
    let damp = |h: u32| -> f64 {
        if h == 0 {
            1.0
        } else {
            alpha.powi(h.min(i32::MAX as u32) as i32)
        }
    };
    let aw: f64 = base
        .iter()
        .zip(history)
        .map(|(&w, &h)| {
            assert!(
                w.is_finite() && w >= 0.0,
                "base weights must be finite and non-negative, got {w}"
            );
            w * (1.0 - damp(h))
        })
        .sum();
    // Eq. (9): damp the tainted, boost the clean.
    let m = history.iter().filter(|&&h| h == 0).count();
    let bonus = if m > 0 { aw / m as f64 } else { 0.0 };
    out.clear();
    out.extend(
        base.iter()
            .zip(history)
            .map(|(&w, &h)| if h == 0 { w + bonus } else { w * damp(h) }),
    );
    // Eq. (10): renormalise.
    normalize_weights(out);
}

/// Bandwidth/distance weights of WD/D+B: `W_i ∝ B_i / D_i` (eq. 12).
///
/// `route_bandwidth[i]` is the bottleneck available bandwidth `B_i` of the
/// fixed route to member `i` (eq. 11), in any consistent unit. When every
/// route reports zero bandwidth the dynamic signal is useless, so the
/// algorithm degrades gracefully to pure distance weighting (eq. 4) —
/// selection still happens and the reservation attempt will fail naturally,
/// keeping overhead accounting comparable across algorithms.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, or if any bandwidth
/// is negative or non-finite (NaN/∞).
pub fn bandwidth_distance_weights(route_bandwidth: &[f64], distances: &[u32]) -> Vec<f64> {
    let mut out = Vec::new();
    bandwidth_distance_weights_into(route_bandwidth, distances, &mut out);
    out
}

/// [`bandwidth_distance_weights`] writing into a caller-owned buffer (see
/// [`uniform_weights_into`] for why the `_into` family exists).
///
/// # Panics
///
/// Same contract as [`bandwidth_distance_weights`].
pub fn bandwidth_distance_weights_into(
    route_bandwidth: &[f64],
    distances: &[u32],
    out: &mut Vec<f64>,
) {
    assert_eq!(
        route_bandwidth.len(),
        distances.len(),
        "bandwidths and distances must have equal length"
    );
    assert!(!distances.is_empty(), "need at least one member");
    for &b in route_bandwidth {
        assert!(
            b.is_finite() && b >= 0.0,
            "route bandwidth must be finite and non-negative, got {b}"
        );
    }
    if route_bandwidth.iter().all(|&b| b == 0.0) {
        distance_weights_into(distances, out);
        return;
    }
    out.clear();
    out.extend(
        route_bandwidth
            .iter()
            .zip(distances)
            .map(|(&b, &d)| b / f64::from(d.max(1))),
    );
    normalize_weights(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_distribution(w: &[f64]) {
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12, "sum {w:?}");
        assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn uniform_is_one_over_k() {
        let w = uniform_weights(5);
        assert_distribution(&w);
        assert!(w.iter().all(|&x| (x - 0.2).abs() < 1e-15));
    }

    #[test]
    fn normalize_handles_all_zero() {
        let mut w = vec![0.0, 0.0, 0.0, 0.0];
        normalize_weights(&mut w);
        assert_distribution(&w);
        assert!((w[0] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn distance_weights_prefer_near_members() {
        // Distances 1, 2, 4 → weights ∝ 1, 0.5, 0.25.
        let w = distance_weights(&[1, 2, 4]);
        assert_distribution(&w);
        assert!((w[0] - 4.0 / 7.0).abs() < 1e-12);
        assert!((w[1] - 2.0 / 7.0).abs() < 1e-12);
        assert!((w[2] - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_clamped() {
        let w = distance_weights(&[0, 1]);
        assert_distribution(&w);
        assert!(
            (w[0] - 0.5).abs() < 1e-12,
            "co-located member treated as d=1"
        );
    }

    #[test]
    fn history_alpha_one_is_identity() {
        let base = distance_weights(&[1, 2, 3]);
        let w = history_adjusted_weights(&base, &[4, 0, 7], 1.0);
        for (a, b) in w.iter().zip(&base) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn history_alpha_zero_kills_failed_members() {
        let base = uniform_weights(3);
        let w = history_adjusted_weights(&base, &[1, 0, 2], 0.0);
        assert_distribution(&w);
        assert_eq!(w[0], 0.0);
        assert_eq!(w[2], 0.0);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn history_redistributes_mass_to_clean_members() {
        // Hand-computed: base uniform over 4, h = [2,0,0,0], α = 0.5.
        // damp(2) = 0.25; AW = 0.25 * 0.75 = 0.1875; M = 3, bonus = 0.0625.
        // adjusted = [0.0625, 0.3125, 0.3125, 0.3125] (already sums to 1).
        let base = uniform_weights(4);
        let w = history_adjusted_weights(&base, &[2, 0, 0, 0], 0.5);
        assert_distribution(&w);
        assert!((w[0] - 0.0625).abs() < 1e-12);
        for &x in &w[1..] {
            assert!((x - 0.3125).abs() < 1e-12);
        }
    }

    #[test]
    fn history_all_failed_keeps_relative_damping() {
        // M = 0: only damping applies, then renormalisation.
        // base uniform over 2, h = [1, 2], α = 0.5 → damped [.25, .125]
        // → normalised [2/3, 1/3].
        let base = uniform_weights(2);
        let w = history_adjusted_weights(&base, &[1, 2], 0.5);
        assert_distribution(&w);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn history_all_failed_alpha_zero_falls_back_to_uniform() {
        let base = distance_weights(&[1, 3]);
        let w = history_adjusted_weights(&base, &[1, 1], 0.0);
        assert_distribution(&w);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_weights_follow_eq12() {
        // B = [10, 20], D = [1, 2] → B/D = [10, 10] → uniform.
        let w = bandwidth_distance_weights(&[10.0, 20.0], &[1, 2]);
        assert_distribution(&w);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_zero_everywhere_degrades_to_distance() {
        let w = bandwidth_distance_weights(&[0.0, 0.0], &[1, 3]);
        let d = distance_weights(&[1, 3]);
        assert_eq!(w, d);
    }

    #[test]
    fn bandwidth_partial_zero_excludes_member() {
        let w = bandwidth_distance_weights(&[0.0, 5.0], &[1, 1]);
        assert_distribution(&w);
        assert_eq!(w[0], 0.0);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn into_variants_are_bit_identical_and_reuse_buffers() {
        let distances = [1u32, 2, 4, 0, 7];
        let history = [0u32, 3, 1, 0, 2];
        let bw = [5.0, 0.0, 12.5, 3.25, 9.0];
        // A dirty, over-long buffer must be fully overwritten.
        let mut buf = vec![f64::NAN; 16];

        uniform_weights_into(5, &mut buf);
        assert_eq!(buf, uniform_weights(5));

        distance_weights_into(&distances, &mut buf);
        assert_eq!(buf, distance_weights(&distances));

        let base = distance_weights(&distances);
        for alpha in [0.0, 0.5, 1.0] {
            history_adjusted_weights_into(&base, &history, alpha, &mut buf);
            assert_eq!(buf, history_adjusted_weights(&base, &history, alpha));
        }

        bandwidth_distance_weights_into(&bw, &distances, &mut buf);
        assert_eq!(buf, bandwidth_distance_weights(&bw, &distances));

        // All-zero bandwidth takes the distance fallback inside _into too.
        bandwidth_distance_weights_into(&[0.0; 5], &distances, &mut buf);
        assert_eq!(buf, distance_weights(&distances));
    }

    #[test]
    #[should_panic(expected = "alpha must lie in [0, 1]")]
    fn invalid_alpha_panics() {
        let _ = history_adjusted_weights(&[1.0], &[0], 1.5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_history_panics() {
        let _ = history_adjusted_weights(&[0.5, 0.5], &[0], 0.5);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn uniform_zero_panics() {
        let _ = uniform_weights(0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_panics() {
        let _ = bandwidth_distance_weights(&[-1.0], &[1]);
    }
}
