//! The closed-loop simulation experiment of §5: workload in, metrics out.
//!
//! [`run_experiment`] wires together the whole stack — topology and fixed
//! routes ([`anycast_net`]), RSVP-style reservation ([`anycast_rsvp`]), the
//! admission systems of this crate, and the discrete-event engine and
//! statistics of ([`anycast_sim`]) — and reproduces the measurement setup
//! of §5.1: Poisson arrivals over the odd-numbered source routers,
//! exponential lifetimes, one five-member anycast group, 64 kb/s demands
//! against the 20% anycast partition of 100 Mb/s links.

use crate::backoff::BackoffPolicy;
use crate::baselines::{GlobalDynamicSystem, ShortestPathSystem};
use crate::multipath::{MultipathController, MultipathRouteTable};
use crate::policy::PolicySpec;
use crate::{AdmissionController, AdmissionOutcome, RetrialPolicy};
use anycast_chaos::{
    build_timeline, ControlFaultModel, FaultAction, FaultBook, FaultEntity, FaultPlan,
    MessageFault, SignalingFaults,
};
use anycast_net::routing::RoutingScratch;
use anycast_net::{
    topologies, AnycastGroup, Bandwidth, LinkStateTable, NodeId, Path, RouteBook, RouteCacheStats,
    RouteMode, RouteProvider, RouteSet, Topology,
};
use anycast_rsvp::{
    MessageKind, MessageLedger, PathStep, RefreshTracker, ReservationEngine, SessionId, SetupId,
    SetupTable,
};
use anycast_sim::pool::parallel_map_with;
use anycast_sim::stats::{AdmissionStats, TimeWeighted};
use anycast_sim::workload::{
    BurstyWorkload, FlowRequest, HoldingSampler, ModulatedWorkload, PoissonWorkload, RateEnvelope,
};
use anycast_sim::{Engine, SimRng, SimTime, TimerWheel};
use anycast_telemetry::{
    DecisionStep, DecisionTrace, Event as TelemetryEvent, FaultKind, NullRecorder, ProbeResult,
    Recorder, RequestTracer, SkipReason, TeardownReason,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// The horizon a rolling-window (run-forever) service advances toward:
/// ~31 million simulated years, far past any deployment's lifetime, yet
/// finite so [`SimTime`] arithmetic (adding holding times, signalling
/// delays) can never overflow to infinity.
pub(crate) const UNBOUNDED_HORIZON_SECS: f64 = 1e15;

/// Which admission system the experiment evaluates — the paper's
/// `<A, R>` tuples plus the two baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemSpec {
    /// The DAC procedure with a destination-selection policy and retrial
    /// control: the `<A, R>` notation of §5.1.
    Dac {
        /// Destination-selection algorithm `A`.
        policy: PolicySpec,
        /// Retrial control (the paper's `R` is `FixedLimit(R)`).
        retrial: RetrialPolicy,
    },
    /// The multipath extension: DAC where each member may be probed over
    /// its `paths_per_member` shortest alternate routes (§6 future work;
    /// see [`crate::multipath::MultipathController`] — the paper's §6
    /// future work).
    DacMultipath {
        /// Destination-selection algorithm `A`.
        policy: PolicySpec,
        /// Retrial control over members.
        retrial: RetrialPolicy,
        /// Alternate fixed routes per member (k of Yen's algorithm).
        paths_per_member: usize,
    },
    /// The SP baseline: always the nearest member, no retrials.
    ShortestPath,
    /// The GDI baseline: perfect global dynamic information, any path.
    GlobalDynamic,
}

impl SystemSpec {
    /// `<policy, R>` with the standard fixed retrial limit.
    pub fn dac(policy: PolicySpec, r: u32) -> Self {
        SystemSpec::Dac {
            policy,
            retrial: RetrialPolicy::FixedLimit(r),
        }
    }

    /// Multipath DAC with a fixed member-retrial limit and `k` routes per
    /// member.
    pub fn dac_multipath(policy: PolicySpec, r: u32, paths_per_member: usize) -> Self {
        SystemSpec::DacMultipath {
            policy,
            retrial: RetrialPolicy::FixedLimit(r),
            paths_per_member,
        }
    }

    /// The paper's label for this system, e.g. `<ED,2>`, `SP`, `GDI`;
    /// the multipath extension is labelled `<A,R,k>`.
    pub fn label(&self) -> String {
        match self {
            SystemSpec::Dac { policy, retrial } => {
                format!("<{},{}>", policy.name(), retrial.max_tries())
            }
            SystemSpec::DacMultipath {
                policy,
                retrial,
                paths_per_member,
            } => format!(
                "<{},{},k={}>",
                policy.name(),
                retrial.max_tries(),
                paths_per_member
            ),
            SystemSpec::ShortestPath => "SP".to_string(),
            SystemSpec::GlobalDynamic => "GDI".to_string(),
        }
    }
}

/// The arrival process shape (extension — the paper assumes Poisson).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Plain Poisson arrivals at rate λ (§5.1).
    Poisson,
    /// MMPP-2 bursty arrivals with long-run mean λ: the rate alternates
    /// between `λ·burstiness` and `λ·(2−burstiness)` with exponential
    /// sojourns of the given mean.
    Bursty {
        /// Burst intensity in `[1, 2)`; 1 ≈ Poisson.
        burstiness: f64,
        /// Mean sojourn in each modulating state, seconds.
        mean_sojourn_secs: f64,
    },
    /// Sinusoidal diurnal modulation of the Poisson rate: the instantaneous
    /// rate is `λ · (1 + amplitude · sin(2πt / period))`, so the long-run
    /// mean stays λ while load peaks and troughs once per period.
    Diurnal {
        /// Peak-to-mean excursion in `[0, 1)`.
        amplitude: f64,
        /// Length of one full cycle, seconds.
        period_secs: f64,
    },
    /// A flash crowd: Poisson at rate λ outside the window; inside
    /// `[start, start + duration)` the rate jumps to `λ · multiplier` and
    /// every arrival targets anycast group `group_index` — a burst of
    /// demand aimed at one service, the §4.1 stress case for
    /// destination-selection spreading.
    FlashCrowd {
        /// Window start, seconds.
        start_secs: f64,
        /// Window length, seconds.
        duration_secs: f64,
        /// Rate multiplier inside the window (≥ 1).
        multiplier: f64,
        /// The group (index into [`ExperimentConfig::effective_groups`])
        /// the crowd piles onto.
        group_index: usize,
    },
}

/// How the workload draws flow holding times (extension — the paper's
/// lifetimes are exponential).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum HoldingModel {
    /// Exponential lifetimes with the configured mean (§5.1). The default,
    /// bit-identical to the pre-knob workload.
    #[default]
    Exponential,
    /// Heavy-tailed Pareto-I lifetimes with the configured mean: most
    /// flows are short but a fat tail of long-lived flows pins bandwidth.
    Pareto {
        /// Tail exponent, `> 1` so the mean exists; smaller is heavier.
        shape: f64,
    },
}

impl HoldingModel {
    /// The concrete sampler drawing from this model at the given mean.
    fn sampler(&self, mean_secs: f64) -> HoldingSampler {
        match *self {
            HoldingModel::Exponential => HoldingSampler::exponential(mean_secs),
            HoldingModel::Pareto { shape } => HoldingSampler::pareto(mean_secs, shape),
        }
    }
}

/// One anycast group of a multi-service workload (extension — the paper
/// evaluates a single group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// The group's member routers.
    pub members: Vec<NodeId>,
    /// Relative share of the request stream targeting this group
    /// (need not be normalised; must be positive).
    pub share: f64,
}

/// One bandwidth class of a heterogeneous workload (extension beyond the
/// paper, whose flows all demand 64 kb/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandClass {
    /// Per-flow bandwidth demand of this class.
    pub bandwidth: Bandwidth,
    /// Relative frequency (need not be normalised; must be positive).
    pub weight: f64,
}

/// Parameters of the latency-aware two-phase signalling engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPhaseConfig {
    /// Propagation + processing delay per link crossing, in seconds.
    /// Zero with an inert `[signaling]` fault section degenerates to the
    /// atomic exchange bit-for-bit.
    pub per_hop_delay_secs: f64,
    /// How long the source waits for the RESV before abandoning the
    /// attempt and consulting the backoff policy. Unconfirmed per-hop
    /// holds expire on the same clock. `f64::INFINITY` disables both
    /// timers (setups then only fail via an explicit RESV_ERR).
    pub setup_timeout_secs: f64,
    /// Retransmission schedule for timed-out setups toward the same
    /// destination, applied before a §4.5 retrial is spent.
    pub backoff: BackoffPolicy,
}

impl Default for TwoPhaseConfig {
    /// 0 delay, 1 s setup timeout, default backoff.
    fn default() -> Self {
        TwoPhaseConfig {
            per_hop_delay_secs: 0.0,
            setup_timeout_secs: 1.0,
            backoff: BackoffPolicy::default(),
        }
    }
}

impl TwoPhaseConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the per-hop delay is negative or non-finite, or the
    /// setup timeout is not positive (infinity is allowed).
    pub fn validate(&self) {
        assert!(
            self.per_hop_delay_secs.is_finite() && self.per_hop_delay_secs >= 0.0,
            "per-hop signalling delay must be finite and non-negative, got {}",
            self.per_hop_delay_secs
        );
        assert!(
            self.setup_timeout_secs > 0.0 && !self.setup_timeout_secs.is_nan(),
            "setup timeout must be positive (infinity allowed), got {}",
            self.setup_timeout_secs
        );
        self.backoff.validate();
    }
}

/// How the §4.4 reservation exchange is performed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SignalingMode {
    /// The paper's model: the PATH/RESV exchange completes in one
    /// instant, so admission state is never stale.
    Atomic,
    /// Latency-aware two-phase signalling: PATH messages propagate hop by
    /// hop placing pending holds, a RESV confirms them, unconfirmed holds
    /// expire at the setup timeout, and timed-out setups are retransmitted
    /// under bounded backoff. Only valid for [`SystemSpec::Dac`].
    TwoPhase(TwoPhaseConfig),
}

/// Full description of one simulation run.
///
/// [`ExperimentConfig::paper_defaults`] reproduces §5.1; the `with_*`
/// builders tweak individual knobs for sweeps, ablations and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// PRNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Total anycast request rate λ in flows/second.
    pub lambda: f64,
    /// Mean exponential flow lifetime in seconds (paper: 180).
    pub mean_holding_secs: f64,
    /// Per-flow bandwidth demand (paper: 64 kb/s). Ignored when
    /// `demand_mix` is non-empty.
    pub flow_bandwidth: Bandwidth,
    /// Heterogeneous demand classes (extension). Empty means every flow
    /// demands `flow_bandwidth`, as in the paper.
    pub demand_mix: Vec<DemandClass>,
    /// Fraction of each link reserved for anycast flows (paper: 0.2).
    pub anycast_fraction: f64,
    /// Capacity assumed for links whose topology capacity is zero.
    pub default_link_capacity: Bandwidth,
    /// Transient period discarded from statistics, in seconds.
    pub warmup_secs: f64,
    /// Measured period after warm-up, in seconds.
    pub measure_secs: f64,
    /// The anycast group members (ignored when `groups` is non-empty).
    pub group_members: Vec<NodeId>,
    /// Multiple anycast groups sharing the network (extension). Empty
    /// means the single group of `group_members`, as in the paper.
    pub groups: Vec<GroupSpec>,
    /// The source routers whose hosts originate requests.
    pub sources: Vec<NodeId>,
    /// The admission system under test.
    pub system: SystemSpec,
    /// Shape of the request arrival process (extension; paper: Poisson).
    pub arrivals: ArrivalProcess,
    /// Holding-time distribution (extension; paper: exponential, which
    /// the default reproduces bit-for-bit).
    #[serde(default)]
    pub holding: HoldingModel,
    /// How per-source routes are obtained: the precomputed all-pairs
    /// [`RouteTable`](anycast_net::RouteTable) (the §3 reference) or the
    /// bounded on-demand [`RouteOracle`](anycast_net::RouteOracle). An
    /// execution knob, never an experimental parameter: both modes yield
    /// bit-identical routes (the paths are a pure function of the
    /// immutable topology), hence bit-identical metrics — the oracle
    /// equivalence tests are the proof.
    #[serde(default)]
    pub routing: RouteMode,
    /// Fault-injection plan (extension; the paper's analysis is
    /// fault-free, which [`FaultPlan::none`] reproduces exactly).
    pub faults: FaultPlan,
    /// How the reservation exchange is signalled (extension; the paper's
    /// exchange is atomic, which [`SignalingMode::Atomic`] reproduces
    /// exactly).
    pub signaling: SignalingMode,
    /// Batched same-quantum admission: drain every arrival that fires
    /// before the next non-arrival event into one batch and commit the
    /// members sequentially at their own timestamps. Bit-identical to
    /// one-at-a-time admission for every seed (the equivalence tests are
    /// the proof); it exists purely so candidate evaluation can run over
    /// flat contiguous arrays. Ignored (admission stays one-at-a-time)
    /// under event-driven two-phase signalling, whose exchanges interleave
    /// with arrivals by design.
    #[serde(default)]
    pub batch: bool,
    /// Worker threads for the read-only candidate-evaluation half of each
    /// arrival batch (route-bandwidth vectors, GDI residual searches),
    /// fanned out over a frozen sharded snapshot of the ledger. The commit
    /// loop stays sequential in arrival order, so results are bit-identical
    /// for every value; 1 (the default) evaluates inline. Only meaningful
    /// with `batch`. An execution knob, never an experimental parameter:
    /// it must not — and provably cannot — change any metric.
    #[serde(default = "default_batch_jobs")]
    pub batch_jobs: usize,
}

fn default_batch_jobs() -> usize {
    1
}

impl ExperimentConfig {
    /// The §5.1 setup on the MCI backbone: group at routers {0,4,8,12,16},
    /// sources at the odd routers, 64 kb/s flows living 180 s on average
    /// against a 20% anycast partition of 100 Mb/s links; 1800 s warm-up
    /// and 3600 s of measurement.
    pub fn paper_defaults(lambda: f64, system: SystemSpec) -> Self {
        ExperimentConfig {
            seed: 0x5EED,
            lambda,
            mean_holding_secs: 180.0,
            flow_bandwidth: Bandwidth::from_kbps(64),
            demand_mix: Vec::new(),
            anycast_fraction: 0.2,
            default_link_capacity: Bandwidth::from_mbps(100),
            warmup_secs: 1_800.0,
            measure_secs: 3_600.0,
            group_members: topologies::MCI_GROUP_MEMBERS.map(NodeId::new).to_vec(),
            groups: Vec::new(),
            sources: topologies::mci_source_nodes(),
            system,
            arrivals: ArrivalProcess::Poisson,
            holding: HoldingModel::Exponential,
            routing: RouteMode::Precomputed,
            faults: FaultPlan::none(),
            signaling: SignalingMode::Atomic,
            batch: false,
            batch_jobs: default_batch_jobs(),
        }
    }

    /// Replaces the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the measured duration.
    pub fn with_measure_secs(mut self, secs: f64) -> Self {
        self.measure_secs = secs;
        self
    }

    /// Replaces the warm-up duration.
    pub fn with_warmup_secs(mut self, secs: f64) -> Self {
        self.warmup_secs = secs;
        self
    }

    /// Replaces the anycast group members.
    pub fn with_group(mut self, members: Vec<NodeId>) -> Self {
        self.group_members = members;
        self
    }

    /// Replaces the source routers.
    pub fn with_sources(mut self, sources: Vec<NodeId>) -> Self {
        self.sources = sources;
        self
    }

    /// Replaces the per-flow bandwidth demand.
    pub fn with_flow_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.flow_bandwidth = bw;
        self
    }

    /// Replaces the admission system under test.
    pub fn with_system(mut self, system: SystemSpec) -> Self {
        self.system = system;
        self
    }

    /// Replaces the arrival-process shape (extension beyond the paper).
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Replaces the holding-time model (extension beyond the paper).
    pub fn with_holding_model(mut self, holding: HoldingModel) -> Self {
        self.holding = holding;
        self
    }

    /// Replaces the route-lookup mode (execution knob; metrics are
    /// bit-identical for every mode and cache capacity).
    pub fn with_routing(mut self, routing: RouteMode) -> Self {
        self.routing = routing;
        self
    }

    /// Installs a fault-injection plan (extension beyond the paper).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the signalling mode (extension beyond the paper).
    pub fn with_signaling(mut self, signaling: SignalingMode) -> Self {
        self.signaling = signaling;
        self
    }

    /// Toggles batched same-quantum admission (extension beyond the
    /// paper; metrics are bit-identical either way).
    pub fn with_batching(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the worker-thread count for in-batch candidate evaluation
    /// (execution knob; output is bit-identical for every value).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_batch_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs >= 1, "batch evaluation needs at least one worker");
        self.batch_jobs = jobs;
        self
    }

    /// Installs multiple anycast groups (extension beyond the paper).
    ///
    /// # Panics
    ///
    /// Panics if any share is non-positive or non-finite.
    pub fn with_groups(mut self, groups: Vec<GroupSpec>) -> Self {
        for g in &groups {
            assert!(
                g.share.is_finite() && g.share > 0.0,
                "group shares must be positive and finite"
            );
        }
        self.groups = groups;
        self
    }

    /// The effective group list: `groups` if set, else the single
    /// paper-style group.
    pub fn effective_groups(&self) -> Vec<GroupSpec> {
        if self.groups.is_empty() {
            vec![GroupSpec {
                members: self.group_members.clone(),
                share: 1.0,
            }]
        } else {
            self.groups.clone()
        }
    }

    /// Installs a heterogeneous demand mix (extension beyond the paper).
    ///
    /// # Panics
    ///
    /// Panics if any class weight is non-positive or non-finite.
    pub fn with_demand_mix(mut self, mix: Vec<DemandClass>) -> Self {
        for class in &mix {
            assert!(
                class.weight.is_finite() && class.weight > 0.0,
                "demand class weights must be positive and finite"
            );
        }
        self.demand_mix = mix;
        self
    }
}

/// Measured output of one run: the paper's two performance metrics plus
/// the supporting evidence (message counts, load levels, CIs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// The system's paper label (`<ED,2>`, `SP`, `GDI`, …).
    pub label: String,
    /// Arrival rate the run was driven at.
    pub lambda: f64,
    /// Seed the run used.
    pub seed: u64,
    /// Admission probability over the measured period.
    pub admission_probability: f64,
    /// 95% half-width of the admission probability estimate.
    pub ap_ci95: f64,
    /// Requests offered after warm-up.
    pub offered: u64,
    /// Requests admitted after warm-up.
    pub admitted: u64,
    /// Mean destinations tried per request (Figure 7's y-axis).
    pub mean_tries: f64,
    /// Mean retrials per request (tries beyond the first).
    pub mean_retrials: f64,
    /// Signaling messages during the measured period.
    pub messages: MessageLedger,
    /// Signaling messages per offered request.
    pub messages_per_request: f64,
    /// Time-average number of concurrently active flows.
    pub mean_active_flows: f64,
    /// Distribution of destinations tried per request: index `t` holds the
    /// number of requests that made exactly `t` tries.
    pub tries_histogram: Vec<u64>,
    /// Per-group admission probabilities, in `effective_groups` order
    /// (length 1 for paper-style single-group runs).
    pub per_group_ap: Vec<f64>,
    /// Time-average fraction of the network's total anycast partition
    /// held by reservations — the paper's "effectiveness" objective
    /// (§4.1: "maximize the bandwidth utilization to the possible
    /// extent").
    pub mean_network_utilization: f64,
    /// Fraction of admitted flows sent to each member, per group
    /// (`member_share[g][i]` for member `i` of group `g`) — how well the
    /// §4.1 goal of "randomly distribut\[ing\] anycast flows" is met.
    pub member_share: Vec<Vec<f64>>,
    /// Time-average fraction of links operational over the measured
    /// period (1.0 in fault-free runs).
    pub availability: f64,
    /// Flows torn down mid-service because a fault removed their path
    /// (counted over the whole run, warm-up included).
    pub flows_killed_by_failure: u64,
    /// Completed outages (failure followed by repair) over the run.
    pub outages: u64,
    /// Mean repair time over completed outages, seconds (0 when none).
    pub mean_recovery_secs: f64,
    /// Reservations orphaned by a lost teardown message over the run.
    pub orphaned_reservations: u64,
    /// Orphaned reservations whose bandwidth was recovered — by
    /// soft-state expiry, or early when a fault tore their path down.
    pub orphans_reclaimed: u64,
    /// Reserved bandwidth at the horizon not attributable to any
    /// surviving session, in bit/s per link-hop. Always 0 unless the
    /// bookkeeping leaks.
    pub leaked_bandwidth_bps: u64,
    /// Pending holds placed by two-phase PATH crossings, whole run.
    /// Zero under atomic signalling and in the degenerate zero-delay
    /// two-phase mode (whose exchange is instantaneous).
    pub holds_placed: u64,
    /// Unconfirmed holds returned by their expiry timers, whole run.
    pub holds_expired: u64,
    /// Two-phase setups whose RESV reached the source, whole run.
    pub setups_completed: u64,
    /// Timed-out setups retransmitted under the backoff policy, whole run.
    pub retransmits: u64,
    /// Signalling messages dropped by the `[signaling]` fault model,
    /// whole run.
    pub signaling_messages_lost: u64,
    /// Mean setup latency (first PATH send of the successful attempt to
    /// the RESV arriving at the source) over completions after warm-up.
    pub mean_setup_latency_secs: f64,
    /// Held (uncommitted) bandwidth still pending after the horizon
    /// drain, in bit/s per link-hop. Always 0 unless hold accounting
    /// leaks — the leak-freedom invariant.
    pub leaked_hold_bps: u64,
}

/// Internal event alphabet of the closed-loop simulation.
#[derive(Debug)]
pub(crate) enum Event {
    Arrival {
        source_index: usize,
        group_index: usize,
        holding_secs: f64,
        demand: Bandwidth,
        /// Whether this arrival carries the workload chain: a chained
        /// arrival draws and schedules its successor(s); an unchained one
        /// was pre-drawn by a flushed batch and admits as a singleton.
        /// Always `true` when batching is off.
        chain: bool,
    },
    Departure(SessionId),
    /// A delayed PATH_TEAR finally landing (control-plane delay model).
    Teardown(SessionId),
    /// One fault-plan action firing.
    Fault(FaultAction),
    /// Periodic soft-state refresh: live sources re-arm their sessions;
    /// orphans miss the refresh and eventually expire.
    RefreshSweep,
    /// Periodic telemetry link-state sample. Only ever scheduled when the
    /// recorder asks for it, and touches no RNG stream and no simulation
    /// state, so enabling the sampler cannot change the metrics.
    TelemetrySample,
    WarmupEnd,
    /// Two-phase: a PATH message starts crossing link `hop` of its route.
    PathHop {
        req: u64,
        setup: SetupId,
        hop: usize,
    },
    /// Two-phase: a RESV message starts crossing link `hop` back toward
    /// the source.
    ResvHop {
        req: u64,
        setup: SetupId,
        hop: usize,
    },
    /// Two-phase: a RESV_ERR message starts crossing link `hop` back
    /// toward the source, releasing the hold there.
    ResvErrHop {
        req: u64,
        setup: SetupId,
        hop: usize,
    },
    /// Two-phase: the RESV arrived at the source; commit the holds.
    SetupComplete {
        req: u64,
        setup: SetupId,
    },
    /// Two-phase: the RESV_ERR arrived at the source; the destination
    /// refused the attempt.
    SetupRefused {
        req: u64,
        setup: SetupId,
    },
    /// Two-phase: the source's setup timer fired before an answer came.
    SetupTimeout {
        req: u64,
        setup: SetupId,
    },
    /// Two-phase: the backoff delay elapsed; retransmit toward the same
    /// destination.
    RetrySetup(u64),
    /// Two-phase: wake-up for the hold-expiry timer wheel.
    HoldTick,
    /// Wake-up for the soft-state timer wheel: reclaim reservations whose
    /// refresh deadline passed, at the exact deadline.
    SoftTick,
}

/// One pre-drawn arrival waiting in the same-quantum batch: everything the
/// commit loop needs to admit it at its own timestamp. Kept flat and
/// `Copy` so the batch lives in one contiguous scratch buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ArrivalSlot {
    pub(crate) at: SimTime,
    pub(crate) source_index: usize,
    pub(crate) group_index: usize,
    pub(crate) holding_secs: f64,
    pub(crate) demand: Bandwidth,
}

/// Where the simulation's arrivals come from: the closed-loop workload of
/// the offline experiment, or an externally fed queue (trace replay, the
/// wire protocol) drained by the online engine.
enum Feed {
    /// Self-driving: each chain-head arrival draws its successor(s) from
    /// the workload, exactly as the offline experiment always has.
    Workload(WorkloadKind),
    /// Externally fed: successors are popped from this queue instead of
    /// drawn. When it runs dry the chain head is left unscheduled until
    /// the next submission re-arms it.
    External(VecDeque<ArrivalSlot>),
}

/// One finalised admission decision, captured by the online engine for
/// its callers (wire-protocol responses, replay diffing, benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Dense per-run request counter, assigned in arrival order.
    pub request: u64,
    /// Simulated time the decision was made at.
    pub at_secs: f64,
    /// Whether the flow was admitted.
    pub admitted: bool,
    /// Group member the flow went to (admitted only).
    pub member_index: Option<usize>,
    /// Installed reservation session (admitted only).
    pub session: Option<SessionId>,
    /// Destinations probed before the decision.
    pub tries: u32,
}

/// A point-in-time operational snapshot of a running (online) simulation:
/// the metrics endpoint of the admission daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSnapshot {
    /// Simulated time of the snapshot.
    pub time_secs: f64,
    /// Requests offered so far (measured period).
    pub offered: u64,
    /// Requests admitted so far (measured period).
    pub admitted: u64,
    /// Requests rejected so far (measured period).
    pub rejected: u64,
    /// Currently active reservations.
    pub active_sessions: usize,
    /// Reserved bandwidth across all links, bit/s.
    pub reserved_bps: u64,
    /// Pending (uncommitted two-phase hold) bandwidth, bit/s.
    pub pending_hold_bps: u64,
    /// Total anycast-partition capacity across all links, bit/s.
    pub capacity_bps: u64,
    /// Two-phase setups currently in flight.
    pub setups_in_flight: usize,
    /// Links in the topology.
    pub links: usize,
    /// Links currently failed.
    pub failed_links: usize,
    /// Width of the rolling measurement window, seconds (0 when the run
    /// measures over its whole finite horizon instead).
    pub window_secs: f64,
    /// Requests offered inside the trailing window (rolling mode only).
    pub window_offered: u64,
    /// Requests admitted inside the trailing window (rolling mode only).
    pub window_admitted: u64,
    /// Requests rejected inside the trailing window (rolling mode only).
    pub window_rejected: u64,
}

fn draw_group(group_shares: &[f64], rng: &mut SimRng) -> usize {
    if group_shares.len() == 1 {
        0
    } else {
        rng.choose_weighted(group_shares)
            .expect("group shares validated positive")
    }
}

fn draw_demand(config: &ExperimentConfig, demand_weights: &[f64], rng: &mut SimRng) -> Bandwidth {
    if config.demand_mix.is_empty() {
        config.flow_bandwidth
    } else {
        let idx = rng
            .choose_weighted(demand_weights)
            .expect("demand weights validated positive");
        config.demand_mix[idx].bandwidth
    }
}

/// A flash crowd aims every in-window arrival at its configured group.
///
/// The group stream is still *drawn* (and its result discarded) for every
/// arrival, so the RNG streams stay aligned and arrivals outside the
/// window are bit-identical to a run without the override.
fn flash_group_override(config: &ExperimentConfig, at: SimTime, drawn: usize) -> usize {
    if let ArrivalProcess::FlashCrowd {
        start_secs,
        duration_secs,
        group_index,
        ..
    } = config.arrivals
    {
        let t = at.as_secs();
        if t >= start_secs && t < start_secs + duration_secs {
            return group_index;
        }
    }
    drawn
}

/// Builds the configured workload, consuming the master stream's workload
/// forks. Shared by [`Sim::new`] and [`draw_arrival_trace`] so the two
/// consume identical fork sequences — the replay-equivalence contract.
fn build_workload(config: &ExperimentConfig, master_rng: &mut SimRng) -> WorkloadKind {
    let holding = config.holding.sampler(config.mean_holding_secs);
    match config.arrivals {
        ArrivalProcess::Poisson => WorkloadKind::Poisson(
            PoissonWorkload::new(
                config.lambda,
                config.mean_holding_secs,
                config.sources.len(),
                master_rng,
            )
            .with_holding(holding),
        ),
        ArrivalProcess::Bursty {
            burstiness,
            mean_sojourn_secs,
        } => WorkloadKind::Bursty(
            BurstyWorkload::with_mean_rate(
                config.lambda,
                burstiness,
                mean_sojourn_secs,
                config.mean_holding_secs,
                config.sources.len(),
                master_rng,
            )
            .with_holding(holding),
        ),
        ArrivalProcess::Diurnal {
            amplitude,
            period_secs,
        } => WorkloadKind::Modulated(
            ModulatedWorkload::new(
                config.lambda,
                RateEnvelope::Diurnal {
                    amplitude,
                    period_secs,
                },
                config.mean_holding_secs,
                config.sources.len(),
                master_rng,
            )
            .with_holding(holding),
        ),
        ArrivalProcess::FlashCrowd {
            start_secs,
            duration_secs,
            multiplier,
            ..
        } => WorkloadKind::Modulated(
            ModulatedWorkload::new(
                config.lambda,
                RateEnvelope::Window {
                    start_secs,
                    duration_secs,
                    multiplier,
                },
                config.mean_holding_secs,
                config.sources.len(),
                master_rng,
            )
            .with_holding(holding),
        ),
    }
}

/// The next arrival of the stream, in the exact draw order of the
/// pre-refactor sequential code (request, then demand, then group), or
/// `None` when an external feed has run dry.
fn next_feed_arrival(
    feed: &mut Feed,
    config: &ExperimentConfig,
    group_shares: &[f64],
    demand_weights: &[f64],
    demand_rng: &mut SimRng,
    group_rng: &mut SimRng,
) -> Option<ArrivalSlot> {
    match feed {
        Feed::Workload(workload) => {
            let next = workload.next_request();
            let demand = draw_demand(config, demand_weights, demand_rng);
            let group_index =
                flash_group_override(config, next.arrival, draw_group(group_shares, group_rng));
            Some(ArrivalSlot {
                at: next.arrival,
                source_index: next.source_index,
                group_index,
                holding_secs: next.holding.as_secs(),
                demand,
            })
        }
        Feed::External(queue) => queue.pop_front(),
    }
}

/// Draws a config's complete arrival process — every arrival inside
/// `[0, warmup + measure]` — without running any admission, in the exact
/// order the experiment itself draws it. This is the `record` fixture
/// generator: replaying the returned slots through an externally-fed
/// engine is bit-identical to the workload-driven run.
pub(crate) fn draw_arrival_trace(config: &ExperimentConfig) -> Vec<ArrivalSlot> {
    let mut master_rng = SimRng::seed_from(config.seed);
    let mut workload = build_workload(config, &mut master_rng);
    // Mirror Sim::new's fork order exactly: selection is forked (and
    // discarded here) before the demand and group streams.
    let _selection_rng = master_rng.fork();
    let mut demand_rng = master_rng.fork();
    let mut group_rng = master_rng.fork();
    let group_specs = config.effective_groups();
    let group_shares: Vec<f64> = group_specs.iter().map(|g| g.share).collect();
    let demand_weights: Vec<f64> = config.demand_mix.iter().map(|c| c.weight).collect();
    let horizon = SimTime::from_secs(config.warmup_secs + config.measure_secs);
    let mut out = Vec::new();
    loop {
        let next = workload.next_request();
        let demand = draw_demand(config, &demand_weights, &mut demand_rng);
        let group_index = flash_group_override(
            config,
            next.arrival,
            draw_group(&group_shares, &mut group_rng),
        );
        if next.arrival > horizon {
            return out;
        }
        out.push(ArrivalSlot {
            at: next.arrival,
            source_index: next.source_index,
            group_index,
            holding_secs: next.holding.as_secs(),
            demand,
        });
    }
}

/// Arrival-stream dispatch without a trait object (all variants are
/// concrete and cheap).
pub(crate) enum WorkloadKind {
    Poisson(PoissonWorkload),
    Bursty(BurstyWorkload),
    Modulated(ModulatedWorkload),
}

impl WorkloadKind {
    fn next_request(&mut self) -> FlowRequest {
        match self {
            WorkloadKind::Poisson(w) => w.next_request(),
            WorkloadKind::Bursty(w) => w.next_request(),
            WorkloadKind::Modulated(w) => w.next_request(),
        }
    }
}

/// Per-group admission machinery (controllers are per source within it).
enum SystemState {
    Dac(Vec<AdmissionController>),
    DacMulti(Box<MultipathRouteTable>, Vec<MultipathController>),
    Sp(Vec<ShortestPathSystem>),
    Gdi(GlobalDynamicSystem),
}

/// One request whose admission is in flight under event-driven two-phase
/// signalling: the controller's REPEAT-loop state, frozen between
/// messages.
struct PendingAdmission {
    source_index: usize,
    group_index: usize,
    demand: Bandwidth,
    holding_secs: f64,
    /// Destinations probed so far (≥ 1 once the first attempt starts).
    tries: u32,
    untried: Vec<bool>,
    /// Retransmissions already spent on the current destination.
    attempts_this_dest: u32,
    /// The destination currently being attempted.
    pick: usize,
    /// `pick`'s selection weight when it was drawn (for telemetry).
    pick_weight: f64,
    /// The weight vector of the current attempt — the §4.5 retrial
    /// decision uses the weights of the iteration that failed, exactly as
    /// the synchronous loop does.
    current_weights: Vec<f64>,
    /// The first draw's weight vector (a rejection's decision trace).
    weights_first: Vec<f64>,
    /// Every probed-and-failed destination, in order.
    steps: Vec<DecisionStep>,
    /// The live setup attempt; `None` between a timeout and its
    /// retransmission (stale answers for abandoned setups are dropped).
    setup: Option<SetupId>,
}

/// Runtime state of the event-driven two-phase signalling engine.
struct TwoPhaseState {
    cfg: TwoPhaseConfig,
    /// Degenerate mode: zero per-hop delay and an inert `[signaling]`
    /// fault section. The exchange runs synchronously at arrival and is
    /// bit-identical to the atomic engine (no timers, no events, no
    /// signalling telemetry).
    express: bool,
    sig: SignalingFaults,
    table: SetupTable,
    /// Request owning each setup, kept until the setup's state is reaped
    /// (in-flight messages for dead setups still need attribution).
    setup_req: HashMap<SetupId, u64>,
    pending: HashMap<u64, PendingAdmission>,
    holds: TimerWheel<(SetupId, usize)>,
    backoff_rng: SimRng,
    holds_placed: u64,
    holds_expired: u64,
    setups_completed: u64,
    retransmits: u64,
    msgs_lost: u64,
    latency_sum: f64,
    latency_count: u64,
}

/// One message crossing under the `[signaling]` fault model: `None` means
/// the message was dropped; `Some(d)` the crossing takes `d` seconds.
/// Draw order (loss first, then extra delay) is part of the determinism
/// contract, and each draw is guarded so an inert fault model consumes no
/// randomness at all.
fn transit(fault: &MessageFault, per_hop_secs: f64, rng: &mut SimRng) -> Option<f64> {
    if fault.loss_probability > 0.0 && rng.uniform() < fault.loss_probability {
        return None;
    }
    let mut d = per_hop_secs;
    if fault.extra_delay_secs > 0.0 {
        d += rng.exp_duration(fault.extra_delay_secs).as_secs();
    }
    Some(d)
}

/// Runs one closed-loop simulation and returns its metrics.
///
/// Deterministic: the same `(topo, config)` always produces the same
/// metrics. The run processes every arrival in
/// `[0, warmup_secs + measure_secs]`; departures beyond the horizon are
/// irrelevant to the reported statistics and are left unprocessed.
///
/// # Panics
///
/// Panics if the configuration is inconsistent with the topology (unknown
/// nodes, empty groups or sources, non-positive durations, an invalid
/// policy parameter, a disconnected topology, or a fault plan whose
/// scripted actions reference unknown links or nodes).
pub fn run_experiment(topo: &Topology, config: &ExperimentConfig) -> Metrics {
    run_experiment_traced(topo, config, &mut NullRecorder)
}

/// [`run_experiment`] with a telemetry [`Recorder`] capturing the run's
/// structured event stream: arrivals, per-request decision traces (probes,
/// retrials, rejections with weight vectors and skip reasons), reservation
/// lifecycle, chaos faults, and — when the recorder requests it — periodic
/// link-state samples.
///
/// The metrics returned are **bit-identical** to [`run_experiment`]'s for
/// any recorder: every hook is read-only with respect to simulation state
/// and consumes no randomness, and the sampler event is only scheduled
/// when [`Recorder::link_sample_interval`] asks for it. With a
/// [`NullRecorder`] the hooks reduce to a disabled-branch check, which is
/// the zero-overhead guarantee the guard tests assert.
///
/// # Panics
///
/// As [`run_experiment`].
pub fn run_experiment_traced(
    topo: &Topology,
    config: &ExperimentConfig,
    recorder: &mut dyn Recorder,
) -> Metrics {
    let (mut sim, mut engine) = Sim::new(topo, config, recorder, false);
    let horizon = sim.horizon;
    engine.run_until(horizon, |eng, now, event| sim.handle(eng, now, event));
    sim.finish(horizon).0
}

/// [`run_experiment`] plus the run's aggregated route-cache statistics:
/// `Some` (hits, misses, evictions, peak resident entries, …) when the
/// config's [`RouteMode`] is on-demand, `None` under the precomputed
/// reference table. The metrics are bit-identical to [`run_experiment`]'s
/// — the counters are observational, never consulted by the simulation.
pub fn run_experiment_with_route_stats(
    topo: &Topology,
    config: &ExperimentConfig,
) -> (Metrics, Option<RouteCacheStats>) {
    let mut recorder = NullRecorder;
    let recorder: &mut dyn Recorder = &mut recorder;
    let (mut sim, mut engine) = Sim::new(topo, config, recorder, false);
    let horizon = sim.horizon;
    engine.run_until(horizon, |eng, now, event| sim.handle(eng, now, event));
    let stats = sim.route_cache_stats();
    (sim.finish(horizon).0, stats)
}

/// The full state of one closed-loop simulation between events: every
/// table, RNG stream, statistic and timer the handler needs.
///
/// [`run_experiment_traced`] owns one for the duration of a run; the
/// online engine ([`crate::online::OnlineEngine`]) keeps one alive across
/// externally-submitted arrivals. Both drive the **same** [`Sim::handle`]
/// — there is exactly one admission/event code path, which is what makes
/// virtual-time replay bit-identical to the offline engine by
/// construction.
pub(crate) struct Sim<R: Recorder> {
    config: ExperimentConfig,
    topo: Topology,
    groups: Vec<AnycastGroup>,
    route_books: Vec<RouteBook>,
    links: LinkStateTable,
    rsvp: ReservationEngine,
    systems: Vec<SystemState>,
    selection_rng: SimRng,
    demand_rng: SimRng,
    group_rng: SimRng,
    fault_rng: SimRng,
    two_phase: Option<TwoPhaseState>,
    group_shares: Vec<f64>,
    demand_weights: Vec<f64>,
    warmup_end: SimTime,
    horizon: SimTime,
    stats: AdmissionStats,
    group_stats: Vec<AdmissionStats>,
    member_counts: Vec<Vec<u64>>,
    active: Option<TimeWeighted>,
    reserved_bw: Option<TimeWeighted>,
    availability: Option<TimeWeighted>,
    total_partition: f64,
    tracker: RefreshTracker,
    soft_wheel: TimerWheel<SessionId>,
    live_flows: HashSet<SessionId>,
    orphaned: HashSet<SessionId>,
    killed: HashSet<SessionId>,
    /// Sessions torn down early over the wire (`teardown` op): their
    /// still-scheduled holding-time [`Event::Departure`] must become a
    /// no-op, exactly as `killed` neutralises fault victims' departures.
    wire_torn: HashSet<SessionId>,
    book: FaultBook,
    refresh_interval: anycast_sim::Duration,
    control: ControlFaultModel,
    rec_on: bool,
    sample_interval: Option<f64>,
    next_request_id: u64,
    batching: bool,
    gdi_shared_links: bool,
    arrival_batch: Vec<ArrivalSlot>,
    feed: Feed,
    feed_head_scheduled: bool,
    capture_decisions: bool,
    decisions: Vec<Decision>,
    recorder: R,
}

impl<R: Recorder> Sim<R> {
    /// Builds the full simulation state and its event engine, scheduling
    /// warm-up end, the fault timeline, the refresh sweep, the optional
    /// telemetry sampler — and, unless `external`, the first workload
    /// arrival.
    ///
    /// # Panics
    ///
    /// As [`run_experiment`].
    pub(crate) fn new(
        topo: &Topology,
        config: &ExperimentConfig,
        recorder: R,
        external: bool,
    ) -> (Self, Engine<Event>) {
        assert!(
            config.measure_secs > 0.0 && config.warmup_secs >= 0.0,
            "durations must be positive"
        );
        assert!(!config.sources.is_empty(), "need at least one source");
        for s in &config.sources {
            assert!(topo.contains_node(*s), "source {s} not in topology");
        }
        let refresh = config.faults.refresh;
        assert!(
            refresh.refresh_interval_secs.is_finite() && refresh.refresh_interval_secs > 0.0,
            "refresh interval must be positive"
        );
        assert!(
            refresh.missed_refresh_limit > 0,
            "missed-refresh limit must be at least 1"
        );
        let control = config.faults.control;
        assert!(
            (0.0..=1.0).contains(&control.teardown_loss_probability),
            "teardown loss probability must lie in [0, 1]"
        );
        assert!(
            control.teardown_delay_secs.is_finite() && control.teardown_delay_secs >= 0.0,
            "teardown delay mean must be non-negative"
        );
        let two_phase_cfg = match config.signaling {
            SignalingMode::Atomic => None,
            SignalingMode::TwoPhase(cfg) => {
                cfg.validate();
                assert!(
                    matches!(config.system, SystemSpec::Dac { .. }),
                    "two-phase signalling requires the DAC system, got {}",
                    config.system.label()
                );
                Some(cfg)
            }
        };
        if let ArrivalProcess::FlashCrowd { group_index, .. } = config.arrivals {
            assert!(
                group_index < config.effective_groups().len(),
                "flash crowd targets unknown group index {group_index}"
            );
        }
        let group_specs = config.effective_groups();
        let mut groups = Vec::with_capacity(group_specs.len());
        let mut route_books = Vec::with_capacity(group_specs.len());
        for (gi, spec) in group_specs.iter().enumerate() {
            let group = AnycastGroup::new(format!("G{gi}"), spec.members.iter().copied())
                .expect("group must be non-empty");
            for m in group.members() {
                assert!(topo.contains_node(*m), "member {m} not in topology");
            }
            route_books.push(RouteBook::for_mode(config.routing, topo, &group));
            groups.push(group);
        }
        let links = LinkStateTable::with_uniform_fraction(
            topo,
            config.default_link_capacity,
            config.anycast_fraction,
        );
        let rsvp = ReservationEngine::new();

        // One distance buffer reused across every (group, source) pair —
        // the `distances_into` convention keeps controller construction
        // allocation-light even on datacenter-sized source sets.
        let mut dist_buf: Vec<u32> = Vec::new();
        let mut systems: Vec<SystemState> = Vec::with_capacity(groups.len());
        for (group, book) in groups.iter().zip(route_books.iter_mut()) {
            systems.push(match &config.system {
                SystemSpec::Dac { policy, retrial } => SystemState::Dac(
                    config
                        .sources
                        .iter()
                        .map(|&s| {
                            book.distances_into(topo, s, &mut dist_buf)
                                .expect("sources are in the topology and reach every member");
                            AdmissionController::new(
                                policy.build().expect("policy parameters validated"),
                                *retrial,
                                dist_buf.clone(),
                            )
                        })
                        .collect(),
                ),
                SystemSpec::DacMultipath {
                    policy,
                    retrial,
                    paths_per_member,
                } => {
                    let table = MultipathRouteTable::build(topo, group, *paths_per_member);
                    let controllers = config
                        .sources
                        .iter()
                        .map(|&s| {
                            MultipathController::new(
                                policy.build().expect("policy parameters validated"),
                                *retrial,
                                table.distances(s),
                            )
                        })
                        .collect();
                    SystemState::DacMulti(Box::new(table), controllers)
                }
                SystemSpec::ShortestPath => SystemState::Sp(
                    config
                        .sources
                        .iter()
                        .map(|&s| {
                            ShortestPathSystem::new(
                                book.nearest_member(topo, s)
                                    .expect("sources are in the topology and reach every member"),
                            )
                        })
                        .collect(),
                ),
                SystemSpec::GlobalDynamic => SystemState::Gdi(GlobalDynamicSystem::new()),
            });
        }

        let mut master_rng = SimRng::seed_from(config.seed);
        let workload = build_workload(config, &mut master_rng);
        let selection_rng = master_rng.fork();
        let mut demand_rng = master_rng.fork();
        let mut group_rng = master_rng.fork();
        // Forked last so the fault stream never perturbs the workload,
        // selection, demand or group streams: a run under FaultPlan::none()
        // is bit-identical to one that predates fault injection.
        let mut fault_rng = master_rng.fork();
        // Forked after the fault stream (and only ever drawn from by backoff
        // jitter) so enabling two-phase signalling perturbs no earlier
        // stream.
        let backoff_rng = master_rng.fork();
        let two_phase: Option<TwoPhaseState> = two_phase_cfg.map(|cfg| TwoPhaseState {
            cfg,
            express: cfg.per_hop_delay_secs == 0.0 && config.faults.signaling.is_inert(),
            sig: config.faults.signaling,
            table: SetupTable::new(),
            setup_req: HashMap::new(),
            pending: HashMap::new(),
            holds: TimerWheel::new(),
            backoff_rng,
            holds_placed: 0,
            holds_expired: 0,
            setups_completed: 0,
            retransmits: 0,
            msgs_lost: 0,
            latency_sum: 0.0,
            latency_count: 0,
        });
        let group_shares: Vec<f64> = group_specs.iter().map(|g| g.share).collect();
        let demand_weights: Vec<f64> = config.demand_mix.iter().map(|c| c.weight).collect();

        let warmup_end = SimTime::from_secs(config.warmup_secs);
        let horizon = SimTime::from_secs(config.warmup_secs + config.measure_secs);
        let stats = AdmissionStats::new(warmup_end);
        let group_stats: Vec<AdmissionStats> = group_specs
            .iter()
            .map(|_| AdmissionStats::new(warmup_end))
            .collect();
        let member_counts: Vec<Vec<u64>> = groups.iter().map(|g| vec![0u64; g.len()]).collect();
        let active: Option<TimeWeighted> = None;
        let reserved_bw: Option<TimeWeighted> = None;
        let total_partition: f64 = links.iter().map(|(_, s)| s.capacity.bps() as f64).sum();

        // --- Fault-injection state ---------------------------------------
        // The timeline is expanded up front (deterministically, from its own
        // forked stream) and scheduled as ordinary events; the soft-state
        // tracker runs even in fault-free experiments, so reservation
        // lifecycle behaviour never depends on whether faults are possible.
        let tracker = RefreshTracker::new(refresh);
        // Exact-deadline soft-state expiry: every register/refresh arms this
        // wheel at the session's deadline; a SoftTick event reclaims expired
        // orphans the moment their lifetime ends, instead of waiting for the
        // next sweep to poll. Fault-free runs pop nothing (live sessions are
        // refreshed well before their deadlines), so the wheel cannot perturb
        // them.
        let soft_wheel: TimerWheel<SessionId> = TimerWheel::new();
        let live_flows: HashSet<SessionId> = HashSet::new();
        let orphaned: HashSet<SessionId> = HashSet::new();
        let killed: HashSet<SessionId> = HashSet::new();
        let wire_torn: HashSet<SessionId> = HashSet::new();
        let book = FaultBook::new();
        let availability: Option<TimeWeighted> = None;
        let refresh_interval = anycast_sim::Duration::from_secs(refresh.refresh_interval_secs);

        // --- Telemetry state ---------------------------------------------
        // `rec_on` is hoisted so disabled runs pay one branch per hook and
        // never construct an event. The sampler is only scheduled when the
        // recorder asks for it; its handler is read-only and consumes no
        // randomness, so it cannot perturb the metrics.
        let rec_on = recorder.enabled();
        let sample_interval = recorder.link_sample_interval();
        let next_request_id: u64 = 0;

        let mut engine: Engine<Event> = Engine::new();
        engine.schedule_at(warmup_end, Event::WarmupEnd);
        if let Some(interval_secs) = sample_interval {
            assert!(
                interval_secs.is_finite() && interval_secs > 0.0,
                "link sample interval must be positive"
            );
            engine.schedule_at(SimTime::from_secs(interval_secs), Event::TelemetrySample);
        }
        let fault_members: Vec<NodeId> = groups
            .iter()
            .flat_map(|g| g.members().iter().copied())
            .collect();
        let timeline = build_timeline(
            &config.faults,
            topo,
            &fault_members,
            config.warmup_secs + config.measure_secs,
            &mut fault_rng,
        );
        for ev in timeline.events() {
            engine.schedule_at(SimTime::from_secs(ev.at_secs), Event::Fault(ev.action));
        }
        engine.schedule_at(
            SimTime::from_secs(refresh.refresh_interval_secs),
            Event::RefreshSweep,
        );
        // The arrival feed. Offline runs draw the chain head from the
        // workload now; externally-fed (online) runs start with an empty
        // queue and schedule heads as arrivals are submitted. The workload
        // was constructed — consuming its RNG forks — in both modes, so the
        // selection/demand/group/fault/backoff streams are seeded identically
        // either way; that is what makes virtual-time replay of a recorded
        // trace bit-identical to the offline engine.
        let mut feed = if external {
            Feed::External(VecDeque::new())
        } else {
            Feed::Workload(workload)
        };
        let feed_head_scheduled = !external;
        if let Feed::Workload(w) = &mut feed {
            let first = w.next_request();
            let first_demand = draw_demand(config, &demand_weights, &mut demand_rng);
            let first_group = flash_group_override(
                config,
                first.arrival,
                draw_group(&group_shares, &mut group_rng),
            );
            engine.schedule_at(
                first.arrival,
                Event::Arrival {
                    source_index: first.source_index,
                    group_index: first_group,
                    holding_secs: first.holding.as_secs(),
                    demand: first_demand,
                    chain: true,
                },
            );
        }

        // --- Batched same-quantum admission -------------------------------
        // Under event-driven two-phase signalling an admission spans many
        // events, so arrivals cannot be pre-drained past it; batching silently
        // degrades to the sequential path there. The express (degenerate)
        // two-phase mode is synchronous and batches fine.
        let async_mode = matches!(config.system, SystemSpec::Dac { .. })
            && two_phase.as_ref().is_some_and(|tp| !tp.express);
        let batching = config.batch && !async_mode;
        // The GDI residual-search memo is only exact when every link mutation
        // within a batch comes through the memo's own system; with several
        // groups sharing links, each group's system is blind to the others'
        // reservations, so the memo is reset per member (making the batched
        // evaluator a plain sequential search there).
        let gdi_shared_links = group_specs.len() > 1;
        let arrival_batch: Vec<ArrivalSlot> = Vec::new();

        let sim = Sim {
            config: config.clone(),
            topo: topo.clone(),
            groups,
            route_books,
            links,
            rsvp,
            systems,
            selection_rng,
            demand_rng,
            group_rng,
            fault_rng,
            two_phase,
            group_shares,
            demand_weights,
            warmup_end,
            horizon,
            stats,
            group_stats,
            member_counts,
            active,
            reserved_bw,
            availability,
            total_partition,
            tracker,
            soft_wheel,
            live_flows,
            orphaned,
            killed,
            wire_torn,
            book,
            refresh_interval,
            control,
            rec_on,
            sample_interval,
            next_request_id,
            batching,
            gdi_shared_links,
            arrival_batch,
            feed,
            feed_head_scheduled,
            capture_decisions: false,
            decisions: Vec::new(),
            recorder,
        };
        (sim, engine)
    }

    /// Processes one event — the single admission/bookkeeping code path
    /// shared by the offline and online engines.
    pub(crate) fn handle(&mut self, eng: &mut Engine<Event>, now: SimTime, event: Event) {
        let rec_on = self.rec_on;
        let batching = self.batching;
        let gdi_shared_links = self.gdi_shared_links;
        let warmup_end = self.warmup_end;
        let horizon = self.horizon;
        let control = self.control;
        let refresh_interval = self.refresh_interval;
        let sample_interval = self.sample_interval;
        let capture_decisions = self.capture_decisions;
        // Destructure so the macros below can borrow many fields at once,
        // exactly as the original closure captured its locals.
        let Sim {
            config,
            topo,
            groups,
            route_books,
            links,
            rsvp,
            systems,
            selection_rng,
            demand_rng,
            group_rng,
            fault_rng,
            two_phase,
            group_shares,
            demand_weights,
            stats,
            group_stats,
            member_counts,
            active,
            reserved_bw,
            availability,
            tracker,
            soft_wheel,
            live_flows,
            orphaned,
            killed,
            wire_torn,
            book,
            next_request_id,
            arrival_batch,
            feed,
            feed_head_scheduled,
            decisions,
            recorder,
            ..
        } = self;
        let recorder: &mut dyn Recorder = recorder;
        // Local macros instead of closures: the bookkeeping below needs
        // simultaneous mutable access to many captured bindings (stats,
        // telemetry, the two-phase tables, the engine itself), which no
        // single helper closure could borrow at once.
        // `$at` is the simulated instant the update happens at: `now` for
        // ordinary events, a batch member's own timestamp during a batched
        // commit loop.
        macro_rules! tw_note {
            ($at:expr) => {{
                if let Some(tw) = active.as_mut() {
                    tw.update($at, rsvp.active_sessions() as f64);
                }
                if let Some(tw) = reserved_bw.as_mut() {
                    tw.update($at, links.total_reserved().bps() as f64);
                }
            }};
        }
        // Register a session with the soft-state tracker and arm its
        // exact-deadline expiry timer.
        macro_rules! soft_track {
            ($session:expr, $at:expr) => {{
                let s = $session;
                tracker.register(s, $at.as_secs());
                let deadline = tracker.deadline(s).expect("session was just registered");
                soft_wheel.arm(s, deadline);
                if let Some(tick) = soft_wheel.tick_needed() {
                    eng.schedule_at(SimTime::from_secs(tick), Event::SoftTick);
                }
            }};
        }
        macro_rules! soft_forget {
            ($session:expr) => {{
                let s = $session;
                tracker.forget(s);
                soft_wheel.cancel(&s);
            }};
        }
        // Finish an event-mode two-phase admission: credit the
        // destination, record stats/telemetry, start the flow's lifecycle.
        macro_rules! admit_complete {
            ($req:expr, $session:expr, $hops:expr, $started_secs:expr) => {{
                let req = $req;
                let session = $session;
                let p = two_phase
                    .as_mut()
                    .expect("two-phase arms only run in two-phase mode")
                    .pending
                    .remove(&req)
                    .expect("completing setups belong to a pending admission");
                match &mut systems[p.group_index] {
                    SystemState::Dac(controllers) => {
                        controllers[p.source_index].note_success(p.pick)
                    }
                    _ => unreachable!("two-phase signalling is DAC-only"),
                }
                let latency = now.as_secs() - $started_secs;
                {
                    let tp = two_phase.as_mut().expect("checked above");
                    tp.setups_completed += 1;
                    if now >= warmup_end {
                        tp.latency_sum += latency;
                        tp.latency_count += 1;
                    }
                }
                if rec_on {
                    recorder.record(
                        now.as_secs(),
                        TelemetryEvent::DestinationProbe {
                            request: req,
                            member_index: p.pick,
                            weight: p.pick_weight,
                            result: ProbeResult::Admitted,
                        },
                    );
                    recorder.record(
                        now.as_secs(),
                        TelemetryEvent::ReservationSetup {
                            request: req,
                            session,
                            member_index: p.pick,
                            hops: $hops,
                            tries: p.tries,
                        },
                    );
                    recorder.record(
                        now.as_secs(),
                        TelemetryEvent::SetupCompleted {
                            request: req,
                            session,
                            latency_secs: latency,
                        },
                    );
                }
                stats.record(now, true, p.tries);
                group_stats[p.group_index].record(now, true, p.tries);
                if capture_decisions {
                    decisions.push(Decision {
                        request: req,
                        at_secs: now.as_secs(),
                        admitted: true,
                        member_index: Some(p.pick),
                        session: Some(session),
                        tries: p.tries,
                    });
                }
                if now >= warmup_end {
                    member_counts[p.group_index][p.pick] += 1;
                }
                live_flows.insert(session);
                soft_track!(session, now);
                eng.schedule_in(
                    now,
                    anycast_sim::Duration::from_secs(p.holding_secs),
                    Event::Departure(session),
                );
                tw_note!(now);
            }};
        }
        // Launch (or relaunch) the setup toward the pending admission's
        // currently picked destination.
        macro_rules! start_attempt {
            ($req:expr) => {{
                let req = $req;
                let tp = two_phase.as_mut().expect("two-phase mode");
                let (gi, si, pick, demand) = {
                    let p = tp
                        .pending
                        .get(&req)
                        .expect("attempt needs a pending admission");
                    (p.group_index, p.source_index, p.pick, p.demand)
                };
                let route = route_books[gi]
                    .routes(&*topo, config.sources[si])
                    .expect("configured sources have routes to every member")[pick]
                    .clone();
                if route.hops() == 0 {
                    // The member is local: zero links to signal over, so the
                    // setup completes on the spot — same as the atomic engine.
                    let out = tp
                        .table
                        .run_express(&mut *rsvp, &mut *links, &route, demand, now.as_secs())
                        .expect("zero-hop routes always admit");
                    admit_complete!(req, out.session, 0, now.as_secs());
                } else {
                    let setup = tp.table.begin(route, demand, now.as_secs());
                    tp.setup_req.insert(setup, req);
                    tp.pending.get_mut(&req).expect("still pending").setup = Some(setup);
                    if tp.cfg.setup_timeout_secs.is_finite() {
                        eng.schedule_in(
                            now,
                            anycast_sim::Duration::from_secs(tp.cfg.setup_timeout_secs),
                            Event::SetupTimeout { req, setup },
                        );
                    }
                    eng.schedule_at(now, Event::PathHop { req, setup, hop: 0 });
                }
            }};
        }
        // A setup attempt failed (refusal or timeout): charge the
        // destination, then either retry another member (§4.5) or reject.
        macro_rules! resolve_failed_attempt {
            ($req:expr, $skip:expr) => {{
                let req = $req;
                let skip = $skip;
                let tp = two_phase.as_mut().expect("two-phase mode");
                let (gi, si, pick, pick_weight, tries) = {
                    let p = tp
                        .pending
                        .get_mut(&req)
                        .expect("failed attempts belong to a pending admission");
                    p.setup = None;
                    p.untried[p.pick] = false;
                    p.steps.push(DecisionStep {
                        member_index: p.pick,
                        weight: p.pick_weight,
                        skip,
                    });
                    (
                        p.group_index,
                        p.source_index,
                        p.pick,
                        p.pick_weight,
                        p.tries,
                    )
                };
                let controllers = match &mut systems[gi] {
                    SystemState::Dac(controllers) => controllers,
                    _ => unreachable!("two-phase signalling is DAC-only"),
                };
                controllers[si].note_failure(pick);
                if rec_on {
                    recorder.record(
                        now.as_secs(),
                        TelemetryEvent::DestinationProbe {
                            request: req,
                            member_index: pick,
                            weight: pick_weight,
                            result: ProbeResult::Skipped(skip),
                        },
                    );
                }
                // The §4.5 decision looks at the weights the failed pick was
                // drawn from; a retrial then re-reads link state for fresh
                // weights, exactly like the atomic controller.
                let decision = {
                    let p = tp.pending.get(&req).expect("still pending");
                    controllers[si].retrial_weight(tries, &p.current_weights, &p.untried)
                };
                match decision {
                    Some(remaining_weight) => {
                        if rec_on {
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::Retrial {
                                    request: req,
                                    tries_so_far: tries,
                                    remaining_weight,
                                },
                            );
                        }
                        let routes = route_books[gi]
                            .routes(&*topo, config.sources[si])
                            .expect("configured sources have routes to every member");
                        let weights = controllers[si].selection_weights(&routes, &*links);
                        let p = tp.pending.get_mut(&req).expect("still pending");
                        let next_pick = AdmissionController::pick_destination(
                            &weights,
                            &p.untried,
                            &mut *selection_rng,
                        )
                        .expect("a granted retrial implies an untried member");
                        p.tries += 1;
                        p.attempts_this_dest = 0;
                        p.pick = next_pick;
                        p.pick_weight = weights[next_pick];
                        p.current_weights = weights;
                        start_attempt!(req);
                    }
                    None => {
                        let p = tp.pending.remove(&req).expect("still pending");
                        stats.record(now, false, p.tries);
                        group_stats[p.group_index].record(now, false, p.tries);
                        if capture_decisions {
                            decisions.push(Decision {
                                request: req,
                                at_secs: now.as_secs(),
                                admitted: false,
                                member_index: None,
                                session: None,
                                tries: p.tries,
                            });
                        }
                        if rec_on {
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::Rejection {
                                    request: req,
                                    tries: p.tries,
                                    trace: DecisionTrace {
                                        weights: p.weights_first,
                                        steps: p.steps,
                                    },
                                },
                            );
                        }
                    }
                }
            }};
        }
        // The complete admission of one arrival, committed at `$at`: `now`
        // on the sequential path, the member's own timestamp inside a
        // batched commit loop (stats, telemetry, the departure timer and
        // the time-weighted accumulators all see the member's true arrival
        // instant, which is what makes batching bit-identical).
        macro_rules! process_arrival {
            ($at:expr, $source_index:expr, $group_index:expr, $holding_secs:expr, $demand:expr) => {{
                let at = $at;
                let source_index = $source_index;
                let group_index = $group_index;
                let holding_secs = $holding_secs;
                let demand = $demand;
                let source = config.sources[source_index];
                let group = &groups[group_index];
                // SP and the single-path DAC walk the fixed routes; GDI
                // searches the live topology and multipath keeps its own
                // fan table, so only the former consult the route book
                // (and, in on-demand mode, touch the oracle's cache).
                let route_set: Option<RouteSet> = match &systems[group_index] {
                    SystemState::Dac(_) | SystemState::Sp(_) => Some(
                        route_books[group_index]
                            .routes(&*topo, source)
                            .expect("configured sources have routes to every member"),
                    ),
                    _ => None,
                };
                let routes = route_set.as_deref();
                let request_id = *next_request_id;
                *next_request_id += 1;
                if rec_on {
                    recorder.record(
                        at.as_secs(),
                        TelemetryEvent::RequestArrival {
                            request: request_id,
                            source,
                            group: group_index,
                            demand_bps: demand.bps(),
                        },
                    );
                }
                let async_two_phase = matches!(
                    (&systems[group_index], two_phase.as_ref()),
                    (SystemState::Dac(_), Some(tp)) if !tp.express
                );
                if async_two_phase {
                    // Event-driven two-phase signalling: pick a destination
                    // now (same RNG draw order as the atomic controller) and
                    // launch the PATH; admission resolves when the exchange
                    // does. Batching is always off here, so `at == now`.
                    let controllers = match &mut systems[group_index] {
                        SystemState::Dac(controllers) => controllers,
                        _ => unreachable!("checked above"),
                    };
                    let weights = controllers[source_index]
                        .selection_weights(routes.expect("DAC fetched its routes"), &*links);
                    let untried = vec![true; weights.len()];
                    let pick = AdmissionController::pick_destination(
                        &weights,
                        &untried,
                        &mut *selection_rng,
                    )
                    .expect("anycast groups are non-empty");
                    let tp = two_phase.as_mut().expect("checked above");
                    tp.pending.insert(
                        request_id,
                        PendingAdmission {
                            source_index,
                            group_index,
                            demand,
                            holding_secs,
                            tries: 1,
                            untried,
                            attempts_this_dest: 0,
                            pick,
                            pick_weight: weights[pick],
                            weights_first: weights.clone(),
                            current_weights: weights,
                            steps: Vec::new(),
                            setup: None,
                        },
                    );
                    start_attempt!(request_id);
                } else {
                    let mut tracer = RequestTracer::new(&mut *recorder, at.as_secs(), request_id);
                    let outcome: AdmissionOutcome = match &mut systems[group_index] {
                        SystemState::Dac(controllers) => match two_phase.as_mut() {
                            // Degenerate two-phase (zero delay, inert faults):
                            // synchronous per-hop walk, bit-identical to atomic.
                            Some(tp) => controllers[source_index].admit_two_phase_express(
                                routes.expect("DAC fetched its routes"),
                                &mut *links,
                                &mut *rsvp,
                                &mut tp.table,
                                demand,
                                at.as_secs(),
                                &mut *selection_rng,
                                &mut tracer,
                            ),
                            None => controllers[source_index].admit_traced(
                                routes.expect("DAC fetched its routes"),
                                &mut *links,
                                &mut *rsvp,
                                demand,
                                &mut *selection_rng,
                                &mut tracer,
                            ),
                        },
                        SystemState::DacMulti(table, controllers) => {
                            let out = controllers[source_index]
                                .admit(
                                    table.routes_from(source),
                                    &mut *links,
                                    &mut *rsvp,
                                    demand,
                                    &mut *selection_rng,
                                )
                                .outcome;
                            // The multipath controller is not internally traced;
                            // emit lifecycle summaries (hops unknown → 0, empty
                            // decision trace) so the stream still closes every
                            // request.
                            match &out.admitted {
                                Some(flow) => tracer.finish_admitted(
                                    flow.session,
                                    flow.member_index,
                                    0,
                                    out.tries,
                                ),
                                None => tracer.finish_rejected(out.tries),
                            }
                            out
                        }
                        SystemState::Sp(per_source) => per_source[source_index].admit_traced(
                            routes.expect("SP fetched its routes"),
                            &mut *links,
                            &mut *rsvp,
                            demand,
                            &mut tracer,
                        ),
                        SystemState::Gdi(gdi) => {
                            if batching {
                                // Multiple groups admit interleaved through
                                // separate GDI instances, so each other's
                                // reservations would invisibly stale the
                                // memo; reset it per member there.
                                if gdi_shared_links {
                                    gdi.begin_batch();
                                }
                                gdi.admit_batched_traced(
                                    topo,
                                    group,
                                    source,
                                    &mut *links,
                                    &mut *rsvp,
                                    demand,
                                    &mut tracer,
                                )
                            } else {
                                gdi.admit_traced(
                                    topo,
                                    group,
                                    source,
                                    &mut *links,
                                    &mut *rsvp,
                                    demand,
                                    &mut tracer,
                                )
                            }
                        }
                    };
                    drop(tracer);
                    if capture_decisions {
                        decisions.push(Decision {
                            request: request_id,
                            at_secs: at.as_secs(),
                            admitted: outcome.is_admitted(),
                            member_index: outcome.admitted.as_ref().map(|f| f.member_index),
                            session: outcome.admitted.as_ref().map(|f| f.session),
                            tries: outcome.tries,
                        });
                    }
                    stats.record(at, outcome.is_admitted(), outcome.tries);
                    group_stats[group_index].record(at, outcome.is_admitted(), outcome.tries);
                    if at >= warmup_end {
                        if let Some(flow) = &outcome.admitted {
                            member_counts[group_index][flow.member_index] += 1;
                        }
                    }
                    if let Some(flow) = outcome.admitted {
                        live_flows.insert(flow.session);
                        soft_track!(flow.session, at);
                        eng.schedule_in(
                            at,
                            anycast_sim::Duration::from_secs(holding_secs),
                            Event::Departure(flow.session),
                        );
                    }
                }
                tw_note!(at);
            }};
        }
        match event {
            Event::Arrival {
                source_index,
                group_index,
                holding_secs,
                demand,
                chain,
            } => {
                if !batching {
                    process_arrival!(now, source_index, group_index, holding_secs, demand);
                    match next_feed_arrival(
                        feed,
                        config,
                        group_shares,
                        demand_weights,
                        demand_rng,
                        group_rng,
                    ) {
                        Some(next) => eng.schedule_at(
                            next.at,
                            Event::Arrival {
                                source_index: next.source_index,
                                group_index: next.group_index,
                                holding_secs: next.holding_secs,
                                demand: next.demand,
                                chain: true,
                            },
                        ),
                        None => *feed_head_scheduled = false,
                    }
                    return;
                }
                if !chain {
                    // Pre-drawn member of a flushed batch: admit it as a
                    // batch of one. The chain head scheduled by the flush
                    // carries the draw-and-schedule duty, so no successor
                    // is drawn here.
                    if let SystemState::Gdi(gdi) = &mut systems[group_index] {
                        gdi.begin_batch();
                    }
                    process_arrival!(now, source_index, group_index, holding_secs, demand);
                    return;
                }
                // Drain every arrival that fires strictly before the next
                // pending event (and inside the horizon) into one batch.
                // Strictness matters: an arrival tying with a pending event
                // loses the FIFO race (the event was scheduled first), so
                // it cannot be pre-committed past that event. The drain
                // draws only from the workload/demand/group streams, in
                // arrival order — exactly the order the sequential path
                // draws them — and the admission streams are untouched
                // until the commit loop below, so every RNG stream sees
                // the sequential draw order.
                arrival_batch.clear();
                arrival_batch.push(ArrivalSlot {
                    at: now,
                    source_index,
                    group_index,
                    holding_secs,
                    demand,
                });
                loop {
                    let Some(next) = next_feed_arrival(
                        feed,
                        config,
                        group_shares,
                        demand_weights,
                        demand_rng,
                        group_rng,
                    ) else {
                        // Externally-fed and the queue ran dry: the next
                        // submission re-arms the chain head.
                        *feed_head_scheduled = false;
                        break;
                    };
                    let same_quantum =
                        next.at <= horizon && eng.peek_time().is_none_or(|p| next.at < p);
                    if same_quantum {
                        arrival_batch.push(next);
                    } else {
                        eng.schedule_at(
                            next.at,
                            Event::Arrival {
                                source_index: next.source_index,
                                group_index: next.group_index,
                                holding_secs: next.holding_secs,
                                demand: next.demand,
                                chain: true,
                            },
                        );
                        break;
                    }
                }
                // Commit sequentially in timestamp order, each member at
                // its own instant. The batch boundary is where the GDI
                // memo (and any future snapshot evaluator) resets.
                for sys in systems.iter_mut() {
                    if let SystemState::Gdi(gdi) = sys {
                        gdi.begin_batch();
                    }
                }
                // --- Parallel candidate pre-evaluation --------------------
                // The read-only half of the batch: compute, against the
                // frozen batch-start snapshot, the route-bandwidth vectors
                // (DAC) and exhaustive residual searches (GDI) that the
                // commit loop is about to ask for, and install them in the
                // caches the sequential path already consults. Priming is
                // value-identical to lazy computation — the caches' own
                // exactness invariants are the proof — and consumes no RNG,
                // so every metric, decision and telemetry byte is unchanged
                // for every `batch_jobs` value, including 1.
                if arrival_batch.len() > 1 {
                    enum PrimeTask {
                        /// Route-bandwidth vector for one (group, source)
                        /// DAC controller. The routes are fetched from the
                        /// book *sequentially* at task-build time (the
                        /// oracle needs `&mut`); the cheap shared
                        /// [`RouteSet`] handle then crosses into the
                        /// worker threads.
                        RouteBw {
                            group: usize,
                            source: usize,
                            routes: RouteSet,
                        },
                        /// Exhaustive residual search for one GDI
                        /// (group, source node, demand) triple.
                        Gdi {
                            group: usize,
                            source: NodeId,
                            demand: Bandwidth,
                        },
                    }
                    enum PrimeResult {
                        RouteBw(Vec<f64>),
                        Gdi(Vec<bool>, Option<(usize, Path)>),
                    }
                    let mut tasks: Vec<PrimeTask> = Vec::new();
                    for slot in arrival_batch.iter() {
                        match &systems[slot.group_index] {
                            SystemState::Dac(controllers)
                                if controllers[slot.source_index].needs_route_bandwidth()
                                    && !tasks.iter().any(|t| {
                                        matches!(t,
                                        PrimeTask::RouteBw { group, source, .. }
                                            if *group == slot.group_index
                                                && *source == slot.source_index)
                                    }) =>
                            {
                                let routes = route_books[slot.group_index]
                                    .routes(&*topo, config.sources[slot.source_index])
                                    .expect("configured sources have routes to every member");
                                tasks.push(PrimeTask::RouteBw {
                                    group: slot.group_index,
                                    source: slot.source_index,
                                    routes,
                                });
                            }
                            // Interleaved multi-group GDI resets its memo
                            // per member, so batch-start entries would be
                            // discarded unread.
                            SystemState::Gdi(_) if !gdi_shared_links => {
                                let source = config.sources[slot.source_index];
                                if !tasks.iter().any(|t| {
                                    matches!(t,
                                    PrimeTask::Gdi { group, source: s, demand }
                                        if *group == slot.group_index
                                            && *s == source
                                            && *demand == slot.demand)
                                }) {
                                    tasks.push(PrimeTask::Gdi {
                                        group: slot.group_index,
                                        source,
                                        demand: slot.demand,
                                    });
                                }
                            }
                            // Multipath recomputes bandwidth inline per
                            // attempt (no cache) and SP needs none.
                            _ => {}
                        }
                    }
                    if !tasks.is_empty() {
                        let snap = links.sharded();
                        let version = snap.version();
                        let results = parallel_map_with(
                            config.batch_jobs,
                            &tasks,
                            RoutingScratch::new,
                            |scratch, _, task| match task {
                                PrimeTask::RouteBw { routes, .. } => PrimeResult::RouteBw(
                                    AdmissionController::route_bandwidths_against(routes, snap),
                                ),
                                PrimeTask::Gdi {
                                    group,
                                    source,
                                    demand,
                                } => {
                                    let (feasible, best) = GlobalDynamicSystem::compute_batch_entry(
                                        scratch,
                                        topo,
                                        &groups[*group],
                                        snap.table(),
                                        *source,
                                        *demand,
                                    );
                                    PrimeResult::Gdi(feasible, best)
                                }
                            },
                        );
                        for (task, result) in tasks.iter().zip(results) {
                            match (task, result) {
                                (
                                    PrimeTask::RouteBw { group, source, .. },
                                    PrimeResult::RouteBw(values),
                                ) => {
                                    if let SystemState::Dac(controllers) = &mut systems[*group] {
                                        controllers[*source]
                                            .prime_route_bandwidth(&values, version);
                                    }
                                }
                                (
                                    PrimeTask::Gdi {
                                        group,
                                        source,
                                        demand,
                                    },
                                    PrimeResult::Gdi(feasible, best),
                                ) => {
                                    if let SystemState::Gdi(gdi) = &mut systems[*group] {
                                        gdi.prime_batch_entry(*source, *demand, feasible, best);
                                    }
                                }
                                _ => unreachable!("each result matches its task variant"),
                            }
                        }
                    }
                }
                for j in 0..arrival_batch.len() {
                    let slot = arrival_batch[j];
                    if j > 0 && eng.peek_time().is_some_and(|p| p <= slot.at) {
                        // A commit above scheduled an event (a short-lived
                        // flow's departure, a soft-state tick) that fires
                        // before — or FIFO-beats — this member. Flush the
                        // rest back onto the queue as pre-drawn singletons
                        // so they interleave with it exactly as the
                        // sequential path would.
                        for s in &arrival_batch[j..] {
                            eng.schedule_at(
                                s.at,
                                Event::Arrival {
                                    source_index: s.source_index,
                                    group_index: s.group_index,
                                    holding_secs: s.holding_secs,
                                    demand: s.demand,
                                    chain: false,
                                },
                            );
                        }
                        break;
                    }
                    process_arrival!(
                        slot.at,
                        slot.source_index,
                        slot.group_index,
                        slot.holding_secs,
                        slot.demand
                    );
                }
            }
            Event::Departure(session) => {
                if wire_torn.remove(&session) {
                    // The endpoint already tore this reservation down over
                    // the wire (or its teardown is lost/in flight); the
                    // holding-time departure has nothing left to do.
                    return;
                }
                live_flows.remove(&session);
                if killed.remove(&session) {
                    // The reservation already died with a fault; the flow's
                    // endpoints have nothing left to tear down.
                } else if control.teardown_loss_probability > 0.0
                    && fault_rng.uniform() < control.teardown_loss_probability
                {
                    // PATH_TEAR lost: the reservation holds its bandwidth
                    // until soft state expires it.
                    orphaned.insert(session);
                    book.note_orphan_created();
                } else if control.teardown_delay_secs > 0.0 {
                    let delay = fault_rng.exp_duration(control.teardown_delay_secs);
                    eng.schedule_in(now, delay, Event::Teardown(session));
                } else {
                    rsvp.teardown(&mut *links, session)
                        .expect("departing flows hold live sessions");
                    soft_forget!(session);
                    if rec_on {
                        recorder.record(
                            now.as_secs(),
                            TelemetryEvent::ReservationTeardown {
                                session,
                                reason: TeardownReason::Departure,
                            },
                        );
                    }
                    tw_note!(now);
                }
            }
            Event::Teardown(session) => {
                if killed.remove(&session) {
                    // A fault beat the delayed teardown to the reservation.
                } else {
                    rsvp.teardown(&mut *links, session)
                        .expect("delayed teardowns target live sessions");
                    soft_forget!(session);
                    if rec_on {
                        recorder.record(
                            now.as_secs(),
                            TelemetryEvent::ReservationTeardown {
                                session,
                                reason: TeardownReason::Delayed,
                            },
                        );
                    }
                    tw_note!(now);
                }
            }
            Event::Fault(action) => {
                let t = now.as_secs();
                // Tell every route book which links the fault touched. The
                // fixed §3 routes are a function of the immutable topology,
                // so an oracle's recomputation provably returns the same
                // paths — the stamp discipline (invalidate only sources
                // whose cached routes cross the link) is exercised under
                // chaos without ever being able to change a metric.
                macro_rules! note_links {
                    ($links:expr) => {
                        for link in $links {
                            for bk in route_books.iter_mut() {
                                bk.note_link_change(link);
                            }
                        }
                    };
                }
                let victims: Vec<SessionId> = match action {
                    FaultAction::FailLink(link) => {
                        links
                            .fail_link(link)
                            .expect("fault plan references known links");
                        note_links!([link]);
                        book.record_down(FaultEntity::Link(link), t);
                        if rec_on {
                            recorder.record(
                                t,
                                TelemetryEvent::FaultFired {
                                    entity: FaultKind::Link(link),
                                },
                            );
                        }
                        rsvp.sessions_using_link(link)
                    }
                    FaultAction::RestoreLink(link) => {
                        links
                            .restore_link(link)
                            .expect("fault plan references known links");
                        note_links!([link]);
                        book.record_up(FaultEntity::Link(link), t);
                        if rec_on {
                            recorder.record(
                                t,
                                TelemetryEvent::FaultHealed {
                                    entity: FaultKind::Link(link),
                                },
                            );
                        }
                        Vec::new()
                    }
                    FaultAction::CrashNode(node) => {
                        links
                            .fail_node(node)
                            .expect("fault plan references known nodes");
                        note_links!(topo.neighbors(node).iter().map(|&(_, l)| l));
                        book.record_down(FaultEntity::Node(node), t);
                        if rec_on {
                            recorder.record(
                                t,
                                TelemetryEvent::FaultFired {
                                    entity: FaultKind::Node(node),
                                },
                            );
                        }
                        rsvp.sessions_through_node(node)
                    }
                    FaultAction::RestoreNode(node) => {
                        links
                            .restore_node(node)
                            .expect("fault plan references known nodes");
                        note_links!(topo.neighbors(node).iter().map(|&(_, l)| l));
                        book.record_up(FaultEntity::Node(node), t);
                        if rec_on {
                            recorder.record(
                                t,
                                TelemetryEvent::FaultHealed {
                                    entity: FaultKind::Node(node),
                                },
                            );
                        }
                        Vec::new()
                    }
                };
                for session in victims {
                    rsvp.teardown(&mut *links, session)
                        .expect("fault victims hold live reservations");
                    soft_forget!(session);
                    if rec_on {
                        recorder.record(
                            t,
                            TelemetryEvent::ReservationTeardown {
                                session,
                                reason: TeardownReason::FaultKilled,
                            },
                        );
                    }
                    if orphaned.remove(&session) {
                        // The fault returned an orphan's bandwidth before soft
                        // state got to it.
                        book.note_orphan_reclaimed();
                    } else {
                        // A Departure or delayed Teardown event is still
                        // pending for this session and must become a no-op.
                        killed.insert(session);
                        if live_flows.contains(&session) {
                            book.note_flow_killed();
                        }
                    }
                }
                if let Some(tw) = availability.as_mut() {
                    tw.update(now, links.operational_fraction());
                }
                tw_note!(now);
            }
            Event::RefreshSweep => {
                let t = now.as_secs();
                for session in rsvp.session_ids_sorted() {
                    if !orphaned.contains(&session) {
                        // The flow's source (or, post-departure, its pending
                        // delayed teardown) still exists and keeps the state
                        // alive. Re-arm the expiry wheel at the pushed-out
                        // deadline; orphans keep their stale one and expire
                        // on it via SoftTick.
                        tracker
                            .refresh(session, t)
                            .expect("live sessions are tracked");
                        let deadline = tracker.deadline(session).expect("just refreshed");
                        soft_wheel.arm(session, deadline);
                    }
                }
                if let Some(tick) = soft_wheel.tick_needed() {
                    eng.schedule_at(SimTime::from_secs(tick), Event::SoftTick);
                }
                eng.schedule_in(now, refresh_interval, Event::RefreshSweep);
            }
            Event::SoftTick => {
                // Exact-deadline soft-state expiry: reclaim precisely the
                // orphans whose lifetime just ended. Live sessions popping
                // here are stale wheel entries (their refresh re-armed a
                // later deadline) and are skipped untouched; the handler
                // consumes no randomness, so in fault-free runs it is inert.
                let t = now.as_secs();
                let mut reclaimed_any = false;
                for session in soft_wheel.pop_due(t) {
                    if !orphaned.contains(&session) {
                        continue;
                    }
                    match tracker.deadline(session) {
                        Some(deadline) if deadline <= t => {}
                        _ => continue,
                    }
                    tracker.forget(session);
                    rsvp.teardown(&mut *links, session)
                        .expect("expired sessions hold reservations");
                    orphaned.remove(&session);
                    book.note_orphan_reclaimed();
                    reclaimed_any = true;
                    if rec_on {
                        recorder.record(
                            t,
                            TelemetryEvent::ReservationTeardown {
                                session,
                                reason: TeardownReason::SoftStateExpired,
                            },
                        );
                    }
                }
                if reclaimed_any {
                    tw_note!(now);
                }
                if let Some(tick) = soft_wheel.tick_needed() {
                    eng.schedule_at(SimTime::from_secs(tick), Event::SoftTick);
                }
            }
            Event::TelemetrySample => {
                // Read-only periodic probe of the link-state table: consumes
                // no randomness and mutates nothing, so scheduling it (or
                // not) leaves the simulated system bit-identical. Walks the
                // sharded view stripe by stripe — ascending shard order is
                // ascending link order, so the stream is unchanged.
                let sharded = links.sharded();
                for shard in 0..sharded.shard_count() {
                    for (link, snap) in sharded.iter_shard(shard) {
                        recorder.record(
                            now.as_secs(),
                            TelemetryEvent::LinkSample {
                                link,
                                reserved_bps: snap.reserved.bps(),
                                capacity_bps: snap.capacity.bps(),
                                flows: snap.flows,
                                failed: snap.failed,
                            },
                        );
                    }
                }
                if let Some(interval_secs) = sample_interval {
                    eng.schedule_in(
                        now,
                        anycast_sim::Duration::from_secs(interval_secs),
                        Event::TelemetrySample,
                    );
                }
            }
            Event::WarmupEnd => {
                rsvp.reset_ledger();
                *active = Some(TimeWeighted::new(now, rsvp.active_sessions() as f64));
                *reserved_bw = Some(TimeWeighted::new(now, links.total_reserved().bps() as f64));
                *availability = Some(TimeWeighted::new(now, links.operational_fraction()));
            }
            Event::PathHop { req, setup, hop } => {
                let tp = two_phase
                    .as_mut()
                    .expect("signalling events only fire in two-phase mode");
                if !tp.table.contains(setup) {
                    // The setup was reaped while this message was in flight
                    // (e.g. its last hold expired); the message dies with it.
                    return;
                }
                let bw_bps = tp.table.bandwidth(setup).expect("tabled setup").bps();
                match tp
                    .table
                    .path_step(&mut *rsvp, &mut *links, setup, hop)
                    .expect("contains() checked above")
                {
                    PathStep::Held {
                        link,
                        reached_destination,
                    } => {
                        tp.holds_placed += 1;
                        if rec_on {
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::MsgSent {
                                    request: req,
                                    message: MessageKind::Path,
                                    link,
                                },
                            );
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::HoldPlaced {
                                    request: req,
                                    link,
                                    bw_bps,
                                },
                            );
                        }
                        if tp.cfg.setup_timeout_secs.is_finite() {
                            tp.holds
                                .arm((setup, hop), now.as_secs() + tp.cfg.setup_timeout_secs);
                            if let Some(tick) = tp.holds.tick_needed() {
                                eng.schedule_at(SimTime::from_secs(tick), Event::HoldTick);
                            }
                        }
                        match transit(&tp.sig.path, tp.cfg.per_hop_delay_secs, &mut *fault_rng) {
                            Some(delay) => {
                                let next = if reached_destination {
                                    // The destination answers: its RESV first
                                    // re-crosses this same link on the way back.
                                    Event::ResvHop { req, setup, hop }
                                } else {
                                    Event::PathHop {
                                        req,
                                        setup,
                                        hop: hop + 1,
                                    }
                                };
                                eng.schedule_in(now, anycast_sim::Duration::from_secs(delay), next);
                            }
                            None => {
                                tp.msgs_lost += 1;
                                if rec_on {
                                    recorder.record(
                                        now.as_secs(),
                                        TelemetryEvent::MsgLost {
                                            request: req,
                                            message: MessageKind::Path,
                                            link,
                                        },
                                    );
                                }
                                // The hold just placed (and the ones upstream)
                                // linger until their expiry timers fire.
                            }
                        }
                    }
                    PathStep::Blocked(err) => {
                        if rec_on {
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::MsgSent {
                                    request: req,
                                    message: MessageKind::Path,
                                    link: err.failed_link,
                                },
                            );
                        }
                        // The router at the bottleneck answers on the spot: the
                        // RESV_ERR's first crossing (back over this same link)
                        // starts now.
                        eng.schedule_at(now, Event::ResvErrHop { req, setup, hop });
                    }
                }
            }
            Event::ResvHop { req, setup, hop } => {
                let tp = two_phase.as_mut().expect("two-phase mode");
                if !tp.table.resv_step(&mut *rsvp, setup) {
                    return;
                }
                let link = tp.table.link_at(setup, hop).expect("route covers this hop");
                if rec_on {
                    recorder.record(
                        now.as_secs(),
                        TelemetryEvent::MsgSent {
                            request: req,
                            message: MessageKind::Resv,
                            link,
                        },
                    );
                }
                match transit(&tp.sig.resv, tp.cfg.per_hop_delay_secs, &mut *fault_rng) {
                    Some(delay) => {
                        let next = if hop == 0 {
                            Event::SetupComplete { req, setup }
                        } else {
                            Event::ResvHop {
                                req,
                                setup,
                                hop: hop - 1,
                            }
                        };
                        eng.schedule_in(now, anycast_sim::Duration::from_secs(delay), next);
                    }
                    None => {
                        tp.msgs_lost += 1;
                        if rec_on {
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::MsgLost {
                                    request: req,
                                    message: MessageKind::Resv,
                                    link,
                                },
                            );
                        }
                        // Nothing is committed yet; the unconfirmed holds
                        // expire on their own timers and the source times out.
                    }
                }
            }
            Event::ResvErrHop { req, setup, hop } => {
                let tp = two_phase.as_mut().expect("two-phase mode");
                if !tp.table.contains(setup) {
                    return;
                }
                let link = tp.table.link_at(setup, hop).expect("route covers this hop");
                let released = tp
                    .table
                    .resv_err_step(&mut *rsvp, &mut *links, setup, hop)
                    .expect("contains() checked above");
                if released.is_some() {
                    // The error released this hop's hold before its timer fired.
                    tp.holds.cancel(&(setup, hop));
                }
                if rec_on {
                    recorder.record(
                        now.as_secs(),
                        TelemetryEvent::MsgSent {
                            request: req,
                            message: MessageKind::ResvErr,
                            link,
                        },
                    );
                }
                let lost =
                    match transit(&tp.sig.resv_err, tp.cfg.per_hop_delay_secs, &mut *fault_rng) {
                        Some(delay) => {
                            let next = if hop == 0 {
                                Event::SetupRefused { req, setup }
                            } else {
                                Event::ResvErrHop {
                                    req,
                                    setup,
                                    hop: hop - 1,
                                }
                            };
                            eng.schedule_in(now, anycast_sim::Duration::from_secs(delay), next);
                            false
                        }
                        None => true,
                    };
                if lost {
                    tp.msgs_lost += 1;
                    if rec_on {
                        recorder.record(
                            now.as_secs(),
                            TelemetryEvent::MsgLost {
                                request: req,
                                message: MessageKind::ResvErr,
                                link,
                            },
                        );
                    }
                    // Upstream holds stay until expiry; the source times out.
                }
                if !tp.table.contains(setup) {
                    tp.setup_req.remove(&setup);
                }
            }
            Event::SetupComplete { req, setup } => {
                let tp = two_phase.as_mut().expect("two-phase mode");
                if tp.pending.get(&req).is_none_or(|p| p.setup != Some(setup)) {
                    // The source already moved on (timeout fired first); the
                    // dead setup's holds expire on their own timers.
                    return;
                }
                let hops = tp.table.hops(setup).expect("pending setups stay tabled");
                let started = tp
                    .table
                    .started_at(setup)
                    .expect("pending setups stay tabled");
                match tp.table.complete(&mut *rsvp, &mut *links, setup) {
                    Some(outcome) => {
                        for h in 0..hops {
                            tp.holds.cancel(&(setup, h));
                        }
                        tp.setup_req.remove(&setup);
                        admit_complete!(req, outcome.session, hops, started);
                    }
                    None => {
                        // A hold expired while the RESV was in flight (the
                        // timeout is shorter than the round trip): survivors
                        // were just released, and the source's setup timer
                        // will resolve this attempt as failed.
                        for h in 0..hops {
                            tp.holds.cancel(&(setup, h));
                        }
                        if !tp.table.contains(setup) {
                            tp.setup_req.remove(&setup);
                        }
                    }
                }
            }
            Event::SetupRefused { req, setup } => {
                let tp = two_phase.as_mut().expect("two-phase mode");
                if tp.pending.get(&req).is_none_or(|p| p.setup != Some(setup)) {
                    return;
                }
                let err = tp
                    .table
                    .blocked_error(setup)
                    .expect("refused setups recorded their bottleneck");
                tp.table.abandon(setup);
                if !tp.table.contains(setup) {
                    tp.setup_req.remove(&setup);
                }
                let skip = SkipReason::LinkBlocked {
                    link: err.failed_link,
                    hop_index: err.hop_index,
                    available_bps: err.available.bps(),
                };
                resolve_failed_attempt!(req, skip);
            }
            Event::SetupTimeout { req, setup } => {
                let tp = two_phase.as_mut().expect("two-phase mode");
                if tp.pending.get(&req).is_none_or(|p| p.setup != Some(setup)) {
                    // Stale timer: the attempt already resolved (and possibly
                    // a newer setup took its place).
                    return;
                }
                // Give up on this exchange. Remote holds are NOT released here
                // — the source cannot reach them; they expire on their timers.
                let blocked = tp.table.blocked_error(setup);
                tp.table.abandon(setup);
                if !tp.table.contains(setup) {
                    tp.setup_req.remove(&setup);
                }
                let attempts = tp
                    .pending
                    .get(&req)
                    .expect("checked above")
                    .attempts_this_dest;
                if attempts < tp.cfg.backoff.max_retransmits {
                    let delay = tp.cfg.backoff.delay_for(attempts, &mut tp.backoff_rng);
                    tp.retransmits += 1;
                    {
                        let p = tp.pending.get_mut(&req).expect("checked above");
                        p.attempts_this_dest += 1;
                        p.setup = None;
                    }
                    eng.schedule_in(
                        now,
                        anycast_sim::Duration::from_secs(delay),
                        Event::RetrySetup(req),
                    );
                } else {
                    // Retransmissions exhausted: the destination counts as
                    // failed and the §4.5 retrial policy takes over.
                    let skip = match blocked {
                        Some(err) => SkipReason::LinkBlocked {
                            link: err.failed_link,
                            hop_index: err.hop_index,
                            available_bps: err.available.bps(),
                        },
                        None => SkipReason::NoFeasiblePath,
                    };
                    resolve_failed_attempt!(req, skip);
                }
            }
            Event::RetrySetup(req) => {
                if two_phase
                    .as_ref()
                    .is_some_and(|tp| tp.pending.contains_key(&req))
                {
                    start_attempt!(req);
                }
            }
            Event::HoldTick => {
                let tp = two_phase.as_mut().expect("two-phase mode");
                for (setup, hop) in tp.holds.pop_due(now.as_secs()) {
                    let bw_bps = tp.table.bandwidth(setup).map(|b| b.bps());
                    if let Some(link) = tp.table.expire_hold(&mut *links, setup, hop) {
                        tp.holds_expired += 1;
                        if rec_on {
                            let owner = tp
                                .setup_req
                                .get(&setup)
                                .copied()
                                .expect("tabled setups keep their owner mapping");
                            recorder.record(
                                now.as_secs(),
                                TelemetryEvent::HoldExpired {
                                    request: owner,
                                    link,
                                    bw_bps: bw_bps.expect("state existed at expiry"),
                                },
                            );
                        }
                        if !tp.table.contains(setup) {
                            tp.setup_req.remove(&setup);
                        }
                    }
                }
                if let Some(tick) = tp.holds.tick_needed() {
                    eng.schedule_at(SimTime::from_secs(tick), Event::HoldTick);
                }
            }
        }
    }

    /// Finishes the run: drains in-flight two-phase setups, audits the
    /// bandwidth ledger and assembles the [`Metrics`], with time-weighted
    /// averages taken over `[warmup_end, end]`. The offline engine passes
    /// the horizon; the online engine passes wherever its clock stopped.
    pub(crate) fn finish(mut self, end: SimTime) -> (Metrics, R) {
        // Orphans expire exactly at their soft-state deadline via SoftTick
        // events inside the run, so no closing sweep is needed: anything
        // the tracker still holds at the horizon is genuinely within
        // lifetime.
        //
        // Drain in-flight two-phase setups: their exchanges never resolved
        // (censored, like any open request at the horizon) and their holds
        // go back. Every held bit must belong to a tabled setup — whatever
        // `total_pending` still shows afterwards leaked.
        let leaked_hold_bps = {
            if let Some(tp) = self.two_phase.as_mut() {
                let _ = tp.table.drain(&mut self.links);
            }
            self.links.total_pending().bps()
        };
        // Audit the bandwidth ledger: every reserved bit must be
        // attributable to a surviving session (live flows, pending
        // teardowns, and orphans still inside their soft-state lifetime).
        let attributable: u64 = self
            .rsvp
            .sessions()
            .map(|(_, r)| r.bandwidth().bps() * r.path().links().len() as u64)
            .sum();
        let leaked_bandwidth_bps = self
            .links
            .total_reserved()
            .bps()
            .saturating_sub(attributable);

        let messages = self.rsvp.ledger().clone();
        let offered = self.stats.offered();
        let metrics = Metrics {
            label: self.config.system.label(),
            lambda: self.config.lambda,
            seed: self.config.seed,
            admission_probability: self.stats.admission_probability(),
            ap_ci95: self.stats.ap_ci95_half_width(),
            offered,
            admitted: self.stats.admitted(),
            mean_tries: self.stats.mean_tries(),
            mean_retrials: self.stats.mean_retrials(),
            messages_per_request: if offered == 0 {
                0.0
            } else {
                messages.total() as f64 / offered as f64
            },
            messages,
            tries_histogram: self.stats.tries_histogram().buckets().to_vec(),
            per_group_ap: self
                .group_stats
                .iter()
                .map(|s| s.admission_probability())
                .collect(),
            member_share: self
                .member_counts
                .iter()
                .map(|counts| {
                    let total: u64 = counts.iter().sum();
                    counts
                        .iter()
                        .map(|&c| {
                            if total == 0 {
                                0.0
                            } else {
                                c as f64 / total as f64
                            }
                        })
                        .collect()
                })
                .collect(),
            mean_active_flows: self
                .active
                .as_ref()
                .map(|tw| tw.average_until(end))
                .unwrap_or(0.0),
            mean_network_utilization: self
                .reserved_bw
                .as_ref()
                .map(|tw| {
                    if self.total_partition == 0.0 {
                        0.0
                    } else {
                        tw.average_until(end) / self.total_partition
                    }
                })
                .unwrap_or(0.0),
            availability: self
                .availability
                .as_ref()
                .map(|tw| tw.average_until(end))
                .unwrap_or(1.0),
            flows_killed_by_failure: self.book.flows_killed(),
            outages: self.book.completed_outages(),
            mean_recovery_secs: self.book.mean_recovery_secs(),
            orphaned_reservations: self.book.orphans_created(),
            orphans_reclaimed: self.book.orphans_reclaimed(),
            leaked_bandwidth_bps,
            holds_placed: self.two_phase.as_ref().map_or(0, |tp| tp.holds_placed),
            holds_expired: self.two_phase.as_ref().map_or(0, |tp| tp.holds_expired),
            setups_completed: self.two_phase.as_ref().map_or(0, |tp| tp.setups_completed),
            retransmits: self.two_phase.as_ref().map_or(0, |tp| tp.retransmits),
            signaling_messages_lost: self.two_phase.as_ref().map_or(0, |tp| tp.msgs_lost),
            mean_setup_latency_secs: self.two_phase.as_ref().map_or(0.0, |tp| {
                if tp.latency_count == 0 {
                    0.0
                } else {
                    tp.latency_sum / tp.latency_count as f64
                }
            }),
            leaked_hold_bps,
        };
        (metrics, self.recorder)
    }

    /// End of the warm-up period.
    pub(crate) fn warmup_end(&self) -> SimTime {
        self.warmup_end
    }

    /// The run horizon (`warmup_secs + measure_secs`).
    pub(crate) fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of configured source routers.
    pub(crate) fn source_count(&self) -> usize {
        self.config.sources.len()
    }

    /// Number of effective anycast groups.
    pub(crate) fn group_count(&self) -> usize {
        self.group_shares.len()
    }

    /// Route-cache statistics absorbed across every group's book: `Some`
    /// when at least one book is an on-demand oracle, `None` when every
    /// book is the precomputed reference table (which keeps no counters).
    pub(crate) fn route_cache_stats(&self) -> Option<RouteCacheStats> {
        let mut agg: Option<RouteCacheStats> = None;
        for book in &self.route_books {
            if let Some(stats) = book.cache_stats() {
                agg.get_or_insert_with(RouteCacheStats::default)
                    .absorb(&stats);
            }
        }
        agg
    }

    /// Turns on per-request [`Decision`] capture (off for offline runs,
    /// so their instruction stream is untouched).
    pub(crate) fn enable_decision_capture(&mut self) {
        self.capture_decisions = true;
    }

    /// Drains the decisions captured since the last call.
    pub(crate) fn take_decisions(&mut self) -> Vec<Decision> {
        std::mem::take(&mut self.decisions)
    }

    /// Shared access to the recorder.
    pub(crate) fn recorder(&self) -> &R {
        &self.recorder
    }

    /// A point-in-time operational snapshot for the service loop.
    pub(crate) fn snapshot(&self, now: SimTime) -> ServiceSnapshot {
        let summary = self.links.summary();
        ServiceSnapshot {
            time_secs: now.as_secs(),
            offered: self.stats.offered(),
            admitted: self.stats.admitted(),
            rejected: self.stats.rejected(),
            active_sessions: self.rsvp.active_sessions(),
            reserved_bps: summary.reserved_bps,
            pending_hold_bps: summary.pending_bps,
            capacity_bps: summary.capacity_bps,
            setups_in_flight: self.two_phase.as_ref().map_or(0, |tp| tp.table.in_flight()),
            links: summary.links,
            failed_links: summary.failed_links,
            window_secs: 0.0,
            window_offered: 0,
            window_admitted: 0,
            window_rejected: 0,
        }
    }

    /// Pushes the run horizon out to [`UNBOUNDED_HORIZON_SECS`]: the
    /// rolling-window service mode, where the daemon runs until told to
    /// stop instead of to a configured measurement horizon. The fault
    /// timeline and any workload pre-draw keep the original
    /// `warmup + measure` span; only the engine's stopping time moves.
    pub(crate) fn make_unbounded(&mut self) {
        self.horizon = SimTime::from_secs(UNBOUNDED_HORIZON_SECS);
    }

    /// Tears down a live admitted session right now — the wire `teardown`
    /// op. Returns `false` when the session is not a live flow (already
    /// departed, already torn down, killed by a fault, or never existed):
    /// the op is idempotent and a lost or late teardown is harmless,
    /// because the holding-time departure and the §4.4 soft-state expiry
    /// path reclaim the reservation anyway.
    ///
    /// The control-plane fault model applies exactly as to a natural
    /// departure: the internal PATH_TEAR can be lost (the reservation
    /// orphans and soft state reclaims it) or delayed (a
    /// [`Event::Teardown`] lands later). Either way the still-scheduled
    /// holding-time departure is neutralised via `wire_torn`.
    pub(crate) fn teardown_session(&mut self, eng: &mut Engine<Event>, session: SessionId) -> bool {
        if !self.live_flows.contains(&session) {
            return false;
        }
        if self.killed.contains(&session) {
            // A fault already reclaimed the reservation; the endpoint's
            // teardown finds nothing. The `killed` marker stays for the
            // still-scheduled holding-time departure to consume.
            return false;
        }
        self.live_flows.remove(&session);
        let now = eng.now();
        self.wire_torn.insert(session);
        if self.control.teardown_loss_probability > 0.0
            && self.fault_rng.uniform() < self.control.teardown_loss_probability
        {
            // PATH_TEAR lost: the reservation holds its bandwidth until
            // soft state expires it — §4.4, end to end over the wire.
            self.orphaned.insert(session);
            self.book.note_orphan_created();
        } else if self.control.teardown_delay_secs > 0.0 {
            let delay = self
                .fault_rng
                .exp_duration(self.control.teardown_delay_secs);
            eng.schedule_in(now, delay, Event::Teardown(session));
        } else {
            self.rsvp
                .teardown(&mut self.links, session)
                .expect("live flows hold live sessions");
            self.tracker.forget(session);
            self.soft_wheel.cancel(&session);
            if self.rec_on {
                self.recorder.record(
                    now.as_secs(),
                    TelemetryEvent::ReservationTeardown {
                        session,
                        reason: TeardownReason::Departure,
                    },
                );
            }
            if let Some(tw) = self.active.as_mut() {
                tw.update(now, self.rsvp.active_sessions() as f64);
            }
            if let Some(tw) = self.reserved_bw.as_mut() {
                tw.update(now, self.links.total_reserved().bps() as f64);
            }
        }
        true
    }

    /// Enqueues one externally-submitted arrival.
    ///
    /// When no chain head is scheduled (the queue had run dry) the slot is
    /// scheduled directly as the new head; otherwise it waits in the queue
    /// for the running chain to drain it — exactly where the offline
    /// engine would have drawn it from the workload.
    ///
    /// # Panics
    ///
    /// Panics if the simulation is workload-driven, the slot references an
    /// unknown source or group, its demand or holding time is not
    /// positive, or it is earlier than a previously submitted slot.
    pub(crate) fn submit_slot(&mut self, engine: &mut Engine<Event>, slot: ArrivalSlot) {
        assert!(
            slot.source_index < self.config.sources.len(),
            "arrival references unknown source index {}",
            slot.source_index
        );
        assert!(
            slot.group_index < self.group_shares.len(),
            "arrival references unknown group index {}",
            slot.group_index
        );
        assert!(
            slot.holding_secs.is_finite() && slot.holding_secs > 0.0,
            "arrival holding time must be positive, got {}",
            slot.holding_secs
        );
        assert!(slot.demand.bps() > 0, "arrival demand must be positive");
        let Feed::External(queue) = &mut self.feed else {
            panic!("submit_slot requires an externally-fed simulation");
        };
        if let Some(last) = queue.back() {
            assert!(
                slot.at >= last.at,
                "arrivals must be submitted in nondecreasing time order"
            );
        }
        if self.feed_head_scheduled {
            queue.push_back(slot);
        } else {
            engine.schedule_at(
                slot.at,
                Event::Arrival {
                    source_index: slot.source_index,
                    group_index: slot.group_index,
                    holding_secs: slot.holding_secs,
                    demand: slot.demand,
                    chain: true,
                },
            );
            self.feed_head_scheduled = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(lambda: f64, system: SystemSpec) -> ExperimentConfig {
        ExperimentConfig::paper_defaults(lambda, system)
            .with_warmup_secs(300.0)
            .with_measure_secs(600.0)
            .with_seed(11)
    }

    #[test]
    fn low_load_admits_everything() {
        let topo = topologies::mci();
        for system in [
            SystemSpec::dac(PolicySpec::Ed, 1),
            SystemSpec::ShortestPath,
            SystemSpec::GlobalDynamic,
        ] {
            let m = run_experiment(&topo, &quick(0.5, system));
            assert!(
                m.admission_probability > 0.999,
                "{}: AP {} at trivial load",
                m.label,
                m.admission_probability
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let topo = topologies::mci();
        let cfg = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let a = run_experiment(&topo, &cfg);
        let b = run_experiment(&topo, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_vary_outcomes() {
        let topo = topologies::mci();
        let cfg = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let a = run_experiment(&topo, &cfg);
        let b = run_experiment(&topo, &cfg.clone().with_seed(99));
        assert_ne!(
            a.admitted, b.admitted,
            "different seeds should explore different sample paths"
        );
    }

    #[test]
    fn high_load_rejects_some() {
        let topo = topologies::mci();
        let m = run_experiment(&topo, &quick(50.0, SystemSpec::dac(PolicySpec::Ed, 1)));
        assert!(
            m.admission_probability < 0.9,
            "AP {}",
            m.admission_probability
        );
        assert!(m.admission_probability > 0.1);
        assert!(m.offered > 10_000);
        assert_eq!(m.offered, m.admitted + (m.offered - m.admitted));
        assert!(m.mean_active_flows > 0.0);
        assert!(m.messages.total() > 0);
        assert!(m.messages_per_request > 0.0);
    }

    #[test]
    fn retrials_increase_ap_and_tries() {
        let topo = topologies::mci();
        let r1 = run_experiment(&topo, &quick(35.0, SystemSpec::dac(PolicySpec::Ed, 1)));
        let r3 = run_experiment(&topo, &quick(35.0, SystemSpec::dac(PolicySpec::Ed, 3)));
        assert!(
            r3.admission_probability > r1.admission_probability,
            "R=3 {} must beat R=1 {}",
            r3.admission_probability,
            r1.admission_probability
        );
        assert!(r3.mean_tries > r1.mean_tries);
        assert!((r1.mean_tries - 1.0).abs() < 1e-9, "R=1 always tries once");
        assert_eq!(r1.mean_retrials, 0.0);
    }

    #[test]
    fn gdi_dominates_sp_at_load() {
        let topo = topologies::mci();
        let sp = run_experiment(&topo, &quick(35.0, SystemSpec::ShortestPath));
        let gdi = run_experiment(&topo, &quick(35.0, SystemSpec::GlobalDynamic));
        assert!(
            gdi.admission_probability > sp.admission_probability,
            "GDI {} vs SP {}",
            gdi.admission_probability,
            sp.admission_probability
        );
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(SystemSpec::dac(PolicySpec::Ed, 2).label(), "<ED,2>");
        assert_eq!(
            SystemSpec::dac(PolicySpec::wd_dh_default(), 3).label(),
            "<WD/D+H,3>"
        );
        assert_eq!(SystemSpec::dac(PolicySpec::WdDb, 1).label(), "<WD/D+B,1>");
        assert_eq!(SystemSpec::ShortestPath.label(), "SP");
        assert_eq!(SystemSpec::GlobalDynamic.label(), "GDI");
    }

    #[test]
    fn member_share_reflects_algorithm_bias() {
        let topo = topologies::mci();
        // ED spreads uniformly; SP concentrates per source on the nearest
        // member, so its shares are lumpier.
        let ed = run_experiment(&topo, &quick(10.0, SystemSpec::dac(PolicySpec::Ed, 1)));
        let sp = run_experiment(&topo, &quick(10.0, SystemSpec::ShortestPath));
        let spread = |shares: &[f64]| -> f64 {
            let max = shares.iter().cloned().fold(0.0, f64::max);
            let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
            max - min
        };
        let ed_shares = &ed.member_share[0];
        let sp_shares = &sp.member_share[0];
        assert_eq!(ed_shares.len(), 5);
        assert!((ed_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            spread(ed_shares) < 0.1,
            "ED at low load is near-uniform: {ed_shares:?}"
        );
        assert!(
            spread(sp_shares) > spread(ed_shares),
            "SP concentrates: {sp_shares:?} vs ED {ed_shares:?}"
        );
    }

    #[test]
    fn utilization_tracks_load_and_algorithm() {
        let topo = topologies::mci();
        // More admitted flows → more reserved bandwidth. GDI admits the
        // most, so it utilises the partition at least as much as SP.
        let sp = run_experiment(&topo, &quick(35.0, SystemSpec::ShortestPath));
        let gdi = run_experiment(&topo, &quick(35.0, SystemSpec::GlobalDynamic));
        assert!(sp.mean_network_utilization > 0.0);
        assert!(sp.mean_network_utilization < 1.0);
        assert!(
            gdi.mean_network_utilization > sp.mean_network_utilization,
            "GDI {} must fill more of the partition than SP {}",
            gdi.mean_network_utilization,
            sp.mean_network_utilization
        );
        // And utilization grows with offered load.
        let light = run_experiment(&topo, &quick(5.0, SystemSpec::ShortestPath));
        assert!(light.mean_network_utilization < sp.mean_network_utilization);
    }

    #[test]
    fn multi_group_splits_traffic() {
        let topo = topologies::mci();
        let groups = vec![
            GroupSpec {
                members: vec![NodeId::new(0), NodeId::new(8), NodeId::new(16)],
                share: 2.0,
            },
            GroupSpec {
                members: vec![NodeId::new(4), NodeId::new(12)],
                share: 1.0,
            },
        ];
        let cfg = quick(25.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2)).with_groups(groups);
        let m = run_experiment(&topo, &cfg);
        assert_eq!(m.per_group_ap.len(), 2);
        for &ap in &m.per_group_ap {
            assert!(ap > 0.0 && ap <= 1.0);
        }
        // Overall AP is a weighted combination, so it lies between the
        // per-group extremes.
        let lo = m.per_group_ap.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = m.per_group_ap.iter().cloned().fold(0.0, f64::max);
        assert!(m.admission_probability >= lo - 1e-12);
        assert!(m.admission_probability <= hi + 1e-12);
    }

    #[test]
    fn single_group_field_matches_groups_vec() {
        // Configuring the paper group explicitly through `groups` must be
        // equivalent to the legacy `group_members` field.
        let topo = topologies::mci();
        let base = quick(30.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let a = run_experiment(&topo, &base);
        let explicit = base.clone().with_groups(vec![GroupSpec {
            members: topologies::MCI_GROUP_MEMBERS.map(NodeId::new).to_vec(),
            share: 1.0,
        }]);
        let b = run_experiment(&topo, &explicit);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.admission_probability, b.admission_probability);
        assert_eq!(b.per_group_ap.len(), 1);
        assert_eq!(b.per_group_ap[0], b.admission_probability);
    }

    #[test]
    fn multipath_system_dominates_single_path() {
        let topo = topologies::mci();
        let single = run_experiment(
            &topo,
            &quick(35.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2)),
        );
        let multi = run_experiment(
            &topo,
            &quick(
                35.0,
                SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 2),
            ),
        );
        assert_eq!(multi.label, "<WD/D+H,2,k=2>");
        assert!(
            multi.admission_probability > single.admission_probability,
            "multipath {} must beat single-path {}",
            multi.admission_probability,
            single.admission_probability
        );
    }

    #[test]
    fn bursty_arrivals_lower_ap_at_equal_mean_load() {
        // Burstiness concentrates arrivals, so blocking worsens at the
        // same long-run rate — the classic overdispersion penalty.
        let topo = topologies::mci();
        let system = SystemSpec::dac(PolicySpec::wd_dh_default(), 2);
        // Long enough for the modulating chain to cycle ~40 times, else
        // the realised mean rate is dominated by a few sojourns.
        let base = quick(30.0, system).with_measure_secs(2_400.0);
        let poisson = run_experiment(&topo, &base);
        let bursty = run_experiment(
            &topo,
            &base.clone().with_arrivals(ArrivalProcess::Bursty {
                burstiness: 1.9,
                mean_sojourn_secs: 60.0,
            }),
        );
        assert!(
            bursty.admission_probability < poisson.admission_probability,
            "bursty {} must underperform Poisson {}",
            bursty.admission_probability,
            poisson.admission_probability
        );
        // Comparable offered volume (same mean rate).
        let ratio = bursty.offered as f64 / poisson.offered as f64;
        assert!((0.8..1.2).contains(&ratio), "offered ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "shares must be positive")]
    fn bad_group_share_panics() {
        let _ = ExperimentConfig::paper_defaults(1.0, SystemSpec::ShortestPath).with_groups(vec![
            GroupSpec {
                members: vec![NodeId::new(0)],
                share: 0.0,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn unknown_source_panics() {
        let topo = topologies::mci();
        let cfg = quick(1.0, SystemSpec::ShortestPath).with_sources(vec![NodeId::new(99)]);
        let _ = run_experiment(&topo, &cfg);
    }

    #[test]
    fn zero_fault_plan_reproduces_fault_free_metrics_exactly() {
        let topo = topologies::mci();
        let base = quick(30.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let fault_free = run_experiment(&topo, &base);
        // An explicit (but inert) plan, and a plan whose only scripted
        // action lies beyond the horizon, must both be bit-identical to
        // the fault-free run.
        let explicit = base.clone().with_faults(FaultPlan::none());
        assert_eq!(fault_free, run_experiment(&topo, &explicit));
        let beyond = base.clone().with_faults(FaultPlan::none().with_scripted(
            1_000_000.0,
            FaultAction::FailLink(anycast_net::LinkId::new(0)),
        ));
        assert_eq!(fault_free, run_experiment(&topo, &beyond));
        assert_eq!(fault_free.availability, 1.0);
        assert_eq!(fault_free.flows_killed_by_failure, 0);
        assert_eq!(fault_free.orphaned_reservations, 0);
        assert_eq!(fault_free.leaked_bandwidth_bps, 0);
    }

    #[test]
    fn faulty_runs_replay_bit_identically() {
        let topo = topologies::mci();
        let plan = FaultPlan::none()
            .with_link_model(400.0, 60.0)
            .with_member_model(600.0, 120.0)
            .with_teardown_loss(0.1)
            .with_teardown_delay(2.0);
        let cfg = quick(25.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2)).with_faults(plan);
        let a = run_experiment(&topo, &cfg);
        let b = run_experiment(&topo, &cfg);
        assert_eq!(a, b, "same seed + same plan must replay exactly");
        assert!(a.outages > 0, "the stochastic models must actually fire");
    }

    #[test]
    fn link_faults_cost_availability_without_leaking_bandwidth() {
        let topo = topologies::mci();
        let plan = FaultPlan::none().with_link_model(500.0, 100.0);
        let cfg = quick(25.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_faults(plan);
        let m = run_experiment(&topo, &cfg);
        assert!(
            m.availability < 1.0,
            "links failing every ~500 s must dent availability, got {}",
            m.availability
        );
        assert!(m.availability > 0.5, "MTTR ≪ MTBF keeps most links up");
        assert!(m.flows_killed_by_failure > 0);
        assert!(m.outages > 0);
        assert!(m.mean_recovery_secs > 0.0);
        assert_eq!(m.leaked_bandwidth_bps, 0, "no fault may leak bandwidth");
        assert!(
            m.admission_probability < 1.0,
            "lost capacity must cost some admissions"
        );
    }

    #[test]
    fn lost_teardowns_orphan_and_soft_state_reclaims() {
        let topo = topologies::mci();
        let plan = FaultPlan::none().with_teardown_loss(0.25);
        let cfg = quick(15.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_faults(plan);
        let m = run_experiment(&topo, &cfg);
        assert!(
            m.orphaned_reservations > 100,
            "a quarter of teardowns vanish: {}",
            m.orphaned_reservations
        );
        assert!(
            m.orphans_reclaimed > 0,
            "refresh sweeps must expire orphans"
        );
        // Orphans linger ≤ one lifetime + one sweep; with a 900 s run and
        // a 90 s lifetime, nearly all created orphans are reclaimed.
        assert!(m.orphans_reclaimed <= m.orphaned_reservations);
        assert_eq!(m.leaked_bandwidth_bps, 0);
        // Orphans hold bandwidth the fault-free run would have released,
        // so admission can only get worse.
        let clean = run_experiment(&topo, &quick(15.0, SystemSpec::dac(PolicySpec::Ed, 2)));
        assert!(m.admission_probability <= clean.admission_probability);
    }

    #[test]
    fn scripted_member_crash_shifts_traffic() {
        let topo = topologies::mci();
        let member = NodeId::new(0);
        let plan = FaultPlan::none()
            .with_scripted(400.0, FaultAction::CrashNode(member))
            .with_scripted(700.0, FaultAction::RestoreNode(member));
        let cfg = quick(10.0, SystemSpec::dac(PolicySpec::Ed, 3)).with_faults(plan);
        let m = run_experiment(&topo, &cfg);
        let clean = run_experiment(&topo, &quick(10.0, SystemSpec::dac(PolicySpec::Ed, 3)));
        assert!(m.availability < 1.0, "a crashed member downs its links");
        assert_eq!(m.outages, 1);
        assert!((m.mean_recovery_secs - 300.0).abs() < 1e-6);
        // The crashed member (group index 0) receives less than its
        // fault-free share while the outage lasts.
        assert!(m.member_share[0][0] < clean.member_share[0][0]);
        assert_eq!(m.leaked_bandwidth_bps, 0);
    }

    #[test]
    fn degenerate_two_phase_is_bit_identical_to_atomic() {
        // Zero per-hop delay + an inert `[signaling]` fault section must
        // reproduce the atomic engine exactly: same metrics, same message
        // ledger, same member shares — the express path is the proof that
        // the two-phase machinery only changes behaviour when latency or
        // loss actually exists.
        let topo = topologies::mci();
        for policy in [
            PolicySpec::Ed,
            PolicySpec::WdDb,
            PolicySpec::wd_dh_default(),
        ] {
            let base = quick(30.0, SystemSpec::dac(policy, 2));
            let atomic = run_experiment(&topo, &base);
            let degenerate = base
                .clone()
                .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig::default()));
            assert_eq!(
                atomic,
                run_experiment(&topo, &degenerate),
                "degenerate two-phase must be bit-identical to atomic for {policy:?}"
            );
        }
    }

    #[test]
    fn delayed_two_phase_admits_and_replays_deterministically() {
        let topo = topologies::mci();
        let cfg = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_signaling(
            SignalingMode::TwoPhase(TwoPhaseConfig {
                per_hop_delay_secs: 0.05,
                ..TwoPhaseConfig::default()
            }),
        );
        let a = run_experiment(&topo, &cfg);
        let b = run_experiment(&topo, &cfg);
        assert_eq!(a, b, "delayed signalling must replay bit-identically");
        assert!(a.admitted > 0);
        assert!(a.setups_completed > 0);
        assert!(a.holds_placed > 0);
        assert_eq!(a.signaling_messages_lost, 0, "no faults were configured");
        assert!(
            a.mean_setup_latency_secs >= 2.0 * 0.05,
            "a completed setup takes at least one round trip over one hop, got {}",
            a.mean_setup_latency_secs
        );
        assert_eq!(a.leaked_hold_bps, 0);
        assert_eq!(a.leaked_bandwidth_bps, 0);
    }

    #[test]
    fn lossy_signalling_retransmits_expires_holds_and_leaks_nothing() {
        let topo = topologies::mci();
        let sig = SignalingFaults {
            path: MessageFault {
                loss_probability: 0.05,
                extra_delay_secs: 0.02,
            },
            resv: MessageFault {
                loss_probability: 0.05,
                extra_delay_secs: 0.0,
            },
            resv_err: MessageFault {
                loss_probability: 0.05,
                extra_delay_secs: 0.0,
            },
        };
        let cfg = quick(25.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_faults(FaultPlan::none().with_signaling(sig))
            .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig {
                per_hop_delay_secs: 0.02,
                setup_timeout_secs: 0.5,
                ..TwoPhaseConfig::default()
            }));
        let m = run_experiment(&topo, &cfg);
        assert!(m.signaling_messages_lost > 0, "5% loss must drop messages");
        assert!(m.retransmits > 0, "timed-out setups must be retransmitted");
        assert!(
            m.holds_expired > 0,
            "abandoned setups leave holds to expire"
        );
        assert!(m.admitted > 0, "most setups still complete");
        assert_eq!(
            m.leaked_hold_bps, 0,
            "every hold must be confirmed, errored, expired, or drained"
        );
        assert_eq!(m.leaked_bandwidth_bps, 0);
        assert_eq!(
            m,
            run_experiment(&topo, &cfg),
            "lossy signalling must replay bit-identically"
        );
    }

    #[test]
    #[should_panic(expected = "two-phase signalling requires the DAC system")]
    fn two_phase_rejects_non_dac_systems() {
        let topo = topologies::mci();
        let cfg = quick(5.0, SystemSpec::ShortestPath)
            .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig::default()));
        run_experiment(&topo, &cfg);
    }

    /// Every floating-point metric a run reports, for the NaN sweep.
    fn assert_all_finite(m: &Metrics, what: &str) {
        let fields = [
            ("admission_probability", m.admission_probability),
            ("ap_ci95", m.ap_ci95),
            ("mean_tries", m.mean_tries),
            ("mean_retrials", m.mean_retrials),
            ("messages_per_request", m.messages_per_request),
            ("mean_active_flows", m.mean_active_flows),
            ("mean_network_utilization", m.mean_network_utilization),
            ("availability", m.availability),
            ("mean_recovery_secs", m.mean_recovery_secs),
            ("mean_setup_latency_secs", m.mean_setup_latency_secs),
        ];
        for (name, v) in fields {
            assert!(
                v.is_finite(),
                "{what}: {}.{name} = {v} is not finite",
                m.label
            );
        }
        for ap in &m.per_group_ap {
            assert!(ap.is_finite(), "{what}: {} per-group AP {ap}", m.label);
        }
        for shares in &m.member_share {
            for s in shares {
                assert!(s.is_finite(), "{what}: {} member share {s}", m.label);
            }
        }
    }

    /// The tentpole equivalence: batched same-quantum admission is
    /// bit-identical to one-at-a-time admission for every system, at loads
    /// heavy enough that batches routinely hold several arrivals.
    #[test]
    fn batched_is_bit_identical_to_sequential() {
        let topo = topologies::mci();
        for system in [
            SystemSpec::dac(PolicySpec::Ed, 2),
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            SystemSpec::dac(PolicySpec::WdDb, 2),
            SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 2),
            SystemSpec::ShortestPath,
            SystemSpec::GlobalDynamic,
        ] {
            for lambda in [30.0, 50.0] {
                let cfg = quick(lambda, system);
                let sequential = run_experiment(&topo, &cfg);
                let batched = run_experiment(&topo, &cfg.clone().with_batching(true));
                assert_eq!(
                    sequential, batched,
                    "batched admission diverged for {} at λ={lambda}",
                    sequential.label
                );
                assert_all_finite(&batched, "batched");
            }
        }
    }

    /// Batching must commute with fault injection: departures, orphans and
    /// fault events interleave with flushed batch members exactly as they
    /// do sequentially.
    #[test]
    fn batched_matches_sequential_under_chaos() {
        let topo = topologies::mci();
        let plan = FaultPlan::none()
            .with_link_model(400.0, 60.0)
            .with_member_model(600.0, 120.0)
            .with_teardown_loss(0.1)
            .with_teardown_delay(2.0);
        for system in [
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            SystemSpec::GlobalDynamic,
        ] {
            let cfg = quick(25.0, system).with_faults(plan.clone());
            let sequential = run_experiment(&topo, &cfg);
            let batched = run_experiment(&topo, &cfg.clone().with_batching(true));
            assert_eq!(
                sequential, batched,
                "batched admission diverged under the chaos plan for {}",
                sequential.label
            );
            assert!(sequential.outages > 0, "the plan must actually fire");
            assert_all_finite(&batched, "batched chaos");
        }
    }

    /// Under two-phase signalling: the degenerate express mode batches for
    /// real; delayed exchanges force the sequential path — both must be
    /// bit-identical to the non-batched run.
    #[test]
    fn batched_matches_sequential_under_two_phase() {
        let topo = topologies::mci();
        for cfg in [
            quick(30.0, SystemSpec::dac(PolicySpec::Ed, 2))
                .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig::default())),
            quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_signaling(
                SignalingMode::TwoPhase(TwoPhaseConfig {
                    per_hop_delay_secs: 0.05,
                    ..TwoPhaseConfig::default()
                }),
            ),
        ] {
            let sequential = run_experiment(&topo, &cfg);
            let batched = run_experiment(&topo, &cfg.clone().with_batching(true));
            assert_eq!(
                sequential, batched,
                "batched admission diverged under two-phase signalling"
            );
        }
    }

    /// Multiple groups (separate GDI instances sharing links) and a
    /// heterogeneous demand mix — the memo-hostile cases — still replay
    /// bit-identically when batched.
    #[test]
    fn batched_matches_sequential_multi_group_and_demand_mix() {
        let topo = topologies::mci();
        let groups = vec![
            GroupSpec {
                members: vec![NodeId::new(0), NodeId::new(8), NodeId::new(16)],
                share: 2.0,
            },
            GroupSpec {
                members: vec![NodeId::new(4), NodeId::new(12)],
                share: 1.0,
            },
        ];
        let mix = vec![
            DemandClass {
                bandwidth: Bandwidth::from_kbps(64),
                weight: 3.0,
            },
            DemandClass {
                bandwidth: Bandwidth::from_kbps(256),
                weight: 1.0,
            },
        ];
        for system in [
            SystemSpec::GlobalDynamic,
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        ] {
            let cfg = quick(30.0, system)
                .with_groups(groups.clone())
                .with_demand_mix(mix.clone());
            let sequential = run_experiment(&topo, &cfg);
            let batched = run_experiment(&topo, &cfg.clone().with_batching(true));
            assert_eq!(
                sequential, batched,
                "batched admission diverged for {} with groups + demand mix",
                sequential.label
            );
        }
    }

    /// Stronger than metric equality: the full telemetry event streams —
    /// every arrival, probe, skip replay, retrial, rejection and
    /// reservation lifecycle event, with timestamps — are identical, so
    /// the batched evaluator's decision replay is exact, not just
    /// aggregate-preserving.
    #[test]
    fn batched_telemetry_stream_is_identical() {
        let topo = topologies::mci();
        for system in [
            SystemSpec::GlobalDynamic,
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        ] {
            let cfg = quick(40.0, system);
            let mut seq_ring =
                anycast_telemetry::RingRecorder::new(cfg.seed).with_sample_interval(50.0);
            let sequential = run_experiment_traced(&topo, &cfg, &mut seq_ring);
            let batched_cfg = cfg.clone().with_batching(true);
            let mut bat_ring =
                anycast_telemetry::RingRecorder::new(cfg.seed).with_sample_interval(50.0);
            let batched = run_experiment_traced(&topo, &batched_cfg, &mut bat_ring);
            assert_eq!(sequential, batched);
            assert_eq!(seq_ring.dropped(), 0, "stream must be complete");
            assert_eq!(
                seq_ring.events(),
                bat_ring.events(),
                "batched telemetry stream diverged for {}",
                sequential.label
            );
            assert!(!seq_ring.is_empty());
        }
    }

    /// A two-phase run where every PATH message is lost completes zero
    /// setups; the mean setup latency must degrade to 0.0, not NaN
    /// (regression test for the 0/0 guard in the metrics assembly).
    #[test]
    fn total_path_loss_yields_finite_zero_setup_latency() {
        let topo = topologies::mci();
        let sig = SignalingFaults {
            path: MessageFault {
                loss_probability: 1.0,
                extra_delay_secs: 0.0,
            },
            resv: MessageFault::default(),
            resv_err: MessageFault::default(),
        };
        let cfg = quick(5.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_faults(FaultPlan::none().with_signaling(sig))
            .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig {
                per_hop_delay_secs: 0.02,
                setup_timeout_secs: 0.5,
                ..TwoPhaseConfig::default()
            }));
        let m = run_experiment(&topo, &cfg);
        assert_eq!(
            m.setups_completed, 0,
            "no PATH survives, no setup completes"
        );
        assert_eq!(
            m.mean_setup_latency_secs, 0.0,
            "zero completions must report 0.0, not 0/0"
        );
        assert_all_finite(&m, "total PATH loss");
    }

    /// The NaN sweep across the corners that historically divide by a
    /// zero count: empty measurement (warm-up only traffic at trivial
    /// load), saturated load, chaos, lossy signalling, batched.
    #[test]
    fn no_metric_is_ever_nan() {
        let topo = topologies::mci();
        let cases = [
            quick(0.001, SystemSpec::dac(PolicySpec::Ed, 1)),
            quick(50.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 3)),
            quick(50.0, SystemSpec::GlobalDynamic).with_batching(true),
            quick(25.0, SystemSpec::ShortestPath)
                .with_faults(FaultPlan::none().with_link_model(300.0, 60.0)),
        ];
        for cfg in cases {
            let m = run_experiment(&topo, &cfg);
            assert_all_finite(&m, "NaN sweep");
        }
    }

    /// The PR 10 tentpole equivalence: the on-demand route oracle is
    /// bit-identical to the precomputed table for every system, because
    /// routes are pure functions of the immutable topology — the oracle
    /// may only recompute, never diverge.
    #[test]
    fn oracle_is_bit_identical_to_table_for_every_system() {
        let topo = topologies::mci();
        for system in [
            SystemSpec::dac(PolicySpec::Ed, 2),
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            SystemSpec::dac(PolicySpec::WdDb, 2),
            SystemSpec::dac_multipath(PolicySpec::wd_dh_default(), 2, 2),
            SystemSpec::ShortestPath,
            SystemSpec::GlobalDynamic,
        ] {
            for lambda in [30.0, 50.0] {
                let cfg = quick(lambda, system);
                let table = run_experiment(&topo, &cfg);
                let oracle =
                    run_experiment(&topo, &cfg.clone().with_routing(RouteMode::on_demand()));
                assert_eq!(
                    table, oracle,
                    "route oracle diverged for {} at λ={lambda}",
                    table.label
                );
                assert_all_finite(&oracle, "oracle");
            }
        }
    }

    /// Chaos link flaps invalidate oracle cache entries mid-run; the
    /// recomputed routes must still replay the precomputed run exactly,
    /// and the invalidation discipline must actually fire.
    #[test]
    fn oracle_matches_table_under_chaos() {
        let topo = topologies::mci();
        let plan = FaultPlan::none()
            .with_link_model(400.0, 60.0)
            .with_member_model(600.0, 120.0)
            .with_teardown_loss(0.1)
            .with_teardown_delay(2.0);
        for system in [
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
            SystemSpec::GlobalDynamic,
            SystemSpec::ShortestPath,
        ] {
            let cfg = quick(25.0, system).with_faults(plan.clone());
            let table = run_experiment(&topo, &cfg);
            let oracle_cfg = cfg.clone().with_routing(RouteMode::on_demand());
            let (oracle, stats) = run_experiment_with_route_stats(&topo, &oracle_cfg);
            assert_eq!(
                table, oracle,
                "route oracle diverged under the chaos plan for {}",
                table.label
            );
            assert!(table.outages > 0, "the plan must actually fire");
            let stats = stats.expect("on-demand runs surface cache stats");
            // GDI computes its own residual-capacity paths and never
            // consults the route book, so its cache holds nothing to
            // invalidate; the route-driven systems must see flap-driven
            // invalidations.
            if !matches!(system, SystemSpec::GlobalDynamic) {
                assert!(
                    stats.invalidations > 0,
                    "{}: link flaps must invalidate cached routes",
                    table.label
                );
            }
        }
    }

    /// Two-phase signalling (both the degenerate express mode and real
    /// delayed exchanges) replays identically through the oracle.
    #[test]
    fn oracle_matches_table_under_two_phase() {
        let topo = topologies::mci();
        for cfg in [
            quick(30.0, SystemSpec::dac(PolicySpec::Ed, 2))
                .with_signaling(SignalingMode::TwoPhase(TwoPhaseConfig::default())),
            quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_signaling(
                SignalingMode::TwoPhase(TwoPhaseConfig {
                    per_hop_delay_secs: 0.05,
                    ..TwoPhaseConfig::default()
                }),
            ),
        ] {
            let table = run_experiment(&topo, &cfg);
            let oracle = run_experiment(&topo, &cfg.clone().with_routing(RouteMode::on_demand()));
            assert_eq!(
                table, oracle,
                "route oracle diverged under two-phase signalling"
            );
        }
    }

    /// Multi-group runs with a demand mix, batched at every worker count:
    /// batch priming prefetches route sets through the oracle before the
    /// parallel phase, so the jobs knob must never leak into results.
    #[test]
    fn oracle_matches_table_multi_group_batched_all_jobs() {
        let topo = topologies::mci();
        let groups = vec![
            GroupSpec {
                members: vec![NodeId::new(0), NodeId::new(8), NodeId::new(16)],
                share: 2.0,
            },
            GroupSpec {
                members: vec![NodeId::new(4), NodeId::new(12)],
                share: 1.0,
            },
        ];
        let mix = vec![
            DemandClass {
                bandwidth: Bandwidth::from_kbps(64),
                weight: 3.0,
            },
            DemandClass {
                bandwidth: Bandwidth::from_kbps(256),
                weight: 1.0,
            },
        ];
        for system in [
            SystemSpec::GlobalDynamic,
            SystemSpec::dac(PolicySpec::wd_dh_default(), 2),
        ] {
            let base = quick(30.0, system)
                .with_groups(groups.clone())
                .with_demand_mix(mix.clone());
            let reference = run_experiment(&topo, &base);
            for jobs in [1, 2, 4] {
                let cfg = base
                    .clone()
                    .with_routing(RouteMode::on_demand())
                    .with_batching(true)
                    .with_batch_jobs(jobs);
                let oracle = run_experiment(&topo, &cfg);
                assert_eq!(
                    reference, oracle,
                    "oracle+batch diverged for {} at jobs={jobs}",
                    reference.label
                );
            }
        }
    }

    /// Cache eviction is invisible: results are independent of the cache
    /// capacity, from a single-entry cache (thrashing on every lookup)
    /// through one big enough to never evict.
    #[test]
    fn oracle_cache_capacity_never_changes_results() {
        let topo = topologies::mci();
        let cfg = quick(30.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2))
            .with_faults(FaultPlan::none().with_link_model(400.0, 60.0));
        let reference = run_experiment(&topo, &cfg);
        for capacity in [1, 2, 64] {
            let oracle_cfg = cfg.clone().with_routing(RouteMode::OnDemand { capacity });
            let (m, stats) = run_experiment_with_route_stats(&topo, &oracle_cfg);
            assert_eq!(
                reference, m,
                "cache capacity {capacity} changed experiment results"
            );
            let stats = stats.expect("on-demand runs surface cache stats");
            assert!(
                stats.peak_entries <= capacity,
                "eviction must bound residency"
            );
            if capacity == 1 {
                assert!(stats.evictions > 0, "a 1-entry cache must evict");
            }
        }
    }

    /// Cache stats are surfaced only by on-demand runs, and a steady-state
    /// run is overwhelmingly cache hits.
    #[test]
    fn route_cache_stats_follow_the_mode() {
        let topo = topologies::mci();
        let cfg = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let (_, none) = run_experiment_with_route_stats(&topo, &cfg);
        assert!(none.is_none(), "precomputed runs have no cache to report");
        let (_, stats) = run_experiment_with_route_stats(
            &topo,
            &cfg.clone().with_routing(RouteMode::on_demand()),
        );
        let stats = stats.expect("on-demand runs surface cache stats");
        assert!(stats.hits > 0);
        assert!(stats.misses > 0, "cold start must miss");
        assert!(
            stats.hit_rate() > 0.9,
            "steady state should be hit-dominated, got {}",
            stats.hit_rate()
        );
    }

    /// Diurnal and flash-crowd arrival processes are deterministic under a
    /// seed and actually modulate load.
    #[test]
    fn modulated_arrivals_are_deterministic_and_modulate() {
        let topo = topologies::mci();
        let diurnal = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_arrivals(
            ArrivalProcess::Diurnal {
                amplitude: 0.8,
                period_secs: 300.0,
            },
        );
        let a = run_experiment(&topo, &diurnal);
        let b = run_experiment(&topo, &diurnal);
        assert_eq!(a, b, "diurnal arrivals must replay bit-identically");
        assert_all_finite(&a, "diurnal");

        let flat = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2));
        let base = run_experiment(&topo, &flat);
        let crowd = quick(20.0, SystemSpec::dac(PolicySpec::Ed, 2)).with_arrivals(
            ArrivalProcess::FlashCrowd {
                start_secs: 400.0,
                duration_secs: 300.0,
                multiplier: 4.0,
                group_index: 0,
            },
        );
        let c1 = run_experiment(&topo, &crowd);
        let c2 = run_experiment(&topo, &crowd);
        assert_eq!(c1, c2, "flash crowds must replay bit-identically");
        assert!(
            c1.offered > base.offered,
            "a 4x burst must raise offered load: {} vs {}",
            c1.offered,
            base.offered
        );
    }

    /// A flash crowd aimed at one group of a two-group deployment
    /// congests that group: its admission probability drops relative to
    /// the same run without the burst, while the untargeted group is
    /// barely affected.
    #[test]
    fn flash_crowd_concentrates_on_target_group() {
        let topo = topologies::mci();
        let groups = vec![
            GroupSpec {
                members: vec![NodeId::new(0), NodeId::new(8), NodeId::new(16)],
                share: 1.0,
            },
            GroupSpec {
                members: vec![NodeId::new(4), NodeId::new(12)],
                share: 1.0,
            },
        ];
        let base = quick(25.0, SystemSpec::dac(PolicySpec::Ed, 1)).with_groups(groups.clone());
        let calm = run_experiment(&topo, &base);
        let crowd = run_experiment(
            &topo,
            &base.clone().with_arrivals(ArrivalProcess::FlashCrowd {
                start_secs: 300.0,
                duration_secs: 600.0,
                multiplier: 6.0,
                group_index: 1,
            }),
        );
        assert!(
            crowd.per_group_ap[1] < calm.per_group_ap[1] - 0.05,
            "the targeted group must congest: {} vs calm {}",
            crowd.per_group_ap[1],
            calm.per_group_ap[1]
        );
    }

    /// Heavy-tailed Pareto holding times are deterministic under a seed
    /// and produce a different sample path than exponential holding at
    /// the same mean.
    #[test]
    fn pareto_holding_is_deterministic_and_distinct() {
        let topo = topologies::mci();
        let pareto = quick(30.0, SystemSpec::dac(PolicySpec::Ed, 2))
            .with_holding_model(HoldingModel::Pareto { shape: 2.5 });
        let a = run_experiment(&topo, &pareto);
        let b = run_experiment(&topo, &pareto);
        assert_eq!(a, b, "Pareto holding must replay bit-identically");
        assert_all_finite(&a, "pareto");
        let exp = run_experiment(&topo, &quick(30.0, SystemSpec::dac(PolicySpec::Ed, 2)));
        assert_ne!(
            a.admitted, exp.admitted,
            "a different holding law must explore a different sample path"
        );
        // Oracle equivalence holds under the new workloads too.
        let oracle = run_experiment(&topo, &pareto.clone().with_routing(RouteMode::on_demand()));
        assert_eq!(a, oracle);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = ExperimentConfig::paper_defaults(5.0, SystemSpec::GlobalDynamic)
            .with_seed(1)
            .with_warmup_secs(10.0)
            .with_measure_secs(20.0)
            .with_flow_bandwidth(Bandwidth::from_kbps(128))
            .with_group(vec![NodeId::new(0)])
            .with_sources(vec![NodeId::new(1)])
            .with_system(SystemSpec::ShortestPath);
        assert_eq!(cfg.seed, 1);
        assert_eq!(cfg.warmup_secs, 10.0);
        assert_eq!(cfg.measure_secs, 20.0);
        assert_eq!(cfg.flow_bandwidth, Bandwidth::from_kbps(128));
        assert_eq!(cfg.group_members.len(), 1);
        assert_eq!(cfg.sources.len(), 1);
        assert_eq!(cfg.system, SystemSpec::ShortestPath);
    }
}
