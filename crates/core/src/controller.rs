//! The admission controller: the DAC procedure of §4.2.

use crate::policy::{SelectionContext, WeightAssigner};
use crate::{HistoryTable, RetrialPolicy};
use anycast_net::{Bandwidth, LinkStateTable, Path, ShardedSnapshot};
use anycast_rsvp::{ProbeError, ReservationEngine, ReservationOutcome, SessionId, SetupTable};
use anycast_sim::SimRng;
use anycast_telemetry::{NullRecorder, ProbeResult, RequestTracer, SkipReason};

/// A flow that passed admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmittedFlow {
    /// The reservation session to tear down when the flow ends.
    pub session: SessionId,
    /// Index of the selected group member.
    pub member_index: usize,
    /// Bottleneck bandwidth of the route before this flow reserved on it.
    pub route_bandwidth: Bandwidth,
}

/// The outcome of running the DAC procedure for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionOutcome {
    /// `Some` if the flow was admitted.
    pub admitted: Option<AdmittedFlow>,
    /// Number of destinations tried (≥ 1 unless the group was exhausted
    /// before any try, which cannot happen with a non-empty group).
    pub tries: u32,
}

impl AdmissionOutcome {
    /// `true` when the flow was admitted.
    pub fn is_admitted(&self) -> bool {
        self.admitted.is_some()
    }
}

/// One AC-router's admission-control state: a weight policy, its local
/// admission history, and a retrial budget.
///
/// The paper places admission decisions at the source routers ("we assume
/// that the source routers that receive anycast flow requests are
/// AC-routers", §4.2), so an experiment creates one controller per source;
/// each accumulates its own history.
///
/// [`admit`](Self::admit) runs the REPEAT loop of Figure 1:
///
/// 1. select a destination by weighted random draw over the not-yet-tried
///    members (weights from the policy, §4.3);
/// 2. attempt an RSVP-style reservation along the fixed route (§4.4);
/// 3. on failure consult the retrial policy (§4.5) and possibly repeat.
#[derive(Debug)]
pub struct AdmissionController {
    policy: Box<dyn WeightAssigner>,
    retrial: RetrialPolicy,
    history: HistoryTable,
    distances: Vec<u32>,
    /// Flat member-indexed cache of route bottleneck bandwidths `B_i` in
    /// bits/s — the `route_bandwidth_bps` slice handed to the policy.
    /// Empty unless the policy needs bandwidth information.
    bw_cache: Vec<f64>,
    /// `links.version()` at which `bw_cache[i]` was last recomputed.
    bw_epoch: Vec<u64>,
    /// `links.version()` at which the whole cache was last validated;
    /// `None` before the first computation.
    bw_version: Option<u64>,
}

impl AdmissionController {
    /// Creates a controller for one source.
    ///
    /// `distances[i]` must be the hop count of the fixed route from this
    /// source to group member `i` (as produced by
    /// [`RouteTable::distances`](anycast_net::RouteTable::distances)).
    ///
    /// # Panics
    ///
    /// Panics if `distances` is empty.
    pub fn new(
        policy: Box<dyn WeightAssigner>,
        retrial: RetrialPolicy,
        distances: Vec<u32>,
    ) -> Self {
        assert!(!distances.is_empty(), "group must have at least one member");
        let history = HistoryTable::new(distances.len());
        AdmissionController {
            policy,
            retrial,
            history,
            distances,
            bw_cache: Vec::new(),
            bw_epoch: Vec::new(),
            bw_version: None,
        }
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// This router's local admission history.
    pub fn history(&self) -> &HistoryTable {
        &self.history
    }

    /// The configured retrial policy.
    pub fn retrial(&self) -> RetrialPolicy {
        self.retrial
    }

    /// Computes the policy's current selection weights without performing
    /// an admission (used by examples and diagnostics).
    pub fn current_weights(&mut self, routes: &[Path], links: &LinkStateTable) -> Vec<f64> {
        self.selection_weights(routes, links)
    }

    /// Step 1.1 of Figure 1: the policy's selection weights against the
    /// current link state. Exposed so a latency-aware driver can run the
    /// selection/retrial loop asynchronously (one weight computation per
    /// attempt, exactly as [`admit_traced`](Self::admit_traced) does).
    pub fn selection_weights(&mut self, routes: &[Path], links: &LinkStateTable) -> Vec<f64> {
        self.refresh_route_bandwidth(routes, links);
        let ctx = SelectionContext {
            distances: &self.distances,
            history: self.history.entries(),
            route_bandwidth_bps: &self.bw_cache,
        };
        let weights = self.policy.assign(&ctx);
        debug_assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        weights
    }

    /// Draws the next destination among the `untried` members, weighted by
    /// `weights`; when every untried member carries zero weight the policy
    /// considers them hopeless, so the draw falls back to uniform over the
    /// untried to keep behaviour total. `None` when the group is
    /// exhausted. RNG consumption is identical to the draw inside
    /// [`admit_traced`](Self::admit_traced).
    pub fn pick_destination(weights: &[f64], untried: &[bool], rng: &mut SimRng) -> Option<usize> {
        match rng.choose_weighted_masked(weights, untried) {
            Some(i) => Some(i),
            None => {
                let remaining: Vec<usize> = (0..untried.len()).filter(|&i| untried[i]).collect();
                match remaining.len() {
                    0 => None,
                    n => Some(remaining[rng.below(n)]),
                }
            }
        }
    }

    /// Records an admission at `member` in the local history (step 1.3).
    pub fn note_success(&mut self, member: usize) {
        self.history.record_success(member);
    }

    /// Records a failed probe at `member` in the local history.
    pub fn note_failure(&mut self, member: usize) {
        self.history.record_failure(member);
    }

    /// Step 1.4, the retrial decision: whether to keep trying after
    /// `tries` probes, given the weight vector of the iteration that just
    /// failed. Returns the remaining untried weight when another try is
    /// allowed, `None` when the request must be rejected.
    pub fn retrial_weight(&self, tries: u32, weights: &[f64], untried: &[bool]) -> Option<f64> {
        if untried.iter().all(|&u| !u) {
            return None; // no alternative destination left
        }
        let remaining_weight: f64 = weights
            .iter()
            .zip(untried)
            .filter(|(_, &u)| u)
            .map(|(&w, _)| w)
            .sum();
        if self.retrial.keep_going(tries, remaining_weight) {
            Some(remaining_weight)
        } else {
            None
        }
    }

    /// Runs the DAC procedure of Figure 1 for one flow request.
    ///
    /// `routes[i]` must be the fixed route to member `i` (same order as the
    /// distances given at construction). Retrials draw without replacement:
    /// every try targets a member not yet tried for this request.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not match the construction-time group size.
    pub fn admit(
        &mut self,
        routes: &[Path],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        rng: &mut SimRng,
    ) -> AdmissionOutcome {
        let mut null = NullRecorder;
        let mut tracer = RequestTracer::new(&mut null, 0.0, 0);
        self.admit_traced(routes, links, rsvp, demand, rng, &mut tracer)
    }

    /// [`admit`](Self::admit) with a telemetry tracer: identical decisions
    /// and RNG consumption, plus a per-request decision trace (weight
    /// vector, probe outcomes, retrial decisions) when the tracer is
    /// armed. With a disarmed tracer every hook is a no-op, which is what
    /// keeps telemetry-off runs bit-identical — guarded by the
    /// zero-overhead test in `tests/telemetry_guard.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not match the construction-time group size.
    pub fn admit_traced(
        &mut self,
        routes: &[Path],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        rng: &mut SimRng,
        tracer: &mut RequestTracer<'_>,
    ) -> AdmissionOutcome {
        self.admit_with(
            routes,
            links,
            rsvp,
            demand,
            rng,
            tracer,
            |links, rsvp, route, bw| rsvp.probe_and_reserve(links, route, bw),
        )
    }

    /// [`admit_traced`](Self::admit_traced) with the reservation performed
    /// as a synchronous two-phase exchange through `setups` (per-hop holds
    /// placed and committed in one instant). This is the degenerate
    /// zero-delay mode of the latency-aware engine: decisions, RNG
    /// consumption and the message ledger are bit-identical to the atomic
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not match the construction-time group size.
    #[allow(clippy::too_many_arguments)]
    pub fn admit_two_phase_express(
        &mut self,
        routes: &[Path],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        setups: &mut SetupTable,
        demand: Bandwidth,
        now: f64,
        rng: &mut SimRng,
        tracer: &mut RequestTracer<'_>,
    ) -> AdmissionOutcome {
        self.admit_with(
            routes,
            links,
            rsvp,
            demand,
            rng,
            tracer,
            |links, rsvp, route, bw| setups.run_express(rsvp, links, route, bw, now),
        )
    }

    /// The REPEAT loop of Figure 1 with the reservation step abstracted:
    /// `reserve` either probes atomically or runs a synchronous two-phase
    /// exchange. Monomorphized per caller, so the atomic path costs
    /// nothing for the generality.
    #[allow(clippy::too_many_arguments)]
    fn admit_with(
        &mut self,
        routes: &[Path],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        rng: &mut SimRng,
        tracer: &mut RequestTracer<'_>,
        mut reserve: impl FnMut(
            &mut LinkStateTable,
            &mut ReservationEngine,
            &Path,
            Bandwidth,
        ) -> Result<ReservationOutcome, ProbeError>,
    ) -> AdmissionOutcome {
        assert_eq!(
            routes.len(),
            self.distances.len(),
            "routes must cover every group member"
        );
        let k = routes.len();
        let mut untried = vec![true; k];
        let mut tries = 0u32;
        loop {
            // Step 1.1: destination selection.
            let weights = self.selection_weights(routes, links);
            tracer.note_weights(&weights);
            let pick = match Self::pick_destination(&weights, &untried, rng) {
                Some(i) => i,
                None => break, // group exhausted
            };
            // Steps 1.2–1.3: resource reservation.
            tries += 1;
            match reserve(links, rsvp, &routes[pick], demand) {
                Ok(outcome) => {
                    self.note_success(pick);
                    tracer.note_probe(pick, weights[pick], ProbeResult::Admitted);
                    tracer.finish_admitted(outcome.session, pick, routes[pick].hops(), tries);
                    return AdmissionOutcome {
                        admitted: Some(AdmittedFlow {
                            session: outcome.session,
                            member_index: pick,
                            route_bandwidth: outcome.route_bandwidth,
                        }),
                        tries,
                    };
                }
                Err(e) => {
                    self.note_failure(pick);
                    untried[pick] = false;
                    tracer.note_probe(
                        pick,
                        weights[pick],
                        ProbeResult::Skipped(SkipReason::LinkBlocked {
                            link: e.failed_link,
                            hop_index: e.hop_index,
                            available_bps: e.available.bps(),
                        }),
                    );
                }
            }
            // Step 1.4: retrial control.
            match self.retrial_weight(tries, &weights, &untried) {
                Some(remaining_weight) => tracer.note_retrial(tries, remaining_weight),
                None => break,
            }
        }
        // Step 2: the flow is rejected.
        tracer.finish_rejected(tries);
        AdmissionOutcome {
            admitted: None,
            tries,
        }
    }

    /// Clears the admission history (e.g. between measurement epochs).
    pub fn reset_history(&mut self) {
        self.history.reset();
    }

    /// Brings `bw_cache` up to date with the ledger, recomputing only the
    /// members whose routes were actually touched since their last
    /// computation (per-link stamps from [`LinkStateTable::stamp`]).
    ///
    /// The cache is exact, not approximate: a member's bottleneck can only
    /// change when some link on its route changes, and any such change
    /// advances that link's stamp past the epoch recorded here. The one
    /// contract is that a controller observes a *single* ledger whose
    /// version counter is monotone over its lifetime — the §4.2 model of
    /// one AC-router against one link-state table, which is how every
    /// experiment drives it. Within a request's retrial loop (and across a
    /// same-quantum arrival batch) the whole-vector version check makes
    /// repeat evaluations O(1).
    fn refresh_route_bandwidth(&mut self, routes: &[Path], links: &LinkStateTable) {
        if !self.policy.needs_route_bandwidth() {
            return; // bw_cache stays empty, as the policy contract expects
        }
        let version = links.version();
        if self.bw_version == Some(version) {
            return;
        }
        let recompute = |cache: &mut f64, epoch: &mut u64, r: &Path| {
            let bw = links.min_available_on(r).bps();
            // Trivial routes report u64::MAX; clamp to keep weights
            // finite but overwhelmingly in favour of the local member.
            *cache = if bw == u64::MAX { 1e18 } else { bw as f64 };
            *epoch = version;
        };
        if self.bw_version.is_none() {
            self.bw_cache.resize(routes.len(), 0.0);
            self.bw_epoch.resize(routes.len(), 0);
            for (i, r) in routes.iter().enumerate() {
                recompute(&mut self.bw_cache[i], &mut self.bw_epoch[i], r);
            }
        } else {
            for (i, r) in routes.iter().enumerate() {
                // Shard-aware staleness check: stripes whose shard stamp
                // has not advanced past this member's epoch are skipped
                // without reading any per-link stamp.
                if links.any_stamp_on_after(r, self.bw_epoch[i]) {
                    recompute(&mut self.bw_cache[i], &mut self.bw_epoch[i], r);
                }
            }
        }
        self.bw_version = Some(version);
    }

    /// Whether this controller's policy consumes route bandwidth at all —
    /// i.e. whether [`prime_route_bandwidth`](Self::prime_route_bandwidth)
    /// would install anything.
    pub fn needs_route_bandwidth(&self) -> bool {
        self.policy.needs_route_bandwidth()
    }

    /// Computes the route-bandwidth vector for `routes` against a frozen
    /// sharded view — the pure half of the bandwidth-cache refresh, safe
    /// to fan out across worker threads. Feed the result to
    /// [`prime_route_bandwidth`](Self::prime_route_bandwidth) with the
    /// view's version.
    pub fn route_bandwidths_against(routes: &[Path], links: ShardedSnapshot<'_>) -> Vec<f64> {
        routes
            .iter()
            .map(|r| {
                let bw = links.min_available_on(r).bps();
                if bw == u64::MAX {
                    1e18
                } else {
                    bw as f64
                }
            })
            .collect()
    }

    /// Installs a route-bandwidth vector precomputed (at ledger version
    /// `version`) by [`route_bandwidths_against`](Self::route_bandwidths_against).
    ///
    /// Value-identical to letting the lazy refresh compute it: if the
    /// ledger is still at `version` when the controller next evaluates,
    /// the refresh's version check accepts the primed vector as-is; if
    /// links moved in between, members whose routes were touched carry a
    /// stamp newer than `version` and are recomputed exactly as they would
    /// have been, while untouched members' primed values already equal a
    /// fresh recompute. No-op for policies that never read route
    /// bandwidth.
    pub fn prime_route_bandwidth(&mut self, values: &[f64], version: u64) {
        if !self.policy.needs_route_bandwidth() {
            return;
        }
        self.bw_cache.clear();
        self.bw_cache.extend_from_slice(values);
        self.bw_epoch.clear();
        self.bw_epoch.resize(values.len(), version);
        self.bw_version = Some(version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Ed, PolicySpec, WdDb, WdDh};
    use anycast_net::routing::RouteTable;
    use anycast_net::{AnycastGroup, NodeId, Topology, TopologyBuilder};

    /// Line 0-1-2-3-4 with members at 0 and 4; source at 1.
    fn fixture() -> (Topology, Vec<Path>, Vec<u32>) {
        let mut b = TopologyBuilder::new(5);
        b.links_uniform([(0, 1), (1, 2), (2, 3), (3, 4)], Bandwidth::from_kbps(128))
            .unwrap();
        let topo = b.build();
        let group = AnycastGroup::new("A", [NodeId::new(0), NodeId::new(4)]).unwrap();
        let table = RouteTable::shortest_paths(&topo, &group);
        let routes = table.routes_from(NodeId::new(1)).unwrap().to_vec();
        let dists = table.distances(NodeId::new(1)).unwrap();
        (topo, routes, dists)
    }

    fn controller(policy: Box<dyn WeightAssigner>, r: u32, dists: Vec<u32>) -> AdmissionController {
        AdmissionController::new(policy, RetrialPolicy::FixedLimit(r), dists)
    }

    #[test]
    fn admits_on_idle_network() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(1);
        let mut c = controller(Box::new(Ed), 1, dists);
        let out = c.admit(
            &routes,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
            &mut rng,
        );
        assert!(out.is_admitted());
        assert_eq!(out.tries, 1);
        assert_eq!(c.history().clean_count(), 2);
    }

    #[test]
    fn retries_distinct_destination_and_succeeds() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        // Saturate the route toward member 0 (link 0-1).
        links
            .reserve(routes[0].links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let mut c = controller(Box::new(Ed), 2, dists);
        // Try many seeds: whenever member 0 is picked first, the retry must
        // land on member 1 and succeed; tear down to keep the network clean.
        let mut retried = false;
        for seed in 0..50 {
            let mut rng = SimRng::seed_from(seed);
            let out = c.admit(
                &routes,
                &mut links,
                &mut rsvp,
                Bandwidth::from_kbps(64),
                &mut rng,
            );
            assert!(out.is_admitted(), "seed {seed}");
            let flow = out.admitted.unwrap();
            assert_eq!(flow.member_index, 1, "only member 1 is reachable");
            if out.tries == 2 {
                retried = true;
            }
            rsvp.teardown(&mut links, flow.session).unwrap();
        }
        assert!(retried, "some request should have needed a retry");
    }

    #[test]
    fn r1_rejects_when_first_pick_blocked() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        links
            .reserve(routes[0].links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let mut c = controller(Box::new(Ed), 1, dists);
        let mut rejections = 0;
        for seed in 0..200 {
            let mut rng = SimRng::seed_from(seed);
            let out = c.admit(
                &routes,
                &mut links,
                &mut rsvp,
                Bandwidth::from_kbps(64),
                &mut rng,
            );
            assert_eq!(out.tries, 1);
            match out.admitted {
                Some(flow) => {
                    rsvp.teardown(&mut links, flow.session).unwrap();
                }
                None => rejections += 1,
            }
        }
        // ED picks member 0 about half the time; all those reject under R=1.
        assert!(
            (60..140).contains(&rejections),
            "rejections {rejections} not near half"
        );
    }

    #[test]
    fn rejects_when_all_members_blocked() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        links
            .reserve(routes[0].links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        links
            .reserve(routes[1].links()[2], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(9);
        let mut c = controller(Box::new(Ed), 5, dists);
        let out = c.admit(
            &routes,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
            &mut rng,
        );
        assert!(!out.is_admitted());
        assert_eq!(out.tries, 2, "both members tried once, none twice");
        assert_eq!(c.history().failures(0), 1);
        assert_eq!(c.history().failures(1), 1);
    }

    #[test]
    fn history_steers_wddh_away_from_failures() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        links
            .reserve(routes[0].links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let policy = WdDh::new(0.2, crate::policy::HistoryMode::FromBase).unwrap();
        let mut c = controller(Box::new(policy), 2, dists);
        let mut rng = SimRng::seed_from(3);
        // Warm the history with a few requests.
        let mut sessions = Vec::new();
        for _ in 0..10 {
            let out = c.admit(
                &routes,
                &mut links,
                &mut rsvp,
                Bandwidth::from_bps(1),
                &mut rng,
            );
            if let Some(f) = out.admitted {
                sessions.push(f.session);
            }
        }
        for s in sessions {
            rsvp.teardown(&mut links, s).unwrap();
        }
        let w = c.current_weights(&routes, &links);
        assert!(
            w[1] > w[0],
            "member 0 keeps failing, weights should favour member 1: {w:?}"
        );
    }

    #[test]
    fn wddb_avoids_saturated_route_without_history() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        links
            .reserve(routes[0].links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let mut c = controller(Box::new(WdDb), 1, dists);
        // WD/D+B sees B_0 = 0 and should never pick member 0, so even with
        // R = 1 every request is admitted.
        for seed in 0..100 {
            let mut rng = SimRng::seed_from(seed);
            let out = c.admit(
                &routes,
                &mut links,
                &mut rsvp,
                Bandwidth::from_kbps(1),
                &mut rng,
            );
            assert!(out.is_admitted(), "seed {seed}");
            let flow = out.admitted.unwrap();
            assert_eq!(flow.member_index, 1);
            rsvp.teardown(&mut links, flow.session).unwrap();
        }
    }

    #[test]
    fn zero_weight_fallback_still_tries() {
        // All routes saturated: WD/D+B weights degrade to distance weights,
        // reservation fails, request rejected after R tries or exhaustion.
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        for l in 0..4u32 {
            let id = anycast_net::LinkId::new(l);
            let avail = links.available(id);
            links.reserve(id, avail).unwrap();
        }
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(5);
        let mut c = controller(Box::new(WdDb), 5, dists);
        let out = c.admit(
            &routes,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
            &mut rng,
        );
        assert!(!out.is_admitted());
        assert_eq!(out.tries, 2, "both members tried");
    }

    #[test]
    fn reset_history_clears_state() {
        let (_, _, dists) = fixture();
        let mut c = controller(PolicySpec::wd_dh_default().build().unwrap(), 2, dists);
        c.history.record_failure(0);
        c.reset_history();
        assert_eq!(c.history().clean_count(), 2);
        assert_eq!(c.retrial(), RetrialPolicy::FixedLimit(2));
        assert_eq!(c.policy_name(), "WD/D+H");
    }

    #[test]
    fn express_admission_matches_atomic_bit_for_bit() {
        // Drive two identical universes through a churn of admissions and
        // teardowns: one through the atomic probe, one through the
        // synchronous two-phase exchange. Outcomes, message ledgers, link
        // state and history must stay equal throughout.
        let (topo, routes, dists) = fixture();
        let mut links_a = LinkStateTable::from_topology(&topo);
        let mut links_e = LinkStateTable::from_topology(&topo);
        let mut rsvp_a = ReservationEngine::new();
        let mut rsvp_e = ReservationEngine::new();
        let mut setups = anycast_rsvp::SetupTable::default();
        let mut ca = controller(Box::new(WdDb), 2, dists.clone());
        let mut ce = controller(Box::new(WdDb), 2, dists);
        let mut rng_a = SimRng::seed_from(42);
        let mut rng_e = SimRng::seed_from(42);
        let mut live_a = Vec::new();
        let mut live_e = Vec::new();
        for step in 0..60u64 {
            let demand = Bandwidth::from_kbps(48);
            let a = ca.admit(&routes, &mut links_a, &mut rsvp_a, demand, &mut rng_a);
            let mut null = NullRecorder;
            let mut tracer = RequestTracer::new(&mut null, 0.0, step);
            let e = ce.admit_two_phase_express(
                &routes,
                &mut links_e,
                &mut rsvp_e,
                &mut setups,
                demand,
                step as f64,
                &mut rng_e,
                &mut tracer,
            );
            assert_eq!(a, e, "step {step}");
            if let Some(f) = a.admitted {
                live_a.push(f.session);
                live_e.push(e.admitted.unwrap().session);
            }
            // Periodically tear down the oldest flow in both universes.
            if step % 3 == 2 && !live_a.is_empty() {
                rsvp_a.teardown(&mut links_a, live_a.remove(0)).unwrap();
                rsvp_e.teardown(&mut links_e, live_e.remove(0)).unwrap();
            }
            assert_eq!(rsvp_a.ledger(), rsvp_e.ledger(), "step {step}");
        }
        assert!(links_a.iter().zip(links_e.iter()).all(|(x, y)| x == y));
        assert_eq!(links_e.total_pending(), Bandwidth::ZERO);
        assert!(setups.in_flight() == 0, "express leaves no live setups");
    }

    #[test]
    fn route_bandwidth_cache_matches_fresh_recompute() {
        // Churn the ledger with reservations, holds and faults; after every
        // mutation the cached controller must see exactly the weights a
        // cache-less (fresh) controller computes from scratch.
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        let mut cached = controller(Box::new(WdDb), 2, dists.clone());
        let check = |cached: &mut AdmissionController, links: &LinkStateTable| {
            let mut fresh = controller(Box::new(WdDb), 2, dists.clone());
            assert_eq!(
                cached.current_weights(&routes, links),
                fresh.current_weights(&routes, links)
            );
        };
        check(&mut cached, &links);
        // Repeat without any mutation: the O(1) whole-vector hit.
        check(&mut cached, &links);
        let l0 = routes[0].links()[0];
        let l1 = routes[1].links()[1];
        links.reserve(l0, Bandwidth::from_kbps(32)).unwrap();
        check(&mut cached, &links);
        links.place_hold(l1, Bandwidth::from_kbps(16)).unwrap();
        check(&mut cached, &links);
        links.commit_hold(l1, Bandwidth::from_kbps(16)).unwrap();
        check(&mut cached, &links);
        links.fail_link(l0).unwrap();
        check(&mut cached, &links);
        links.restore_link(l0).unwrap();
        check(&mut cached, &links);
        links.release(l1, Bandwidth::from_kbps(16)).unwrap();
        check(&mut cached, &links);
        links.reset();
        check(&mut cached, &links);
    }

    /// Priming the bandwidth cache from a precomputed vector is
    /// indistinguishable from letting the lazy refresh build it — both
    /// when the ledger is untouched afterwards and when links move between
    /// priming and evaluation.
    #[test]
    fn primed_route_bandwidth_matches_lazy_refresh() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        links
            .reserve(routes[0].links()[0], Bandwidth::from_kbps(32))
            .unwrap();

        let mut lazy = controller(Box::new(WdDb), 2, dists.clone());
        let mut primed = controller(Box::new(WdDb), 2, dists.clone());
        assert!(primed.needs_route_bandwidth());
        let values = AdmissionController::route_bandwidths_against(&routes, links.sharded());
        primed.prime_route_bandwidth(&values, links.version());

        // Untouched ledger: the primed vector is accepted verbatim.
        assert_eq!(
            primed.current_weights(&routes, &links),
            lazy.current_weights(&routes, &links)
        );

        // Ledger moves after priming: touched members recompute, untouched
        // members keep their (still exact) primed values.
        let values = AdmissionController::route_bandwidths_against(&routes, links.sharded());
        primed.prime_route_bandwidth(&values, links.version());
        links
            .reserve(routes[1].links()[0], Bandwidth::from_kbps(16))
            .unwrap();
        assert_eq!(
            primed.current_weights(&routes, &links),
            lazy.current_weights(&routes, &links)
        );

        // Policies that never read route bandwidth ignore priming.
        let mut ed = controller(Box::new(Ed), 1, dists);
        assert!(!ed.needs_route_bandwidth());
        ed.prime_route_bandwidth(&[1.0; 2], links.version());
        assert!(ed.current_weights(&routes, &links).iter().all(|w| *w > 0.0));
    }

    #[test]
    #[should_panic(expected = "routes must cover every group member")]
    fn mismatched_routes_panic() {
        let (topo, routes, dists) = fixture();
        let mut links = LinkStateTable::from_topology(&topo);
        let mut rsvp = ReservationEngine::new();
        let mut rng = SimRng::seed_from(0);
        let mut c = controller(Box::new(Ed), 1, dists);
        let _ = c.admit(
            &routes[..1],
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
            &mut rng,
        );
    }
}
