//! Calibration-run driver: short, cheap traced DES bursts whose event
//! streams feed the parsimon-style link-decomposition estimator.
//!
//! A *burst* is an ordinary [`run_experiment_traced`] run with shortened
//! horizons and a [`RingRecorder`] whose periodic link sampler is
//! enabled, so the returned stream carries both the per-request decision
//! record (arrivals, probes, admissions) and the per-link occupancy
//! series the estimator's calibrated blocking terms are fitted from.
//! Everything downstream — occupancy extraction, table fitting,
//! composition — lives in `anycast-telemetry::occupancy` and
//! `anycast-estimator`; this module only owns the burst configuration
//! and the run itself, so the driver stays as deterministic as the
//! experiment engine it wraps.

use crate::experiment::{run_experiment_traced, ExperimentConfig, Metrics};
use anycast_net::Topology;
use anycast_telemetry::{EventFilter, RingRecorder, TimedEvent};

/// The event kinds the calibration extractors consume
/// (`link_occupancy` + `source_attempt_profiles`); everything else a run
/// emits is filtered out of the burst's ring on arrival, keeping memory
/// traffic proportional to what the estimator actually reads.
const CALIBRATION_KINDS: &[&str] = &["arrival", "probe", "link_sample"];

/// Horizon and sampling parameters of one calibration burst.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationBurst {
    /// Transient period discarded from the extracted statistics. Much
    /// shorter than the paper's 1800 s: a burst only needs the occupancy
    /// distribution to forget the empty network, not to settle tail
    /// quantiles.
    pub warmup_secs: f64,
    /// Measured period the extractors consume.
    pub measure_secs: f64,
    /// Period of the link-state sampler feeding the occupancy series.
    pub sample_interval_secs: f64,
    /// Ring capacity for the recorded stream. Bursts are short, but probe
    /// and sample volume still scales with λ; an overflowing ring evicts
    /// oldest-first, which would silently bias the join, so the driver
    /// asserts nothing was dropped.
    pub ring_capacity: usize,
}

impl Default for CalibrationBurst {
    fn default() -> Self {
        CalibrationBurst {
            warmup_secs: 30.0,
            measure_secs: 120.0,
            sample_interval_secs: 1.0,
            ring_capacity: anycast_telemetry::DEFAULT_RING_CAPACITY,
        }
    }
}

/// Everything one burst observed: the run's end-of-run metrics plus the
/// full recorded event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationObservation {
    /// λ the burst ran at.
    pub lambda: f64,
    /// Seed of the burst run.
    pub seed: u64,
    /// Warm-up the extractors should skip (equals the burst's
    /// `warmup_secs`).
    pub warmup_secs: f64,
    /// End-of-run metrics — the measured AP anchors the estimator's
    /// residual correction.
    pub metrics: Metrics,
    /// The recorded stream, time-ordered.
    pub events: Vec<TimedEvent>,
}

/// Runs one calibration burst: `base` with the burst's horizons, traced
/// into a ring with the link sampler on and an [`EventFilter`] keeping
/// only the kinds the calibration extractors consume.
///
/// The burst inherits everything else from `base` — system, topology
/// parameters, seed, group, sources — so the observation is drawn from
/// exactly the scenario family being estimated. Deterministic: equal
/// `(topo, base, burst)` give equal observations, bit for bit.
///
/// # Panics
///
/// Panics if the configuration is invalid for the topology (as
/// [`run_experiment_traced`]), if the burst durations are non-positive,
/// or if the ring overflowed (raise
/// [`ring_capacity`](CalibrationBurst::ring_capacity)).
pub fn run_calibration_burst(
    topo: &Topology,
    base: &ExperimentConfig,
    burst: &CalibrationBurst,
) -> CalibrationObservation {
    assert!(
        burst.warmup_secs >= 0.0 && burst.measure_secs > 0.0,
        "burst horizons must be positive, got warmup {} measure {}",
        burst.warmup_secs,
        burst.measure_secs
    );
    assert!(
        burst.sample_interval_secs > 0.0,
        "sample interval must be positive"
    );
    let config = base
        .clone()
        .with_warmup_secs(burst.warmup_secs)
        .with_measure_secs(burst.measure_secs);
    let mut recorder = RingRecorder::with_capacity(config.seed, burst.ring_capacity)
        .with_sample_interval(burst.sample_interval_secs)
        .with_filter(EventFilter::keep(CALIBRATION_KINDS));
    let metrics = run_experiment_traced(topo, &config, &mut recorder);
    let (_, events, dropped) = recorder.into_parts();
    assert_eq!(
        dropped, 0,
        "calibration ring overflowed ({dropped} events dropped): raise ring_capacity"
    );
    CalibrationObservation {
        lambda: config.lambda,
        seed: config.seed,
        warmup_secs: burst.warmup_secs,
        metrics,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SystemSpec;
    use crate::policy::PolicySpec;
    use anycast_net::topologies;
    use anycast_telemetry::Event;

    #[test]
    fn burst_is_deterministic_and_sampled() {
        let topo = topologies::mci();
        let base =
            ExperimentConfig::paper_defaults(20.0, SystemSpec::dac(PolicySpec::wd_dh_default(), 2))
                .with_seed(7);
        let burst = CalibrationBurst {
            warmup_secs: 5.0,
            measure_secs: 20.0,
            ..Default::default()
        };
        let a = run_calibration_burst(&topo, &base, &burst);
        let b = run_calibration_burst(&topo, &base, &burst);
        assert_eq!(a, b, "same inputs must give identical observations");
        assert!(a.metrics.offered > 0);
        let samples = a
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::LinkSample { .. }))
            .count();
        // ~25 s of sampling at 1 Hz across every link.
        assert!(samples >= topo.link_count(), "only {samples} samples");
        let arrivals = a
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::RequestArrival { .. }))
            .count();
        assert!(arrivals > 100, "only {arrivals} arrivals recorded");
    }

    #[test]
    #[should_panic(expected = "horizons must be positive")]
    fn zero_measure_rejected() {
        let topo = topologies::mci();
        let base = ExperimentConfig::paper_defaults(5.0, SystemSpec::ShortestPath);
        let burst = CalibrationBurst {
            measure_secs: 0.0,
            ..Default::default()
        };
        let _ = run_calibration_burst(&topo, &base, &burst);
    }
}
