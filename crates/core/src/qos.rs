//! Mapping delay requirements onto bandwidth (the §6 extension).
//!
//! The paper's admission control handles bandwidth QoS only, but §6 notes
//! that "in the networks with rate-based schedulers, such as weighted fair
//! queue (WFQ) \[or\] virtual clock (VC), delay requirement can be directly
//! mapped to bandwidth requirement". This module performs that mapping with
//! the Parekh–Gallager end-to-end delay bound for a leaky-bucket-shaped
//! flow crossing `H` rate-based schedulers at reserved rate `g`:
//!
//! ```text
//! D  ≤  σ/g + (H−1)·L/g + Σⱼ Lmax/Cⱼ
//! ```
//!
//! where `σ` is the token-bucket burst, `L` the flow's maximum packet size,
//! and `Lmax/Cⱼ` the non-preemption latency of hop `j`. Solving for `g`
//! turns a delay bound into the bandwidth to hand to the DAC procedure.

use crate::DacError;
use anycast_net::Bandwidth;
use serde::{Deserialize, Serialize};

/// Leaky-bucket traffic description of a flow requesting delay QoS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Token-bucket burst size σ in bytes.
    pub burst_bytes: u64,
    /// The flow's maximum packet size L in bytes.
    pub max_packet_bytes: u64,
    /// Sustained (token) rate ρ — the reservation can never be below this.
    pub sustained_rate: Bandwidth,
}

impl FlowSpec {
    /// A 64 kb/s voice-like flow: 1500-byte packets, 3 kB burst — the kind
    /// of flow the paper's experiments admit.
    pub fn voice_like() -> Self {
        FlowSpec {
            burst_bytes: 3_000,
            max_packet_bytes: 1_500,
            sustained_rate: Bandwidth::from_kbps(64),
        }
    }
}

/// Computes the bandwidth that must be reserved for `spec` so its
/// end-to-end delay over `hops` WFQ/Virtual-Clock schedulers stays below
/// `delay_bound_secs`, on links of capacity `link_capacity` carrying
/// packets of at most `link_max_packet_bytes`.
///
/// The result is the Parekh–Gallager rate, floored at the flow's sustained
/// rate. A zero-hop route (source co-located with the destination) needs
/// only the sustained rate.
///
/// # Errors
///
/// [`DacError::InfeasibleDelay`] when the fixed per-hop latency
/// `H · Lmax/C` already exceeds the bound — no reservation rate can help.
///
/// # Panics
///
/// Panics if `delay_bound_secs` is not positive/finite or the link
/// capacity is zero.
///
/// # Example
///
/// ```rust
/// use anycast_dac::qos::{required_bandwidth, FlowSpec};
/// use anycast_net::Bandwidth;
///
/// # fn main() -> Result<(), anycast_dac::DacError> {
/// let spec = FlowSpec::voice_like();
/// // 100 ms across 4 hops of 100 Mb/s links.
/// let bw = required_bandwidth(&spec, 0.100, 4, Bandwidth::from_mbps(100), 1_500)?;
/// assert!(bw >= spec.sustained_rate);
/// # Ok(())
/// # }
/// ```
pub fn required_bandwidth(
    spec: &FlowSpec,
    delay_bound_secs: f64,
    hops: usize,
    link_capacity: Bandwidth,
    link_max_packet_bytes: u64,
) -> Result<Bandwidth, DacError> {
    assert!(
        delay_bound_secs.is_finite() && delay_bound_secs > 0.0,
        "delay bound must be positive and finite, got {delay_bound_secs}"
    );
    assert!(
        !link_capacity.is_zero(),
        "link capacity must be positive for delay mapping"
    );
    if hops == 0 {
        return Ok(spec.sustained_rate);
    }
    // Fixed term: Σ_j Lmax/C_j (uniform links).
    let per_hop_latency = (link_max_packet_bytes as f64 * 8.0) / link_capacity.bps() as f64;
    let fixed = hops as f64 * per_hop_latency;
    if fixed >= delay_bound_secs {
        return Err(DacError::InfeasibleDelay {
            requested_secs: delay_bound_secs,
            floor_secs: fixed,
        });
    }
    // Rate-dependent term: (σ + (H−1)·L) / g ≤ D − fixed.
    let numerator_bits =
        (spec.burst_bytes + (hops as u64 - 1) * spec.max_packet_bytes) as f64 * 8.0;
    let g = numerator_bits / (delay_bound_secs - fixed);
    let g = Bandwidth::from_bps(g.ceil() as u64);
    Ok(g.max(spec.sustained_rate))
}

/// The delay actually guaranteed when `rate` is reserved for `spec` across
/// `hops` schedulers — the inverse of [`required_bandwidth`], exposed so
/// callers can display the slack a reservation obtained.
///
/// # Panics
///
/// Panics if `rate` or `link_capacity` is zero with a nonzero hop count.
pub fn guaranteed_delay(
    spec: &FlowSpec,
    rate: Bandwidth,
    hops: usize,
    link_capacity: Bandwidth,
    link_max_packet_bytes: u64,
) -> f64 {
    if hops == 0 {
        return 0.0;
    }
    assert!(!rate.is_zero(), "reserved rate must be positive");
    assert!(!link_capacity.is_zero(), "link capacity must be positive");
    let per_hop_latency = (link_max_packet_bytes as f64 * 8.0) / link_capacity.bps() as f64;
    let fixed = hops as f64 * per_hop_latency;
    let numerator_bits =
        (spec.burst_bytes + (hops as u64 - 1) * spec.max_packet_bytes) as f64 * 8.0;
    fixed + numerator_bits / rate.bps() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Bandwidth = Bandwidth::from_mbps(100);

    #[test]
    fn hand_computed_example() {
        // σ = 1000 B, L = 500 B, H = 2, C = 100 Mb/s, Lmax = 1000 B.
        // fixed = 2 · 8000/1e8 = 1.6e-4 s.
        // numerator = (1000 + 500) · 8 = 12000 bits.
        // D = 1 ms → g = 12000 / (0.001 − 0.00016) = 14 285 714.3 b/s,
        // well above the 8 kb/s sustained floor, so g wins.
        let spec = FlowSpec {
            burst_bytes: 1_000,
            max_packet_bytes: 500,
            sustained_rate: Bandwidth::from_bps(8_000),
        };
        let bw = required_bandwidth(&spec, 0.001, 2, C, 1_000).unwrap();
        assert_eq!(bw, Bandwidth::from_bps(14_285_715));
    }

    #[test]
    fn tighter_delay_needs_more_bandwidth() {
        let spec = FlowSpec::voice_like();
        let loose = required_bandwidth(&spec, 0.5, 4, C, 1_500).unwrap();
        let tight = required_bandwidth(&spec, 0.05, 4, C, 1_500).unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn longer_routes_need_more_bandwidth() {
        let spec = FlowSpec::voice_like();
        let short = required_bandwidth(&spec, 0.1, 2, C, 1_500).unwrap();
        let long = required_bandwidth(&spec, 0.1, 6, C, 1_500).unwrap();
        assert!(long > short, "distance discrimination of §4.3.2 in action");
    }

    #[test]
    fn sustained_rate_is_a_floor() {
        let spec = FlowSpec {
            burst_bytes: 10,
            max_packet_bytes: 10,
            sustained_rate: Bandwidth::from_mbps(5),
        };
        // A very loose bound would need almost no rate, but ρ wins.
        let bw = required_bandwidth(&spec, 10.0, 3, C, 1_500).unwrap();
        assert_eq!(bw, Bandwidth::from_mbps(5));
    }

    #[test]
    fn infeasible_delay_detected() {
        let spec = FlowSpec::voice_like();
        // 4 hops of 1500 B at 100 Mb/s = 0.48 ms fixed; ask for 0.1 ms.
        let err = required_bandwidth(&spec, 0.0001, 4, C, 1_500).unwrap_err();
        assert!(matches!(err, DacError::InfeasibleDelay { .. }));
    }

    #[test]
    fn zero_hops_needs_only_sustained_rate() {
        let spec = FlowSpec::voice_like();
        let bw = required_bandwidth(&spec, 0.001, 0, C, 1_500).unwrap();
        assert_eq!(bw, spec.sustained_rate);
        assert_eq!(guaranteed_delay(&spec, bw, 0, C, 1_500), 0.0);
    }

    #[test]
    fn mapping_round_trips() {
        let spec = FlowSpec::voice_like();
        let bound = 0.080;
        let bw = required_bandwidth(&spec, bound, 5, C, 1_500).unwrap();
        let achieved = guaranteed_delay(&spec, bw, 5, C, 1_500);
        assert!(
            achieved <= bound + 1e-9,
            "achieved {achieved} exceeds bound {bound}"
        );
        // And the bound is tight to within the 1-bit/s ceiling rounding.
        let slack = bound - achieved;
        assert!(slack < 0.001, "mapping unnecessarily conservative: {slack}");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_delay_bound_panics() {
        let _ = required_bandwidth(&FlowSpec::voice_like(), 0.0, 1, C, 1_500);
    }
}
