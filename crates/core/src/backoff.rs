//! Bounded exponential backoff for two-phase setup retransmissions.
//!
//! When a setup message is lost, the atomic engine of the paper never
//! notices — its exchange is instantaneous. Under latency-aware two-phase
//! signalling a lost PATH or RESV shows up as a *setup timeout* at the
//! source, and the natural first response is to retransmit toward the
//! same destination before burning one of the §4.5 retrials on a new
//! one. [`BackoffPolicy`] bounds that persistence: each retransmission
//! waits `base · multiplier^attempt` seconds (capped), optionally
//! spread by deterministic jitter so synchronized losses do not
//! resynchronize into the same collision.

use anycast_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Retransmission schedule for timed-out two-phase setups.
///
/// `attempt` numbering starts at 0 for the delay before the *first*
/// retransmission. With the defaults (base 0.1 s, multiplier 2, cap
/// 2 s, 3 retransmits) a persistently lost setup waits 0.1 s, 0.2 s and
/// 0.4 s (± jitter) before the destination is declared failed and the
/// §4.5 retrial policy takes over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retransmission, in seconds.
    pub base_secs: f64,
    /// Multiplier applied per subsequent retransmission.
    pub multiplier: f64,
    /// Upper bound on any single backoff delay, in seconds.
    pub max_backoff_secs: f64,
    /// Retransmissions allowed per destination before the attempt counts
    /// as a failed try. Zero disables retransmission entirely.
    pub max_retransmits: u32,
    /// Fractional jitter: each delay is scaled by a uniform factor in
    /// `[1 - jitter_frac, 1 + jitter_frac]`. Zero draws no randomness.
    pub jitter_frac: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_secs: 0.1,
            multiplier: 2.0,
            max_backoff_secs: 2.0,
            max_retransmits: 3,
            jitter_frac: 0.1,
        }
    }
}

impl BackoffPolicy {
    /// Validates the policy's parameters.
    ///
    /// # Panics
    ///
    /// Panics if any field is non-finite or out of range.
    pub fn validate(&self) {
        assert!(
            self.base_secs.is_finite() && self.base_secs >= 0.0,
            "backoff base must be finite and non-negative, got {}",
            self.base_secs
        );
        assert!(
            self.multiplier.is_finite() && self.multiplier >= 1.0,
            "backoff multiplier must be finite and at least 1, got {}",
            self.multiplier
        );
        assert!(
            self.max_backoff_secs.is_finite() && self.max_backoff_secs >= 0.0,
            "backoff cap must be finite and non-negative, got {}",
            self.max_backoff_secs
        );
        assert!(
            self.jitter_frac.is_finite() && (0.0..1.0).contains(&self.jitter_frac),
            "backoff jitter fraction must lie in [0, 1), got {}",
            self.jitter_frac
        );
    }

    /// The delay before retransmission number `attempt` (0-based).
    ///
    /// Deterministic given the rng substream: the jitter factor is a
    /// single uniform draw, and no draw at all when `jitter_frac` is
    /// zero — so jitter-free policies consume no randomness.
    pub fn delay_for(&self, attempt: u32, rng: &mut SimRng) -> f64 {
        let exp = self.multiplier.powi(attempt.min(i32::MAX as u32) as i32);
        let raw = (self.base_secs * exp).min(self.max_backoff_secs);
        if self.jitter_frac > 0.0 {
            let spread = self.jitter_frac * (2.0 * rng.uniform() - 1.0);
            raw * (1.0 + spread)
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_grow_then_cap() {
        let p = BackoffPolicy {
            jitter_frac: 0.0,
            ..BackoffPolicy::default()
        };
        p.validate();
        let mut rng = SimRng::seed_from(1);
        assert_eq!(p.delay_for(0, &mut rng), 0.1);
        assert_eq!(p.delay_for(1, &mut rng), 0.2);
        assert_eq!(p.delay_for(2, &mut rng), 0.4);
        // Unbounded growth is clipped at the cap.
        assert_eq!(p.delay_for(10, &mut rng), 2.0);
    }

    #[test]
    fn zero_jitter_consumes_no_randomness() {
        let p = BackoffPolicy {
            jitter_frac: 0.0,
            ..BackoffPolicy::default()
        };
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        let _ = p.delay_for(3, &mut a);
        assert_eq!(a.uniform(), b.uniform(), "no draw should have happened");
    }

    #[test]
    fn jitter_stays_within_band_and_is_deterministic() {
        let p = BackoffPolicy::default();
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        for attempt in 0..20 {
            let base = BackoffPolicy {
                jitter_frac: 0.0,
                ..p
            }
            .delay_for(attempt, &mut SimRng::seed_from(0));
            let d = p.delay_for(attempt, &mut a);
            assert!(
                d >= base * 0.9 - 1e-12 && d <= base * 1.1 + 1e-12,
                "{d} vs {base}"
            );
            assert_eq!(d, p.delay_for(attempt, &mut b));
        }
    }

    #[test]
    #[should_panic(expected = "backoff multiplier must be finite and at least 1")]
    fn shrinking_multiplier_rejected() {
        BackoffPolicy {
            multiplier: 0.5,
            ..BackoffPolicy::default()
        }
        .validate();
    }
}
