//! Retrial control (§4.5): how many destinations one request may try.

use serde::{Deserialize, Serialize};

/// The counter-based retrial scheme of §4.5, plus an adaptive extension.
///
/// The paper's scheme is a plain counter: each destination tried increments
/// `c`, and the procedure keeps going while `c < R`. Since retrials sample
/// *distinct* destinations, `R` is also capped by the group size in
/// practice (§5.2.1 calls `R = 5 = K` "the upper limit").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetrialPolicy {
    /// Allow up to `R` tries in total (the paper's `<A, R>` notation).
    FixedLimit(u32),
    /// Extension: allow up to `max` tries but stop early once the selection
    /// weights of the remaining destinations fall below `min_weight` —
    /// trying a destination the algorithm itself considers hopeless only
    /// burns signaling messages.
    Adaptive {
        /// Hard cap on tries.
        max: u32,
        /// Minimum total remaining weight worth another try, in `[0, 1]`.
        min_weight: f64,
    },
}

impl RetrialPolicy {
    /// The hard maximum number of tries.
    pub fn max_tries(&self) -> u32 {
        match self {
            RetrialPolicy::FixedLimit(r) => *r,
            RetrialPolicy::Adaptive { max, .. } => *max,
        }
    }

    /// Decides whether another destination should be tried after `tries`
    /// attempts, when the not-yet-tried destinations hold
    /// `remaining_weight` of the current selection distribution.
    ///
    /// A NaN `remaining_weight` (a degenerate weight vector upstream) is
    /// treated as *unknown*, not hopeless: the adaptive early-stop only
    /// fires on evidence the remainder is worthless, so NaN falls back to
    /// the plain counter. (NaN fails every `>=` comparison, so the naive
    /// check would silently forfeit the remaining retrials.)
    pub fn keep_going(&self, tries: u32, remaining_weight: f64) -> bool {
        match self {
            RetrialPolicy::FixedLimit(r) => tries < *r,
            RetrialPolicy::Adaptive { max, min_weight } => {
                tries < *max && (remaining_weight.is_nan() || remaining_weight >= *min_weight)
            }
        }
    }
}

impl Default for RetrialPolicy {
    /// `R = 2`: the paper's sweet spot (§5.2.1 observation 2 — "improvement
    /// of admission probability is significant when R increases from 1 to
    /// 2" and flattens beyond).
    fn default() -> Self {
        RetrialPolicy::FixedLimit(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_limit_counts_tries() {
        let p = RetrialPolicy::FixedLimit(3);
        assert!(p.keep_going(0, 1.0));
        assert!(p.keep_going(2, 0.0));
        assert!(!p.keep_going(3, 1.0));
        assert_eq!(p.max_tries(), 3);
    }

    #[test]
    fn r_one_never_retries() {
        let p = RetrialPolicy::FixedLimit(1);
        assert!(p.keep_going(0, 1.0));
        assert!(!p.keep_going(1, 1.0));
    }

    #[test]
    fn adaptive_stops_on_hopeless_weights() {
        let p = RetrialPolicy::Adaptive {
            max: 5,
            min_weight: 0.05,
        };
        assert!(p.keep_going(1, 0.5));
        assert!(!p.keep_going(1, 0.01));
        assert!(!p.keep_going(5, 0.5));
        assert_eq!(p.max_tries(), 5);
    }

    #[test]
    fn adaptive_nan_weight_falls_back_to_the_counter() {
        // Regression: NaN fails `>=`, so the old check read NaN as
        // "hopeless" and silently stopped retrying after the first failure.
        let p = RetrialPolicy::Adaptive {
            max: 5,
            min_weight: 0.05,
        };
        assert!(p.keep_going(1, f64::NAN));
        assert!(p.keep_going(4, f64::NAN));
        assert!(!p.keep_going(5, f64::NAN), "hard cap still binds");
    }

    #[test]
    fn default_is_paper_sweet_spot() {
        assert_eq!(RetrialPolicy::default(), RetrialPolicy::FixedLimit(2));
    }
}
