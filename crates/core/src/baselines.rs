//! The two baseline systems of §5.1: SP and GDI.

use crate::{AdmissionOutcome, AdmittedFlow};
use anycast_net::routing::{filtered_shortest_path_with, RoutingScratch};
use anycast_net::{AnycastGroup, Bandwidth, LinkStateTable, NodeId, Path, Topology};
use anycast_rsvp::ReservationEngine;
use anycast_telemetry::{NullRecorder, ProbeResult, RequestTracer, SkipReason};

/// The Shortest-Path (SP) baseline: "the admission control procedure will
/// always pick the destination which has the shortest distance from the
/// source router for each incoming flow" (§5.1).
///
/// Anycast traffic from a source is never spread — every flow goes to the
/// same nearest member, so congestion builds on that one route. The paper
/// expects (and Figure 6 confirms) every DAC variant to beat this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortestPathSystem {
    nearest_member: usize,
}

impl ShortestPathSystem {
    /// Creates the baseline for one source, given the index of its nearest
    /// group member (ties broken toward the lower index, as in
    /// [`RouteTable::nearest_member`](anycast_net::RouteTable::nearest_member)).
    pub fn new(nearest_member: usize) -> Self {
        ShortestPathSystem { nearest_member }
    }

    /// The member every flow from this source is sent to.
    pub fn nearest_member(&self) -> usize {
        self.nearest_member
    }

    /// Attempts to admit one flow: a single reservation attempt on the
    /// fixed route to the nearest member. No retrials ever happen —
    /// there is no alternative destination in this system.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not contain the nearest member's route.
    pub fn admit(
        &self,
        routes: &[Path],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
    ) -> AdmissionOutcome {
        let mut null = NullRecorder;
        let mut tracer = RequestTracer::new(&mut null, 0.0, 0);
        self.admit_traced(routes, links, rsvp, demand, &mut tracer)
    }

    /// [`admit`](Self::admit) with a telemetry tracer. SP has no weights;
    /// the single candidate is traced with weight 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `routes` does not contain the nearest member's route.
    pub fn admit_traced(
        &self,
        routes: &[Path],
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        tracer: &mut RequestTracer<'_>,
    ) -> AdmissionOutcome {
        let route = &routes[self.nearest_member];
        match rsvp.probe_and_reserve(links, route, demand) {
            Ok(outcome) => {
                tracer.note_weights(&[1.0]);
                tracer.note_probe(self.nearest_member, 1.0, ProbeResult::Admitted);
                tracer.finish_admitted(outcome.session, self.nearest_member, route.hops(), 1);
                AdmissionOutcome {
                    admitted: Some(AdmittedFlow {
                        session: outcome.session,
                        member_index: self.nearest_member,
                        route_bandwidth: outcome.route_bandwidth,
                    }),
                    tries: 1,
                }
            }
            Err(e) => {
                tracer.note_weights(&[1.0]);
                tracer.note_probe(
                    self.nearest_member,
                    1.0,
                    ProbeResult::Skipped(SkipReason::LinkBlocked {
                        link: e.failed_link,
                        hop_index: e.hop_index,
                        available_bps: e.available.bps(),
                    }),
                );
                tracer.finish_rejected(1);
                AdmissionOutcome {
                    admitted: None,
                    tries: 1,
                }
            }
        }
    }
}

/// The Global-Dynamic-Information (GDI) baseline: an oracle with "perfect
/// global dynamic information on network status" that "is allowed to use
/// any path from a source to a destination" and admits whenever *any* path
/// with sufficient bandwidth reaches *any* member (§5.1).
///
/// Admission is exactly residual-graph reachability: a flow of demand `b`
/// is admissible iff some member is reachable through links with available
/// bandwidth ≥ `b`. Among feasible members this implementation picks the
/// one whose feasible path is shortest, so the oracle also consumes the
/// least bandwidth — the strongest version of the baseline.
///
/// The paper calls this system "ideal, but ... not realistic": it exists
/// to upper-bound what any destination-selection algorithm could achieve.
///
/// The system owns a [`RoutingScratch`] so the per-member residual-network
/// searches (one per group member per admission request — the hottest loop
/// in every sweep) reuse their BFS buffers instead of reallocating them;
/// `admit` therefore takes `&mut self`.
#[derive(Debug, Clone, Default)]
pub struct GlobalDynamicSystem {
    scratch: RoutingScratch,
    batch: GdiBatchCache,
}

/// One memoised exhaustive search: the full per-member feasibility verdict
/// and the winning (member, path) for a `(source, demand)` pair, valid
/// while no availability threshold relevant to `demand` has been crossed.
#[derive(Debug, Clone)]
struct GdiBatchEntry {
    source: NodeId,
    demand_bps: u64,
    /// `flips.len()` at the moment this entry was computed; only flips
    /// recorded after that index can invalidate it.
    flips_seen: usize,
    feasible: Vec<bool>,
    best: Option<(usize, Path)>,
}

/// Same-quantum memo for GDI's exhaustive residual search.
///
/// Within an arrival batch the ledger moves in one direction: the only
/// mutations are GDI's own reservations (anything else — a departure, a
/// fault, a refresh sweep — flushes the batch), so per-link availability
/// only *decreases*. A cached search for demand `d` therefore stays exact
/// until some link's availability crosses `d` downward: links that dropped
/// but stayed ≥ `d` leave the feasible-link set — and hence the
/// deterministic BFS result — untouched, and no link can become feasible
/// again. Each reservation records its per-link `(old, new)` availability
/// pair; an entry is revalidated by scanning the flips recorded since it
/// was computed for one that crossed its demand.
#[derive(Debug, Clone, Default)]
struct GdiBatchCache {
    entries: Vec<GdiBatchEntry>,
    /// `(old_available_bps, new_available_bps)` of every link availability
    /// drop since the batch began.
    flips: Vec<(u64, u64)>,
}

/// A memo hit: the per-member feasibility flags and the winning
/// `(member_index, path)`, if any member was feasible.
type GdiMemoHit<'a> = (&'a [bool], &'a Option<(usize, Path)>);

impl GdiBatchCache {
    fn clear(&mut self) {
        self.entries.clear();
        self.flips.clear();
    }

    /// A still-exact memo for `(source, demand)`, if one exists.
    fn lookup(&self, source: NodeId, demand_bps: u64) -> Option<GdiMemoHit<'_>> {
        let e = self
            .entries
            .iter()
            .find(|e| e.source == source && e.demand_bps == demand_bps)?;
        let crossed = self.flips[e.flips_seen..]
            .iter()
            .any(|&(old, new)| old >= demand_bps && new < demand_bps);
        if crossed {
            None
        } else {
            Some((&e.feasible, &e.best))
        }
    }

    fn store(
        &mut self,
        source: NodeId,
        demand_bps: u64,
        feasible: Vec<bool>,
        best: Option<(usize, Path)>,
    ) {
        let entry = GdiBatchEntry {
            source,
            demand_bps,
            flips_seen: self.flips.len(),
            feasible,
            best,
        };
        match self
            .entries
            .iter_mut()
            .find(|e| e.source == source && e.demand_bps == demand_bps)
        {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    fn note_drop(&mut self, old_bps: u64, new_bps: u64) {
        self.flips.push((old_bps, new_bps));
    }
}

impl GlobalDynamicSystem {
    /// Creates the oracle baseline.
    pub fn new() -> Self {
        GlobalDynamicSystem::default()
    }

    /// Attempts to admit one flow with full knowledge of the residual
    /// network.
    ///
    /// Searches a feasible path to every member (filtered BFS over links
    /// with `AB_l ≥ demand`), reserves along the best one found, and
    /// rejects only when no member is reachable — the information-theoretic
    /// optimum for single-path admission.
    pub fn admit(
        &mut self,
        topo: &Topology,
        group: &AnycastGroup,
        source: NodeId,
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
    ) -> AdmissionOutcome {
        let mut null = NullRecorder;
        let mut tracer = RequestTracer::new(&mut null, 0.0, 0);
        self.admit_traced(topo, group, source, links, rsvp, demand, &mut tracer)
    }

    /// [`admit`](Self::admit) with a telemetry tracer. GDI has no weight
    /// vector (candidates are traced with weight 0.0); the trace instead
    /// records, for every member, whether a feasible path existed
    /// (`no_feasible_path`) and which feasible members lost the
    /// shortest-path tie-break (`not_selected`). Per-member bookkeeping is
    /// gated on [`RequestTracer::is_armed`], so disabled runs skip it.
    #[allow(clippy::too_many_arguments)]
    pub fn admit_traced(
        &mut self,
        topo: &Topology,
        group: &AnycastGroup,
        source: NodeId,
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        tracer: &mut RequestTracer<'_>,
    ) -> AdmissionOutcome {
        let mut best: Option<(usize, Path)> = None;
        // (member_index, feasible) per candidate; only kept when tracing.
        let mut considered: Vec<(usize, bool)> = Vec::new();
        for (idx, &member) in group.members().iter().enumerate() {
            let found =
                filtered_shortest_path_with(&mut self.scratch, topo, links, source, member, demand);
            if tracer.is_armed() {
                considered.push((idx, found.is_some()));
            }
            if let Some(path) = found {
                let better = match &best {
                    Some((_, current)) => path.hops() < current.hops(),
                    None => true,
                };
                if better {
                    best = Some((idx, path));
                }
            }
        }
        if tracer.is_armed() {
            let chosen = best.as_ref().map(|(idx, _)| *idx);
            for (idx, feasible) in considered {
                if Some(idx) == chosen {
                    continue; // reported below as the admitted probe
                }
                let skip = if feasible {
                    SkipReason::NotSelected
                } else {
                    SkipReason::NoFeasiblePath
                };
                tracer.note_skip(idx, 0.0, skip);
            }
        }
        match best {
            Some((member_index, path)) => {
                let outcome = rsvp
                    .probe_and_reserve(links, &path, demand)
                    .expect("filtered search returned a feasible path");
                tracer.note_probe(member_index, 0.0, ProbeResult::Admitted);
                tracer.finish_admitted(outcome.session, member_index, path.hops(), 1);
                AdmissionOutcome {
                    admitted: Some(AdmittedFlow {
                        session: outcome.session,
                        member_index,
                        route_bandwidth: outcome.route_bandwidth,
                    }),
                    tries: 1,
                }
            }
            None => {
                tracer.finish_rejected(1);
                AdmissionOutcome {
                    admitted: None,
                    tries: 1,
                }
            }
        }
    }

    /// Starts a new same-quantum arrival batch: forgets every memoised
    /// search. Must be called before the first admission of each batch
    /// (including size-one batches) — the cache's exactness argument only
    /// holds while nothing but this system's own reservations touches the
    /// ledger, which is precisely what a batch guarantees.
    pub fn begin_batch(&mut self) {
        self.batch.clear();
    }

    /// The exhaustive per-member residual search for one `(source, demand)`
    /// pair: the per-member feasibility verdict and the winning
    /// `(member_index, path)` (fewest hops, first member winning ties).
    ///
    /// A pure function of the ledger: this is the read-only half of a
    /// batched admission, factored out so batch priming can fan it out
    /// across worker threads, each with its own `scratch`, against a
    /// shared frozen snapshot.
    pub fn compute_batch_entry(
        scratch: &mut RoutingScratch,
        topo: &Topology,
        group: &AnycastGroup,
        links: &LinkStateTable,
        source: NodeId,
        demand: Bandwidth,
    ) -> (Vec<bool>, Option<(usize, Path)>) {
        let mut feasible = Vec::with_capacity(group.members().len());
        let mut best: Option<(usize, Path)> = None;
        for (idx, &member) in group.members().iter().enumerate() {
            let found = filtered_shortest_path_with(scratch, topo, links, source, member, demand);
            feasible.push(found.is_some());
            if let Some(path) = found {
                let better = match &best {
                    Some((_, current)) => path.hops() < current.hops(),
                    None => true,
                };
                if better {
                    best = Some((idx, path));
                }
            }
        }
        (feasible, best)
    }

    /// Installs a batch-start memo entry computed by
    /// [`compute_batch_entry`](Self::compute_batch_entry) for
    /// `(source, demand)`.
    ///
    /// Must run after [`begin_batch`](Self::begin_batch) and before any
    /// admission of that batch: with the flips ledger still empty, the
    /// entry records `flips_seen = 0`, so every in-batch availability drop
    /// is scanned at lookup time — a primed entry revalidates exactly like
    /// one the miss path computed itself, and admission outcomes are
    /// bit-identical either way.
    pub fn prime_batch_entry(
        &mut self,
        source: NodeId,
        demand: Bandwidth,
        feasible: Vec<bool>,
        best: Option<(usize, Path)>,
    ) {
        self.batch.store(source, demand.bps(), feasible, best);
    }

    /// [`admit_traced`](Self::admit_traced) memoising the exhaustive
    /// search across a same-quantum arrival batch (see [`GdiBatchCache`]).
    /// Bit-identical to the uncached path: outcomes, the RSVP message
    /// ledger and the telemetry trace all match, whether the search was
    /// recomputed or replayed from the memo.
    #[allow(clippy::too_many_arguments)]
    pub fn admit_batched_traced(
        &mut self,
        topo: &Topology,
        group: &AnycastGroup,
        source: NodeId,
        links: &mut LinkStateTable,
        rsvp: &mut ReservationEngine,
        demand: Bandwidth,
        tracer: &mut RequestTracer<'_>,
    ) -> AdmissionOutcome {
        let demand_bps = demand.bps();
        let (feasible, best): (Vec<bool>, Option<(usize, Path)>) =
            match self.batch.lookup(source, demand_bps) {
                Some((f, b)) => (f.to_vec(), b.clone()),
                None => {
                    let (feasible, best) = Self::compute_batch_entry(
                        &mut self.scratch,
                        topo,
                        group,
                        links,
                        source,
                        demand,
                    );
                    self.batch
                        .store(source, demand_bps, feasible.clone(), best.clone());
                    (feasible, best)
                }
            };
        if tracer.is_armed() {
            let chosen = best.as_ref().map(|(idx, _)| *idx);
            for (idx, &ok) in feasible.iter().enumerate() {
                if Some(idx) == chosen {
                    continue; // reported below as the admitted probe
                }
                let skip = if ok {
                    SkipReason::NotSelected
                } else {
                    SkipReason::NoFeasiblePath
                };
                tracer.note_skip(idx, 0.0, skip);
            }
        }
        match best {
            Some((member_index, path)) => {
                let outcome = rsvp
                    .probe_and_reserve(links, &path, demand)
                    .expect("memoised feasible path stays reservable within a batch");
                // Record this reservation's availability drops so later
                // lookups can tell whether their demand threshold was
                // crossed.
                for l in path.links() {
                    let new = links.available(*l).bps();
                    self.batch.note_drop(new + demand_bps, new);
                }
                tracer.note_probe(member_index, 0.0, ProbeResult::Admitted);
                tracer.finish_admitted(outcome.session, member_index, path.hops(), 1);
                AdmissionOutcome {
                    admitted: Some(AdmittedFlow {
                        session: outcome.session,
                        member_index,
                        route_bandwidth: outcome.route_bandwidth,
                    }),
                    tries: 1,
                }
            }
            None => {
                tracer.finish_rejected(1);
                AdmissionOutcome {
                    admitted: None,
                    tries: 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anycast_net::routing::RouteTable;
    use anycast_net::{LinkId, TopologyBuilder};

    /// Diamond with a tail: members at 3 (via two routes) and 4.
    ///
    /// ```text
    ///   0 - 1 - 3 - 4
    ///    \ 2 /
    /// ```
    fn fixture() -> (Topology, AnycastGroup, RouteTable) {
        let mut b = TopologyBuilder::new(5);
        b.links_uniform(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
            Bandwidth::from_kbps(128),
        )
        .unwrap();
        let topo = b.build();
        let group = AnycastGroup::new("A", [NodeId::new(3), NodeId::new(4)]).unwrap();
        let table = RouteTable::shortest_paths(&topo, &group);
        (topo, group, table)
    }

    #[test]
    fn sp_always_uses_nearest() {
        let (topo, _group, table) = fixture();
        let source = NodeId::new(0);
        let nearest = table.nearest_member(source).unwrap();
        assert_eq!(nearest, 0, "member 3 is 2 hops, member 4 is 3 hops");
        let sp = ShortestPathSystem::new(nearest);
        assert_eq!(sp.nearest_member(), 0);
        let mut links = LinkStateTable::from_topology(&topo);
        let mut rsvp = ReservationEngine::new();
        let routes = table.routes_from(source).unwrap();
        let out = sp.admit(routes, &mut links, &mut rsvp, Bandwidth::from_kbps(64));
        assert!(out.is_admitted());
        assert_eq!(out.admitted.unwrap().member_index, 0);
        assert_eq!(out.tries, 1);
    }

    #[test]
    fn sp_rejects_on_congested_fixed_route_even_when_alternative_exists() {
        let (topo, _group, table) = fixture();
        let source = NodeId::new(0);
        let sp = ShortestPathSystem::new(table.nearest_member(source).unwrap());
        let mut links = LinkStateTable::from_topology(&topo);
        // Saturate the fixed route 0-1-3 at link 0-1.
        let fixed = table.route(source, NodeId::new(3)).unwrap();
        links
            .reserve(fixed.links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let out = sp.admit(
            table.routes_from(source).unwrap(),
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
        );
        assert!(!out.is_admitted(), "SP never re-routes, never re-selects");
    }

    #[test]
    fn gdi_routes_around_congestion() {
        let (topo, group, table) = fixture();
        let source = NodeId::new(0);
        let mut links = LinkStateTable::from_topology(&topo);
        // Same congestion that defeats SP: link 0-1 saturated.
        let fixed = table.route(source, NodeId::new(3)).unwrap();
        links
            .reserve(fixed.links()[0], Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let out = GlobalDynamicSystem::new().admit(
            &topo,
            &group,
            source,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
        );
        assert!(out.is_admitted(), "0-2-3 is still feasible");
        let flow = out.admitted.unwrap();
        assert_eq!(flow.member_index, 0);
        // The dynamic path used link 0-2 (id 1), not the fixed 0-1 route.
        let res = rsvp.reservation(flow.session).unwrap();
        assert!(res.path().uses_link(LinkId::new(1)));
    }

    #[test]
    fn gdi_rejects_only_when_no_member_reachable() {
        let (topo, group, _table) = fixture();
        let source = NodeId::new(0);
        let mut links = LinkStateTable::from_topology(&topo);
        // Cut both exits of node 0.
        links
            .reserve(LinkId::new(0), Bandwidth::from_kbps(128))
            .unwrap();
        links
            .reserve(LinkId::new(1), Bandwidth::from_kbps(128))
            .unwrap();
        let mut rsvp = ReservationEngine::new();
        let out = GlobalDynamicSystem::new().admit(
            &topo,
            &group,
            source,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
        );
        assert!(!out.is_admitted());
        assert_eq!(out.tries, 1);
    }

    #[test]
    fn gdi_prefers_shortest_feasible_member() {
        let (topo, group, _table) = fixture();
        let source = NodeId::new(4);
        let mut links = LinkStateTable::from_topology(&topo);
        let mut rsvp = ReservationEngine::new();
        let out = GlobalDynamicSystem::new().admit(
            &topo,
            &group,
            source,
            &mut links,
            &mut rsvp,
            Bandwidth::from_kbps(64),
        );
        // Member 3 is adjacent to source 4; member 4 is the source itself —
        // its trivial path has 0 hops and must win.
        assert_eq!(out.admitted.unwrap().member_index, 1);
    }

    #[test]
    fn batched_gdi_matches_sequential_bit_for_bit() {
        // Two identical universes take the same arrival sequence; one runs
        // the plain exhaustive search, the other the batch-memoised one.
        // Repeated (source, demand) pairs inside a batch exercise cache
        // hits; shrinking capacity exercises threshold invalidation; the
        // batch boundary resets the memo.
        let (topo, group, _table) = fixture();
        let mut links_s = LinkStateTable::from_topology(&topo);
        let mut links_b = LinkStateTable::from_topology(&topo);
        let mut rsvp_s = ReservationEngine::new();
        let mut rsvp_b = ReservationEngine::new();
        let mut seq = GlobalDynamicSystem::new();
        let mut bat = GlobalDynamicSystem::new();
        // Batches of same-quantum arrivals: (source, demand_kbps) lists.
        let batches: &[&[(u32, u64)]] = &[
            &[(0, 48), (0, 48), (0, 48), (1, 48)],
            &[(0, 48), (2, 64), (0, 48), (0, 64)],
            &[(1, 32), (1, 32), (1, 32), (1, 32), (1, 32)],
        ];
        for (bi, batch) in batches.iter().enumerate() {
            bat.begin_batch();
            for (ai, &(src, kbps)) in batch.iter().enumerate() {
                let source = NodeId::new(src);
                let demand = Bandwidth::from_kbps(kbps);
                let a = seq.admit(&topo, &group, source, &mut links_s, &mut rsvp_s, demand);
                let b = bat.admit_batched_traced(
                    &topo,
                    &group,
                    source,
                    &mut links_b,
                    &mut rsvp_b,
                    demand,
                    &mut RequestTracer::new(&mut NullRecorder, 0.0, 0),
                );
                assert_eq!(a, b, "batch {bi} arrival {ai}");
                assert_eq!(rsvp_s.ledger(), rsvp_b.ledger(), "batch {bi} arrival {ai}");
            }
            // Between batches anything may happen; tear everything down so
            // the next batch starts from a fresh (identical) ledger.
            for s in rsvp_s.session_ids_sorted() {
                rsvp_s.teardown(&mut links_s, s).unwrap();
            }
            for s in rsvp_b.session_ids_sorted() {
                rsvp_b.teardown(&mut links_b, s).unwrap();
            }
        }
        assert!(links_s.iter().zip(links_b.iter()).all(|(x, y)| x == y));
    }

    /// Priming the batch memo from entries precomputed at batch start is
    /// indistinguishable from letting the miss path fill it lazily: the
    /// primed entries record `flips_seen = 0`, so every in-batch
    /// reservation revalidates them exactly as a lazily stored entry
    /// computed before any drop.
    #[test]
    fn primed_batch_entries_match_lazy_memoisation() {
        let (topo, group, _table) = fixture();
        let mut links_l = LinkStateTable::from_topology(&topo);
        let mut links_p = LinkStateTable::from_topology(&topo);
        let mut rsvp_l = ReservationEngine::new();
        let mut rsvp_p = ReservationEngine::new();
        let mut lazy = GlobalDynamicSystem::new();
        let mut primed = GlobalDynamicSystem::new();
        // Repeats exercise memo hits; the 96k demand crosses thresholds
        // mid-batch, so primed entries must also invalidate correctly.
        let batches: &[&[(u32, u64)]] = &[
            &[(0, 48), (0, 48), (1, 96), (0, 48), (0, 96)],
            &[(2, 32), (2, 32), (0, 64), (2, 32)],
        ];
        for (bi, batch) in batches.iter().enumerate() {
            lazy.begin_batch();
            primed.begin_batch();
            // Precompute every distinct (source, demand) of the batch
            // against the batch-start ledger, then install.
            let mut tasks: Vec<(NodeId, Bandwidth)> = Vec::new();
            for &(src, kbps) in batch.iter() {
                let t = (NodeId::new(src), Bandwidth::from_kbps(kbps));
                if !tasks.contains(&t) {
                    tasks.push(t);
                }
            }
            let mut scratch = RoutingScratch::new();
            for &(source, demand) in &tasks {
                let (feasible, best) = GlobalDynamicSystem::compute_batch_entry(
                    &mut scratch,
                    &topo,
                    &group,
                    &links_p,
                    source,
                    demand,
                );
                primed.prime_batch_entry(source, demand, feasible, best);
            }
            for (ai, &(src, kbps)) in batch.iter().enumerate() {
                let source = NodeId::new(src);
                let demand = Bandwidth::from_kbps(kbps);
                let a = lazy.admit_batched_traced(
                    &topo,
                    &group,
                    source,
                    &mut links_l,
                    &mut rsvp_l,
                    demand,
                    &mut RequestTracer::new(&mut NullRecorder, 0.0, 0),
                );
                let b = primed.admit_batched_traced(
                    &topo,
                    &group,
                    source,
                    &mut links_p,
                    &mut rsvp_p,
                    demand,
                    &mut RequestTracer::new(&mut NullRecorder, 0.0, 0),
                );
                assert_eq!(a, b, "batch {bi} arrival {ai}");
                assert_eq!(rsvp_l.ledger(), rsvp_p.ledger(), "batch {bi} arrival {ai}");
            }
        }
        assert!(links_l.iter().zip(links_p.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn gdi_dominates_sp_under_identical_load() {
        let (topo, group, table) = fixture();
        let source = NodeId::new(0);
        let demand = Bandwidth::from_kbps(64);
        // Drive both systems with the same saturation pattern; GDI must
        // admit at least whenever SP does.
        for saturate in 0u32..5 {
            let mut links_sp = LinkStateTable::from_topology(&topo);
            let mut links_gdi = LinkStateTable::from_topology(&topo);
            for t in [&mut links_sp, &mut links_gdi] {
                let avail = t.available(LinkId::new(saturate));
                t.reserve(LinkId::new(saturate), avail).unwrap();
            }
            let mut rsvp_sp = ReservationEngine::new();
            let mut rsvp_gdi = ReservationEngine::new();
            let sp = ShortestPathSystem::new(table.nearest_member(source).unwrap());
            let sp_out = sp.admit(
                table.routes_from(source).unwrap(),
                &mut links_sp,
                &mut rsvp_sp,
                demand,
            );
            let gdi_out = GlobalDynamicSystem::new().admit(
                &topo,
                &group,
                source,
                &mut links_gdi,
                &mut rsvp_gdi,
                demand,
            );
            assert!(
                !sp_out.is_admitted() || gdi_out.is_admitted(),
                "link {saturate}: GDI must dominate SP"
            );
        }
    }
}
