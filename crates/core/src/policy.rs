//! Destination-selection policies: ED, WD/D+H and WD/D+B (§4.3).

use crate::weights::{
    bandwidth_distance_weights, distance_weights, distance_weights_into, history_adjusted_weights,
    history_adjusted_weights_into, uniform_weights,
};
use crate::DacError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything a weight policy may look at when selecting a destination.
///
/// The three algorithms deliberately consume different subsets (that is the
/// paper's experimental axis): ED ignores all of it, WD/D+H reads
/// `distances` and `history`, WD/D+B reads `distances` and
/// `route_bandwidth_bps`.
#[derive(Debug, Clone, Copy)]
pub struct SelectionContext<'a> {
    /// Hop distance `D_i` of the fixed route to each member.
    pub distances: &'a [u32],
    /// Local admission history `h_i` for each member (eq. 5).
    pub history: &'a [u32],
    /// Route bottleneck bandwidth `B_i` in bits/s for each member (eq. 11).
    /// May be empty when the policy does not request bandwidth information.
    pub route_bandwidth_bps: &'a [f64],
}

impl SelectionContext<'_> {
    /// Validates internal consistency: all populated slices share the
    /// group size `K`.
    ///
    /// # Errors
    ///
    /// [`DacError::ContextShapeMismatch`] naming the offending field.
    pub fn validate(&self) -> Result<(), DacError> {
        let k = self.distances.len();
        if self.history.len() != k {
            return Err(DacError::ContextShapeMismatch {
                expected: k,
                actual: self.history.len(),
                field: "history",
            });
        }
        if !self.route_bandwidth_bps.is_empty() && self.route_bandwidth_bps.len() != k {
            return Err(DacError::ContextShapeMismatch {
                expected: k,
                actual: self.route_bandwidth_bps.len(),
                field: "route_bandwidth_bps",
            });
        }
        Ok(())
    }
}

/// A destination-selection weight policy (sealed).
///
/// Implementations return a probability distribution over the `K` group
/// members: non-negative weights summing to one (eq. 1). `assign` takes
/// `&mut self` because WD/D+H in [`HistoryMode::Iterative`] carries
/// persistent weight state between selections.
pub trait WeightAssigner: fmt::Debug + Send + private::Sealed {
    /// Computes the member weights for the next selection.
    ///
    /// # Panics
    ///
    /// Implementations panic on malformed contexts (mismatched lengths);
    /// validate with [`SelectionContext::validate`] at the boundary.
    fn assign(&mut self, ctx: &SelectionContext<'_>) -> Vec<f64>;

    /// The paper's name for the algorithm (`"ED"`, `"WD/D+H"`, `"WD/D+B"`).
    fn name(&self) -> &'static str;

    /// Whether [`SelectionContext::route_bandwidth_bps`] must be populated.
    /// Collecting that information costs signaling-protocol extensions
    /// (§4.3.2), so the experiment driver only gathers it on demand.
    fn needs_route_bandwidth(&self) -> bool {
        false
    }
}

mod private {
    /// Seals [`super::WeightAssigner`]: the algorithm set is the paper's.
    pub trait Sealed {}
    impl Sealed for super::Ed {}
    impl Sealed for super::WdDh {}
    impl Sealed for super::WdDb {}
}

/// Even Distribution (ED, §4.3.1): every member equally likely, `W_i = 1/K`.
///
/// Uses no status information beyond the group size — the cheapest and
/// least informed of the three algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ed;

impl WeightAssigner for Ed {
    fn assign(&mut self, ctx: &SelectionContext<'_>) -> Vec<f64> {
        uniform_weights(ctx.distances.len())
    }

    fn name(&self) -> &'static str {
        "ED"
    }
}

/// How WD/D+H composes eqs. (8)–(10) across successive selections.
///
/// The paper initialises weights from eq. (4) and says they are "updated"
/// before every selection, which admits two readings; both are provided
/// and compared in the `ablation_history_mode` bench (see `DESIGN.md` §2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryMode {
    /// Recompute effective weights from the *base* distance weights and the
    /// current history at every selection (stable; the default).
    #[default]
    FromBase,
    /// Mutate a persistent weight vector: each selection's output becomes
    /// the next selection's input (the literal sequential reading).
    Iterative,
}

/// Weighted Distribution with route Distance and local admission History
/// (WD/D+H, §4.3.2): distance-biased weights damped by recent failures.
///
/// The damping strength is `alpha ∈ [0, 1]`: 0 gives history maximal
/// impact, 1 disables it (pure distance weighting).
#[derive(Debug, Clone)]
pub struct WdDh {
    alpha: f64,
    mode: HistoryMode,
    history_cap: Option<u32>,
    persistent: Option<Vec<f64>>,
    /// Flat scratch for the eq. (4) base weights, reused across selections
    /// so the per-request hot path stays allocation-light.
    base_scratch: Vec<f64>,
    /// Flat scratch for the (possibly capped) effective history.
    hist_scratch: Vec<u32>,
}

impl WdDh {
    /// Creates the policy with the given damping parameter and update mode.
    ///
    /// # Errors
    ///
    /// [`DacError::InvalidParameter`] if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64, mode: HistoryMode) -> Result<Self, DacError> {
        if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
            return Err(DacError::InvalidParameter {
                name: "alpha",
                constraint: "must lie in [0, 1]",
                value: alpha,
            });
        }
        Ok(WdDh {
            alpha,
            mode,
            history_cap: None,
            persistent: None,
            base_scratch: Vec::new(),
            hist_scratch: Vec::new(),
        })
    }

    /// Creates the policy with a *history cap* (extension): the damping
    /// exponent is `min(h_i, cap)`, so a member's selection probability
    /// has a floor of roughly `α^cap` and a long outage cannot exile it
    /// forever (see `DESIGN.md` §5 — with the paper's unbounded history,
    /// `α^{h_i}` underflows and the member never gets the success that
    /// would reset `h_i`).
    ///
    /// # Errors
    ///
    /// [`DacError::InvalidParameter`] if `alpha` is outside `[0, 1]` or
    /// `cap` is zero.
    pub fn with_history_cap(alpha: f64, mode: HistoryMode, cap: u32) -> Result<Self, DacError> {
        if cap == 0 {
            return Err(DacError::InvalidParameter {
                name: "history_cap",
                constraint: "must be at least 1",
                value: 0.0,
            });
        }
        let mut policy = Self::new(alpha, mode)?;
        policy.history_cap = Some(cap);
        Ok(policy)
    }

    /// The damping parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The history cap, if configured.
    pub fn history_cap(&self) -> Option<u32> {
        self.history_cap
    }

    /// Copies the (possibly capped) history into `hist_scratch`.
    fn load_effective_history(&mut self, history: &[u32]) {
        self.hist_scratch.clear();
        match self.history_cap {
            None => self.hist_scratch.extend_from_slice(history),
            Some(cap) => self
                .hist_scratch
                .extend(history.iter().map(|&h| h.min(cap))),
        }
    }

    /// The configured update mode.
    pub fn mode(&self) -> HistoryMode {
        self.mode
    }
}

impl WeightAssigner for WdDh {
    fn assign(&mut self, ctx: &SelectionContext<'_>) -> Vec<f64> {
        self.load_effective_history(ctx.history);
        match self.mode {
            HistoryMode::FromBase => {
                // Flat scratch buffers: same arithmetic as the allocating
                // path (the `_into` twins are bit-identical by contract),
                // but the eq. (4) base vector is computed in place.
                distance_weights_into(ctx.distances, &mut self.base_scratch);
                let mut out = Vec::new();
                history_adjusted_weights_into(
                    &self.base_scratch,
                    &self.hist_scratch,
                    self.alpha,
                    &mut out,
                );
                out
            }
            HistoryMode::Iterative => {
                let base = self
                    .persistent
                    .take()
                    .unwrap_or_else(|| distance_weights(ctx.distances));
                let adjusted = history_adjusted_weights(&base, &self.hist_scratch, self.alpha);
                self.persistent = Some(adjusted.clone());
                adjusted
            }
        }
    }

    fn name(&self) -> &'static str {
        "WD/D+H"
    }
}

/// Weighted Distribution with route Distance and available Bandwidth
/// (WD/D+B, §4.3.2): `W_i ∝ B_i / D_i` (eq. 12).
///
/// Requires the route bottleneck bandwidths, which in deployment means
/// extending the signaling protocol (RESV feedback); the experiment driver
/// reads them from the link ledger, matching the paper's assumption that
/// the information is simply available.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WdDb;

impl WeightAssigner for WdDb {
    fn assign(&mut self, ctx: &SelectionContext<'_>) -> Vec<f64> {
        assert!(
            !ctx.route_bandwidth_bps.is_empty(),
            "WD/D+B requires route bandwidth information in the selection context"
        );
        bandwidth_distance_weights(ctx.route_bandwidth_bps, ctx.distances)
    }

    fn name(&self) -> &'static str {
        "WD/D+B"
    }

    fn needs_route_bandwidth(&self) -> bool {
        true
    }
}

/// Serialisable specification of a weight policy — what experiment configs
/// store and sweep over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Even Distribution.
    Ed,
    /// WD/D+H with damping `alpha` and update `mode`.
    WdDh {
        /// History damping parameter in `[0, 1]`.
        alpha: f64,
        /// Weight-update interpretation.
        mode: HistoryMode,
    },
    /// WD/D+B.
    WdDb,
}

impl PolicySpec {
    /// WD/D+H with the repository default `α = 0.5` and
    /// [`HistoryMode::FromBase`].
    pub fn wd_dh_default() -> Self {
        PolicySpec::WdDh {
            alpha: 0.5,
            mode: HistoryMode::FromBase,
        }
    }

    /// Instantiates the policy.
    ///
    /// # Errors
    ///
    /// [`DacError::InvalidParameter`] for an out-of-range `alpha`.
    pub fn build(&self) -> Result<Box<dyn WeightAssigner>, DacError> {
        Ok(match self {
            PolicySpec::Ed => Box::new(Ed),
            PolicySpec::WdDh { alpha, mode } => Box::new(WdDh::new(*alpha, *mode)?),
            PolicySpec::WdDb => Box::new(WdDb),
        })
    }

    /// The paper's display name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Ed => "ED",
            PolicySpec::WdDh { .. } => "WD/D+H",
            PolicySpec::WdDb => "WD/D+B",
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(distances: &'a [u32], history: &'a [u32], bw: &'a [f64]) -> SelectionContext<'a> {
        SelectionContext {
            distances,
            history,
            route_bandwidth_bps: bw,
        }
    }

    #[test]
    fn ed_is_uniform_regardless_of_context() {
        let mut ed = Ed;
        let w = ed.assign(&ctx(&[1, 9, 3], &[5, 0, 2], &[]));
        assert!(w.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
        assert_eq!(ed.name(), "ED");
        assert!(!ed.needs_route_bandwidth());
    }

    #[test]
    fn wddh_from_base_is_stateless() {
        let mut p = WdDh::new(0.5, HistoryMode::FromBase).unwrap();
        let c = ctx(&[1, 2], &[1, 0], &[]);
        let a = p.assign(&c);
        let b = p.assign(&c);
        assert_eq!(a, b, "FromBase must not accumulate state");
        assert!(a[0] < a[1], "failed member damped below clean member");
    }

    #[test]
    fn wddh_iterative_accumulates() {
        let mut p = WdDh::new(0.5, HistoryMode::Iterative).unwrap();
        let c = ctx(&[1, 1], &[1, 0], &[]);
        let a = p.assign(&c);
        let b = p.assign(&c);
        assert!(
            b[0] < a[0],
            "iterative mode compounds damping: {a:?} then {b:?}"
        );
    }

    #[test]
    fn wddh_rejects_bad_alpha() {
        assert!(matches!(
            WdDh::new(1.5, HistoryMode::FromBase),
            Err(DacError::InvalidParameter { name: "alpha", .. })
        ));
        assert!(WdDh::new(0.0, HistoryMode::FromBase).is_ok());
        assert!(WdDh::new(1.0, HistoryMode::FromBase).is_ok());
        assert!(WdDh::new(f64::NAN, HistoryMode::FromBase).is_err());
    }

    #[test]
    fn wddh_history_cap_floors_the_damping() {
        let mut uncapped = WdDh::new(0.5, HistoryMode::FromBase).unwrap();
        let mut capped = WdDh::with_history_cap(0.5, HistoryMode::FromBase, 3).unwrap();
        assert_eq!(capped.history_cap(), Some(3));
        assert_eq!(uncapped.history_cap(), None);
        let c = ctx(&[1, 1], &[40, 0], &[]);
        let wu = uncapped.assign(&c);
        let wc = capped.assign(&c);
        // Uncapped: α^40 ≈ 0 — member 0 is gone. Capped: floor of α³ = 1/8.
        assert!(wu[0] < 1e-9, "{wu:?}");
        assert!(wc[0] > 0.05, "{wc:?}");
        // At or below the cap the two agree exactly.
        let c2 = ctx(&[1, 1], &[2, 0], &[]);
        assert_eq!(uncapped.assign(&c2), capped.assign(&c2));
    }

    #[test]
    fn wddh_zero_cap_rejected() {
        assert!(matches!(
            WdDh::with_history_cap(0.5, HistoryMode::FromBase, 0),
            Err(DacError::InvalidParameter {
                name: "history_cap",
                ..
            })
        ));
    }

    #[test]
    fn wddh_accessors() {
        let p = WdDh::new(0.25, HistoryMode::Iterative).unwrap();
        assert_eq!(p.alpha(), 0.25);
        assert_eq!(p.mode(), HistoryMode::Iterative);
        assert_eq!(p.name(), "WD/D+H");
    }

    #[test]
    fn wddb_uses_bandwidth() {
        let mut p = WdDb;
        assert!(p.needs_route_bandwidth());
        let w = p.assign(&ctx(&[1, 1], &[0, 0], &[100.0, 300.0]));
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires route bandwidth")]
    fn wddb_without_bandwidth_panics() {
        let mut p = WdDb;
        let _ = p.assign(&ctx(&[1, 1], &[0, 0], &[]));
    }

    #[test]
    fn spec_builds_matching_policies() {
        for spec in [
            PolicySpec::Ed,
            PolicySpec::wd_dh_default(),
            PolicySpec::WdDb,
        ] {
            let policy = spec.build().unwrap();
            assert_eq!(policy.name(), spec.name());
            assert_eq!(spec.to_string(), spec.name());
        }
        assert!(PolicySpec::WdDh {
            alpha: -0.1,
            mode: HistoryMode::FromBase
        }
        .build()
        .is_err());
    }

    #[test]
    fn context_validation() {
        assert!(ctx(&[1, 2], &[0, 0], &[]).validate().is_ok());
        assert!(ctx(&[1, 2], &[0, 0], &[1.0, 2.0]).validate().is_ok());
        assert!(matches!(
            ctx(&[1, 2], &[0], &[]).validate(),
            Err(DacError::ContextShapeMismatch {
                field: "history",
                ..
            })
        ));
        assert!(matches!(
            ctx(&[1, 2], &[0, 0], &[1.0]).validate(),
            Err(DacError::ContextShapeMismatch {
                field: "route_bandwidth_bps",
                ..
            })
        ));
    }
}
