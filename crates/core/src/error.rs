//! Error type for the admission-control layer.

use std::error::Error;
use std::fmt;

/// Errors produced by admission-control configuration and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DacError {
    /// A weight-policy parameter was outside its valid range.
    InvalidParameter {
        /// The parameter's name (e.g. `"alpha"`).
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A selection context was built with mismatched slice lengths.
    ContextShapeMismatch {
        /// Expected number of group members.
        expected: usize,
        /// Actual length supplied.
        actual: usize,
        /// Which field was malformed.
        field: &'static str,
    },
    /// A delay requirement cannot be met on the given route at any rate.
    InfeasibleDelay {
        /// The requested end-to-end delay bound in seconds.
        requested_secs: f64,
        /// The minimum achievable delay in seconds (fixed per-hop terms).
        floor_secs: f64,
    },
}

impl fmt::Display for DacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DacError::InvalidParameter {
                name,
                constraint,
                value,
            } => write!(f, "invalid parameter {name}: {constraint} (got {value})"),
            DacError::ContextShapeMismatch {
                expected,
                actual,
                field,
            } => write!(
                f,
                "selection context field {field} has length {actual}, expected {expected}"
            ),
            DacError::InfeasibleDelay {
                requested_secs,
                floor_secs,
            } => write!(
                f,
                "delay bound {requested_secs}s infeasible: fixed per-hop latency is {floor_secs}s"
            ),
        }
    }
}

impl Error for DacError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let variants = [
            DacError::InvalidParameter {
                name: "alpha",
                constraint: "must lie in [0, 1]",
                value: 2.0,
            },
            DacError::ContextShapeMismatch {
                expected: 5,
                actual: 3,
                field: "history",
            },
            DacError::InfeasibleDelay {
                requested_secs: 0.001,
                floor_secs: 0.002,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DacError>();
    }
}
