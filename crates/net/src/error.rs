//! Error type for the network substrate.

use crate::{Bandwidth, LinkId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by topology construction, routing and the link ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id referenced a node outside the topology.
    UnknownNode(NodeId),
    /// A link id referenced a link outside the topology.
    UnknownLink(LinkId),
    /// A link would connect a node to itself.
    SelfLoop(NodeId),
    /// The same unordered node pair was added twice to a topology builder.
    DuplicateLink(NodeId, NodeId),
    /// A reservation asked for more bandwidth than is available on a link.
    InsufficientBandwidth {
        /// The link that could not satisfy the demand.
        link: LinkId,
        /// The bandwidth demanded.
        demanded: Bandwidth,
        /// The bandwidth actually available when the demand was made.
        available: Bandwidth,
    },
    /// A release would return more bandwidth to a link than was reserved.
    ReleaseUnderflow {
        /// The link being released.
        link: LinkId,
        /// The bandwidth being returned.
        released: Bandwidth,
        /// The bandwidth currently reserved on the link.
        reserved: Bandwidth,
    },
    /// An anycast group was created with no members.
    EmptyGroup,
    /// A path was constructed from an inconsistent node/link sequence.
    MalformedPath(&'static str),
    /// No route exists between the requested pair of nodes.
    NoRoute(NodeId, NodeId),
    /// A random-topology generator exhausted its retry budget without
    /// producing a connected graph.
    DisconnectedTopology {
        /// How many deterministically re-seeded draws were attempted.
        attempts: u32,
    },
    /// An edge-list document could not be parsed.
    MalformedEdgeList {
        /// 1-based line number of the offending line (0 for whole-document
        /// problems such as an empty file).
        line: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetError::SelfLoop(n) => write!(f, "link from {n} to itself is not allowed"),
            NetError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
            NetError::InsufficientBandwidth {
                link,
                demanded,
                available,
            } => write!(
                f,
                "insufficient bandwidth on {link}: demanded {demanded}, available {available}"
            ),
            NetError::ReleaseUnderflow {
                link,
                released,
                reserved,
            } => write!(
                f,
                "release underflow on {link}: releasing {released} with only {reserved} reserved"
            ),
            NetError::EmptyGroup => write!(f, "anycast group must have at least one member"),
            NetError::MalformedPath(why) => write!(f, "malformed path: {why}"),
            NetError::NoRoute(s, d) => write!(f, "no route from {s} to {d}"),
            NetError::DisconnectedTopology { attempts } => write!(
                f,
                "no connected topology found after {attempts} re-seeded draws"
            ),
            NetError::MalformedEdgeList { line, reason } => {
                write!(f, "malformed edge list at line {line}: {reason}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn display_is_informative() {
        let e = NetError::InsufficientBandwidth {
            link: LinkId::new(3),
            demanded: Bandwidth::from_kbps(64),
            available: Bandwidth::from_kbps(10),
        };
        let msg = e.to_string();
        assert!(msg.contains("l3"));
        assert!(msg.contains("64kb/s"));
        assert!(msg.contains("10kb/s"));
    }

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<NetError> = vec![
            NetError::UnknownNode(NodeId::new(1)),
            NetError::UnknownLink(LinkId::new(2)),
            NetError::SelfLoop(NodeId::new(3)),
            NetError::DuplicateLink(NodeId::new(1), NodeId::new(2)),
            NetError::ReleaseUnderflow {
                link: LinkId::new(0),
                released: Bandwidth::from_bps(10),
                reserved: Bandwidth::from_bps(5),
            },
            NetError::EmptyGroup,
            NetError::MalformedPath("gap"),
            NetError::NoRoute(NodeId::new(0), NodeId::new(9)),
            NetError::DisconnectedTopology { attempts: 64 },
            NetError::MalformedEdgeList {
                line: 3,
                reason: "missing capacity",
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
