//! Fixed routes between a source and a destination.

use crate::{LinkId, NetError, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A loop-free route through the network: an alternating, consistent
/// sequence of nodes and links.
///
/// The paper assumes one *fixed* path from each source to each member of an
/// anycast group (§3), obtained from the underlying routing protocol. The
/// *distance* `D_i` used by the weighted destination-selection algorithms is
/// the hop count of this path ([`Path::hops`]).
///
/// A path may be *trivial* (source equals destination, zero links); a flow
/// on a trivial path consumes no network bandwidth and is always admissible.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl Path {
    /// Builds a path from its node and link sequences, validating
    /// consistency against the topology.
    ///
    /// # Errors
    ///
    /// [`NetError::MalformedPath`] when the sequences are empty, have
    /// mismatched lengths, revisit a node, or contain a link that does not
    /// join its adjacent nodes.
    pub fn new(topo: &Topology, nodes: Vec<NodeId>, links: Vec<LinkId>) -> Result<Self, NetError> {
        if nodes.is_empty() {
            return Err(NetError::MalformedPath("path must contain a source node"));
        }
        if links.len() + 1 != nodes.len() {
            return Err(NetError::MalformedPath(
                "node sequence must be one longer than link sequence",
            ));
        }
        for window in nodes.windows(2) {
            if window[0] == window[1] {
                return Err(NetError::MalformedPath("consecutive duplicate node"));
            }
        }
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(NetError::MalformedPath("path revisits a node"));
        }
        for (i, link) in links.iter().enumerate() {
            let l = topo
                .link(*link)
                .map_err(|_| NetError::MalformedPath("link id out of range for this topology"))?;
            let joins = (l.a() == nodes[i] && l.b() == nodes[i + 1])
                || (l.b() == nodes[i] && l.a() == nodes[i + 1]);
            if !joins {
                return Err(NetError::MalformedPath(
                    "link does not join its adjacent nodes",
                ));
            }
        }
        Ok(Path { nodes, links })
    }

    /// Creates a trivial path at `node` (source equals destination).
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            links: Vec::new(),
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Hop count: the number of links traversed.
    ///
    /// This is the distance metric `D_i` of the paper's weight formulas.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// `true` when the source is the destination and no links are crossed.
    pub fn is_trivial(&self) -> bool {
        self.links.is_empty()
    }

    /// The node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The link sequence in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Iterates `(from, link, to)` triples in traversal order.
    pub fn segments(&self) -> impl Iterator<Item = (NodeId, LinkId, NodeId)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(move |(i, l)| (self.nodes[i], *l, self.nodes[i + 1]))
    }

    /// Returns `true` if `link` is traversed by this path.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, TopologyBuilder};

    fn square() -> Topology {
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (1, 2), (2, 3), (3, 0)], Bandwidth::from_mbps(1))
            .unwrap();
        b.build()
    }

    #[test]
    fn valid_path_roundtrips() {
        let topo = square();
        let p = Path::new(
            &topo,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            vec![LinkId::new(0), LinkId::new(1)],
        )
        .unwrap();
        assert_eq!(p.source(), NodeId::new(0));
        assert_eq!(p.destination(), NodeId::new(2));
        assert_eq!(p.hops(), 2);
        assert!(!p.is_trivial());
        assert!(p.uses_link(LinkId::new(0)));
        assert!(!p.uses_link(LinkId::new(2)));
        assert_eq!(p.to_string(), "n0-n1-n2");
        let segs: Vec<_> = p.segments().collect();
        assert_eq!(
            segs,
            vec![
                (NodeId::new(0), LinkId::new(0), NodeId::new(1)),
                (NodeId::new(1), LinkId::new(1), NodeId::new(2)),
            ]
        );
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId::new(3));
        assert!(p.is_trivial());
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), p.destination());
    }

    #[test]
    fn rejects_empty_nodes() {
        let topo = square();
        assert!(matches!(
            Path::new(&topo, vec![], vec![]),
            Err(NetError::MalformedPath(_))
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let topo = square();
        assert!(matches!(
            Path::new(&topo, vec![NodeId::new(0), NodeId::new(1)], vec![]),
            Err(NetError::MalformedPath(_))
        ));
    }

    #[test]
    fn rejects_disconnected_link() {
        let topo = square();
        // Link 2 joins n2-n3, not n0-n1.
        assert!(matches!(
            Path::new(
                &topo,
                vec![NodeId::new(0), NodeId::new(1)],
                vec![LinkId::new(2)]
            ),
            Err(NetError::MalformedPath(_))
        ));
    }

    #[test]
    fn rejects_node_revisit() {
        let topo = square();
        assert!(matches!(
            Path::new(
                &topo,
                vec![
                    NodeId::new(0),
                    NodeId::new(1),
                    NodeId::new(2),
                    NodeId::new(3),
                    NodeId::new(0)
                ],
                vec![
                    LinkId::new(0),
                    LinkId::new(1),
                    LinkId::new(2),
                    LinkId::new(3)
                ]
            ),
            Err(NetError::MalformedPath(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_link() {
        let topo = square();
        assert!(matches!(
            Path::new(
                &topo,
                vec![NodeId::new(0), NodeId::new(1)],
                vec![LinkId::new(17)]
            ),
            Err(NetError::MalformedPath(_))
        ));
    }
}
