//! Yen's algorithm: the k shortest loop-free paths between two nodes.

use crate::{LinkId, NodeId, Path, Topology};
use std::collections::{BTreeSet, VecDeque};

/// Computes up to `k` shortest loop-free paths from `src` to `dst` by hop
/// count, in nondecreasing length order (ties broken lexicographically on
/// the node sequence, so output is deterministic).
///
/// This powers the multipath extension of the DAC procedure: §3 of the
/// paper fixes *one* path per (source, member), and §6 suggests relaxing
/// that. Supplying each member with its `k` best fixed paths lets a
/// retrial try an alternate *route* before giving up on a member.
///
/// Returns fewer than `k` paths when the graph does not contain `k`
/// distinct loop-free routes. `src == dst` yields the trivial path only.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo` or `k` is zero.
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    assert!(topo.contains_node(src), "source {src} not in topology");
    assert!(k > 0, "k must be positive");
    if !topo.contains_node(dst) {
        return Vec::new();
    }
    if src == dst {
        return vec![Path::trivial(src)];
    }
    let Some(first) = restricted_shortest(topo, src, dst, &BTreeSet::new(), &BTreeSet::new())
    else {
        return Vec::new();
    };
    let mut accepted: Vec<Path> = vec![first];
    // Candidate set keyed for determinism: (hops, node sequence).
    let mut candidates: BTreeSet<(usize, Vec<NodeId>, Vec<LinkId>)> = BTreeSet::new();
    while accepted.len() < k {
        let last = accepted.last().expect("at least one accepted path");
        // Spur from every node of the previous path except the last.
        for spur_idx in 0..last.nodes().len() - 1 {
            let spur_node = last.nodes()[spur_idx];
            let root_nodes = &last.nodes()[..=spur_idx];
            let root_links = &last.links()[..spur_idx];
            // Ban links that would recreate any accepted path sharing this
            // root, and ban root nodes (except the spur) to stay loop-free.
            let mut banned_links: BTreeSet<LinkId> = BTreeSet::new();
            for p in &accepted {
                if p.nodes().len() > spur_idx && p.nodes()[..=spur_idx] == *root_nodes {
                    if let Some(&l) = p.links().get(spur_idx) {
                        banned_links.insert(l);
                    }
                }
            }
            let banned_nodes: BTreeSet<NodeId> = root_nodes[..spur_idx].iter().copied().collect();
            let Some(spur) =
                restricted_shortest(topo, spur_node, dst, &banned_nodes, &banned_links)
            else {
                continue;
            };
            // Splice root + spur.
            let mut nodes: Vec<NodeId> = root_nodes.to_vec();
            nodes.extend_from_slice(&spur.nodes()[1..]);
            let mut links: Vec<LinkId> = root_links.to_vec();
            links.extend_from_slice(spur.links());
            // Reject if splice revisits a node (possible when the spur
            // wanders back into the root's tail region).
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                continue;
            }
            candidates.insert((links.len(), nodes, links));
        }
        let Some(best) = candidates.iter().next().cloned() else {
            break;
        };
        candidates.remove(&best);
        let (_, nodes, links) = best;
        let path = Path::new(topo, nodes, links).expect("spliced candidates are consistent");
        if !accepted.contains(&path) {
            accepted.push(path);
        }
    }
    accepted
}

/// BFS shortest path avoiding the given nodes and links; deterministic
/// lowest-id tie-break.
fn restricted_shortest(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &BTreeSet<NodeId>,
    banned_links: &BTreeSet<LinkId>,
) -> Option<Path> {
    if banned_nodes.contains(&src) {
        return None;
    }
    if src == dst {
        return Some(Path::trivial(src));
    }
    let n = topo.node_count();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &(v, link) in topo.neighbors(u) {
            if seen[v.index()] || banned_nodes.contains(&v) || banned_links.contains(&link) {
                continue;
            }
            seen[v.index()] = true;
            parent[v.index()] = Some((u, link));
            if v == dst {
                let mut nodes = vec![dst];
                let mut links = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let (prev, l) = parent[cur.index()].expect("reached nodes have parents");
                    nodes.push(prev);
                    links.push(l);
                    cur = prev;
                }
                nodes.reverse();
                links.reverse();
                return Some(Path::new(topo, nodes, links).expect("BFS paths are consistent"));
            }
            queue.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topologies, Bandwidth, TopologyBuilder};

    fn diamond() -> Topology {
        // 0-1-3 / 0-2-3 plus a long way 0-4-5-3.
        let mut b = TopologyBuilder::new(6);
        b.links_uniform(
            [(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 5), (5, 3)],
            Bandwidth::from_mbps(1),
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn finds_paths_in_length_order() {
        let topo = diamond();
        let paths = k_shortest_paths(&topo, NodeId::new(0), NodeId::new(3), 5);
        assert_eq!(paths.len(), 3, "exactly three loop-free routes exist");
        assert_eq!(paths[0].hops(), 2);
        assert_eq!(paths[1].hops(), 2);
        assert_eq!(paths[2].hops(), 3);
        // Deterministic tie-break: via node 1 before via node 2.
        assert_eq!(paths[0].nodes()[1], NodeId::new(1));
        assert_eq!(paths[1].nodes()[1], NodeId::new(2));
    }

    #[test]
    fn paths_are_distinct_and_loop_free() {
        let topo = topologies::mci();
        let paths = k_shortest_paths(&topo, NodeId::new(15), NodeId::new(4), 6);
        assert!(paths.len() >= 4, "MCI is well connected: {}", paths.len());
        for (i, p) in paths.iter().enumerate() {
            let mut nodes = p.nodes().to_vec();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes().len(), "path {i} has a loop");
            for q in &paths[..i] {
                assert_ne!(p, q, "duplicate path at {i}");
            }
        }
        // Nondecreasing lengths.
        for w in paths.windows(2) {
            assert!(w[0].hops() <= w[1].hops());
        }
    }

    #[test]
    fn k_one_is_plain_shortest() {
        let topo = topologies::mci();
        for s in topo.nodes() {
            for d in topo.nodes() {
                let yen = k_shortest_paths(&topo, s, d, 1);
                let bfs = crate::routing::shortest_path(&topo, s, d).unwrap();
                assert_eq!(yen.len(), 1);
                assert_eq!(yen[0].hops(), bfs.hops(), "{s}->{d}");
            }
        }
    }

    #[test]
    fn line_has_single_path() {
        let mut b = TopologyBuilder::new(3);
        b.links_uniform([(0, 1), (1, 2)], Bandwidth::from_mbps(1))
            .unwrap();
        let topo = b.build();
        let paths = k_shortest_paths(&topo, NodeId::new(0), NodeId::new(2), 4);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn same_node_is_trivial_only() {
        let topo = diamond();
        let paths = k_shortest_paths(&topo, NodeId::new(2), NodeId::new(2), 3);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].is_trivial());
    }

    #[test]
    fn disconnected_is_empty() {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let topo = b.build();
        assert!(k_shortest_paths(&topo, NodeId::new(0), NodeId::new(2), 3).is_empty());
        assert!(k_shortest_paths(&topo, NodeId::new(0), NodeId::new(9), 3).is_empty());
    }

    #[test]
    fn ring_has_exactly_two_paths() {
        let topo = topologies::ring(7, Bandwidth::from_mbps(1));
        let paths = k_shortest_paths(&topo, NodeId::new(0), NodeId::new(3), 10);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops(), 3);
        assert_eq!(paths[1].hops(), 4);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let topo = diamond();
        let _ = k_shortest_paths(&topo, NodeId::new(0), NodeId::new(3), 0);
    }
}
