//! Weighted shortest paths (Dijkstra) with deterministic tie-breaking.

use super::scratch::OrderedCost;
use super::RoutingScratch;
use crate::{LinkId, NodeId, Path, Topology};
use std::cmp::Reverse;

/// Finds the minimum-cost path from `src` to `dst` where each link's cost is
/// given by `cost(link)`.
///
/// Hop-count routing is the special case `|_| 1.0`; examples use inverse
/// capacity or measured delay as costs. Ties are broken deterministically by
/// preferring the lexicographically smallest `(cost, node)` frontier entry.
///
/// Returns `None` when `dst` is unreachable.
///
/// Allocates fresh search state per call; callers on a hot loop should hold
/// a [`RoutingScratch`] and use [`dijkstra_path_with`] instead.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`, or if `cost` returns a negative
/// or non-finite value.
pub fn dijkstra_path<F>(topo: &Topology, src: NodeId, dst: NodeId, cost: F) -> Option<Path>
where
    F: FnMut(LinkId) -> f64,
{
    dijkstra_path_with(&mut RoutingScratch::new(), topo, src, dst, cost)
}

/// [`dijkstra_path`] reusing the caller's [`RoutingScratch`].
///
/// Identical results; no per-call allocation once the scratch has grown to
/// the topology's size.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`, or if `cost` returns a negative
/// or non-finite value.
pub fn dijkstra_path_with<F>(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    mut cost: F,
) -> Option<Path>
where
    F: FnMut(LinkId) -> f64,
{
    assert!(topo.contains_node(src), "source {src} not in topology");
    if !topo.contains_node(dst) {
        return None;
    }
    scratch.begin(topo.node_count());
    // Reverse((OrderedCost, node)) min-heap; f64 wrapped via total_cmp key.
    scratch.set_distance(src, 0.0, None);
    scratch.heap.push(Reverse((OrderedCost(0.0), src)));
    while let Some(Reverse((OrderedCost(du), u))) = scratch.heap.pop() {
        if scratch.is_done(u) {
            continue;
        }
        scratch.mark_done(u);
        if u == dst {
            break;
        }
        for &(v, link) in topo.neighbors(u) {
            if scratch.is_done(v) {
                continue;
            }
            let c = cost(link);
            assert!(
                c.is_finite() && c >= 0.0,
                "link cost must be finite and non-negative, got {c} for {link}"
            );
            let alt = du + c;
            if alt < scratch.distance(v) {
                scratch.set_distance(v, alt, Some((u, link)));
                scratch.heap.push(Reverse((OrderedCost(alt), v)));
            }
        }
    }
    if scratch.distance(dst).is_infinite() {
        return None;
    }
    let (nodes, links) = scratch.extract(src, dst);
    Some(Path::new(topo, nodes, links).expect("dijkstra produces consistent paths"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::shortest_path;
    use crate::{Bandwidth, TopologyBuilder};

    fn weighted_square() -> Topology {
        // 0-1 (l0), 1-3 (l1), 0-2 (l2), 2-3 (l3)
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (1, 3), (0, 2), (2, 3)], Bandwidth::from_mbps(1))
            .unwrap();
        b.build()
    }

    #[test]
    fn unit_costs_match_bfs() {
        let topo = weighted_square();
        for s in topo.nodes() {
            for d in topo.nodes() {
                let bfs = shortest_path(&topo, s, d).unwrap();
                let dij = dijkstra_path(&topo, s, d, |_| 1.0).unwrap();
                assert_eq!(bfs.hops(), dij.hops(), "{s}->{d}");
            }
        }
    }

    #[test]
    fn weights_can_reroute() {
        let topo = weighted_square();
        // Make the upper route (links 0 and 1) expensive.
        let p = dijkstra_path(&topo, NodeId::new(0), NodeId::new(3), |l| {
            if l.index() <= 1 {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let topo = b.build();
        assert!(dijkstra_path(&topo, NodeId::new(0), NodeId::new(2), |_| 1.0).is_none());
        assert!(dijkstra_path(&topo, NodeId::new(0), NodeId::new(9), |_| 1.0).is_none());
    }

    #[test]
    fn source_equals_destination_is_trivial() {
        let topo = weighted_square();
        let p = dijkstra_path(&topo, NodeId::new(1), NodeId::new(1), |_| 1.0).unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let topo = weighted_square();
        let _ = dijkstra_path(&topo, NodeId::new(0), NodeId::new(3), |_| -1.0);
    }
}
