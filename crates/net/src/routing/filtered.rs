//! Shortest paths over the residual network — the GDI search primitive.

use super::RoutingScratch;
use crate::{Bandwidth, LinkStateTable, NodeId, Path, Topology};

/// Finds the shortest path from `src` to `dst` using only links whose
/// available bandwidth is at least `demand`.
///
/// This is the core primitive of the paper's GDI baseline: with perfect
/// global dynamic information, an admission succeeds exactly when some path
/// of feasible links reaches some group member. Among feasible paths we
/// return a shortest one (fewest hops, deterministic lowest-id tie-break) so
/// GDI consumes the least bandwidth per admitted flow.
///
/// Returns `None` when no feasible path exists. The trivial path is returned
/// when `src == dst`.
///
/// Allocates fresh search state per call; callers on a hot loop should hold
/// a [`RoutingScratch`] and use [`filtered_shortest_path_with`] instead.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`.
pub fn filtered_shortest_path(
    topo: &Topology,
    links: &LinkStateTable,
    src: NodeId,
    dst: NodeId,
    demand: Bandwidth,
) -> Option<Path> {
    filtered_shortest_path_with(&mut RoutingScratch::new(), topo, links, src, dst, demand)
}

/// [`filtered_shortest_path`] reusing the caller's [`RoutingScratch`].
///
/// Identical results; no per-call allocation once the scratch has grown to
/// the topology's size. This is the variant `GlobalDynamicSystem::admit`
/// drives once per group member per request.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`.
pub fn filtered_shortest_path_with(
    scratch: &mut RoutingScratch,
    topo: &Topology,
    links: &LinkStateTable,
    src: NodeId,
    dst: NodeId,
    demand: Bandwidth,
) -> Option<Path> {
    assert!(topo.contains_node(src), "source {src} not in topology");
    if !topo.contains_node(dst) {
        return None;
    }
    if src == dst {
        return Some(Path::trivial(src));
    }
    scratch.begin(topo.node_count());
    scratch.mark_seen(src, None);
    scratch.queue.push_back(src);
    while let Some(u) = scratch.queue.pop_front() {
        for &(v, link) in topo.neighbors(u) {
            if scratch.is_seen(v) || links.available(link) < demand {
                continue;
            }
            scratch.mark_seen(v, Some((u, link)));
            if v == dst {
                let (nodes, plinks) = scratch.extract(src, dst);
                return Some(
                    Path::new(topo, nodes, plinks).expect("BFS produces consistent paths"),
                );
            }
            scratch.queue.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, LinkId, TopologyBuilder};

    fn diamond() -> Topology {
        // 0-1 (l0), 0-2 (l1), 1-3 (l2), 2-3 (l3)
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (0, 2), (1, 3), (2, 3)], Bandwidth::from_mbps(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn routes_around_saturated_link() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        // Kill the preferred upper route at link 0-1.
        state
            .reserve(LinkId::new(0), Bandwidth::from_mbps(100))
            .unwrap();
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(3),
            Bandwidth::from_kbps(64),
        )
        .unwrap();
        assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn no_feasible_path_is_none() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        // Node 3 cut off on both sides.
        state
            .reserve(LinkId::new(2), Bandwidth::from_mbps(100))
            .unwrap();
        state
            .reserve(LinkId::new(3), Bandwidth::from_mbps(100))
            .unwrap();
        assert!(filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(3),
            Bandwidth::from_kbps(64)
        )
        .is_none());
    }

    #[test]
    fn exact_fit_is_feasible() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(1),
            Bandwidth::from_mbps(100),
        );
        assert!(p.is_some());
    }

    #[test]
    fn over_demand_is_infeasible() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        assert!(filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(1),
            Bandwidth::from_mbps(101)
        )
        .is_none());
    }

    #[test]
    fn same_node_is_trivial() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(2),
            NodeId::new(2),
            Bandwidth::from_mbps(1_000),
        )
        .unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    fn unknown_destination_is_none() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        assert!(filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(40),
            Bandwidth::ZERO
        )
        .is_none());
    }

    #[test]
    fn prefers_shortest_feasible() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(3),
            Bandwidth::from_kbps(64),
        )
        .unwrap();
        assert_eq!(p.hops(), 2);
    }
}
