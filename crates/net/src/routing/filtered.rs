//! Shortest paths over the residual network — the GDI search primitive.

use crate::{Bandwidth, LinkStateTable, NodeId, Path, Topology};
use std::collections::VecDeque;

/// Finds the shortest path from `src` to `dst` using only links whose
/// available bandwidth is at least `demand`.
///
/// This is the core primitive of the paper's GDI baseline: with perfect
/// global dynamic information, an admission succeeds exactly when some path
/// of feasible links reaches some group member. Among feasible paths we
/// return a shortest one (fewest hops, deterministic lowest-id tie-break) so
/// GDI consumes the least bandwidth per admitted flow.
///
/// Returns `None` when no feasible path exists. The trivial path is returned
/// when `src == dst`.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`.
pub fn filtered_shortest_path(
    topo: &Topology,
    links: &LinkStateTable,
    src: NodeId,
    dst: NodeId,
    demand: Bandwidth,
) -> Option<Path> {
    assert!(topo.contains_node(src), "source {src} not in topology");
    if !topo.contains_node(dst) {
        return None;
    }
    if src == dst {
        return Some(Path::trivial(src));
    }
    let n = topo.node_count();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    seen[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &(v, link) in topo.neighbors(u) {
            if seen[v.index()] || links.available(link) < demand {
                continue;
            }
            seen[v.index()] = true;
            parent[v.index()] = Some((u, link));
            if v == dst {
                let mut nodes = vec![dst];
                let mut plinks = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let (prev, l) = parent[cur.index()].expect("reached nodes have parents");
                    nodes.push(prev);
                    plinks.push(l);
                    cur = prev;
                }
                nodes.reverse();
                plinks.reverse();
                return Some(
                    Path::new(topo, nodes, plinks).expect("BFS produces consistent paths"),
                );
            }
            queue.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, LinkId, TopologyBuilder};

    fn diamond() -> Topology {
        // 0-1 (l0), 0-2 (l1), 1-3 (l2), 2-3 (l3)
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (0, 2), (1, 3), (2, 3)], Bandwidth::from_mbps(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn routes_around_saturated_link() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        // Kill the preferred upper route at link 0-1.
        state
            .reserve(LinkId::new(0), Bandwidth::from_mbps(100))
            .unwrap();
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(3),
            Bandwidth::from_kbps(64),
        )
        .unwrap();
        assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn no_feasible_path_is_none() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        // Node 3 cut off on both sides.
        state
            .reserve(LinkId::new(2), Bandwidth::from_mbps(100))
            .unwrap();
        state
            .reserve(LinkId::new(3), Bandwidth::from_mbps(100))
            .unwrap();
        assert!(filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(3),
            Bandwidth::from_kbps(64)
        )
        .is_none());
    }

    #[test]
    fn exact_fit_is_feasible() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(1),
            Bandwidth::from_mbps(100),
        );
        assert!(p.is_some());
    }

    #[test]
    fn over_demand_is_infeasible() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        assert!(filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(1),
            Bandwidth::from_mbps(101)
        )
        .is_none());
    }

    #[test]
    fn same_node_is_trivial() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(2),
            NodeId::new(2),
            Bandwidth::from_mbps(1_000),
        )
        .unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    fn unknown_destination_is_none() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        assert!(filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(40),
            Bandwidth::ZERO
        )
        .is_none());
    }

    #[test]
    fn prefers_shortest_feasible() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let p = filtered_shortest_path(
            &topo,
            &state,
            NodeId::new(0),
            NodeId::new(3),
            Bandwidth::from_kbps(64),
        )
        .unwrap();
        assert_eq!(p.hops(), 2);
    }
}
