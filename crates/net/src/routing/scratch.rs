//! Reusable search state for the dynamic routing primitives.
//!
//! The GDI baseline runs a residual-network search **once per group
//! member per admission request** — at paper scale that is five BFS
//! sweeps per arrival, millions per sweep point. Allocating fresh
//! `parent`/`seen`/`dist` vectors and a fresh queue for every call
//! dominates the cost of the search itself on small topologies, so the
//! hot-path entry points ([`filtered_shortest_path_with`],
//! [`dijkstra_path_with`]) borrow a [`RoutingScratch`] that owns the
//! buffers across calls.
//!
//! Visited marks are epoch-stamped: beginning a new search bumps a
//! counter instead of clearing the vectors, so per-search reset is O(1)
//! in the number of nodes.
//!
//! [`filtered_shortest_path_with`]: super::filtered_shortest_path_with
//! [`dijkstra_path_with`]: super::dijkstra_path_with

use crate::{LinkId, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Total-order wrapper over finite `f64` costs (shared by the Dijkstra
/// frontier heap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrderedCost(pub(crate) f64);

impl Eq for OrderedCost {}

impl PartialOrd for OrderedCost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedCost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable buffers for the BFS/Dijkstra searches in this module.
///
/// One scratch serves any number of sequential searches over topologies
/// of any size (buffers grow to the largest node count seen and stay
/// allocated). A scratch is cheap to create empty, so owners that search
/// rarely can simply hold a `RoutingScratch::new()`.
#[derive(Debug, Clone, Default)]
pub struct RoutingScratch {
    /// Predecessor of each node in the current search tree; valid only
    /// where `seen` carries the current epoch.
    pub(crate) parent: Vec<Option<(NodeId, LinkId)>>,
    /// Epoch stamp: node discovered (distance/parent valid).
    pub(crate) seen: Vec<u64>,
    /// Epoch stamp: node finalized (Dijkstra settled set).
    pub(crate) done: Vec<u64>,
    /// Tentative Dijkstra distances; valid only under the current epoch.
    pub(crate) dist: Vec<f64>,
    /// The current search's epoch; bumped by [`begin`](Self::begin).
    epoch: u64,
    /// BFS frontier.
    pub(crate) queue: VecDeque<NodeId>,
    /// Dijkstra frontier.
    pub(crate) heap: BinaryHeap<Reverse<(OrderedCost, NodeId)>>,
}

impl RoutingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a fresh search over a topology of `n` nodes: grows the
    /// buffers if needed and invalidates all marks from prior searches in
    /// O(1) by advancing the epoch.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.seen.len() < n {
            self.parent.resize(n, None);
            self.seen.resize(n, 0);
            self.done.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
        }
        self.epoch += 1;
        self.queue.clear();
        self.heap.clear();
    }

    /// Whether `node` was discovered in the current search.
    pub(crate) fn is_seen(&self, node: NodeId) -> bool {
        self.seen[node.index()] == self.epoch
    }

    /// Marks `node` discovered with the given predecessor edge (`None`
    /// for the search root).
    pub(crate) fn mark_seen(&mut self, node: NodeId, parent: Option<(NodeId, LinkId)>) {
        self.seen[node.index()] = self.epoch;
        self.parent[node.index()] = parent;
    }

    /// Whether `node` was finalized in the current search.
    pub(crate) fn is_done(&self, node: NodeId) -> bool {
        self.done[node.index()] == self.epoch
    }

    /// Marks `node` finalized.
    pub(crate) fn mark_done(&mut self, node: NodeId) {
        self.done[node.index()] = self.epoch;
    }

    /// The tentative distance of `node`, or `+∞` if undiscovered this
    /// search.
    pub(crate) fn distance(&self, node: NodeId) -> f64 {
        if self.is_seen(node) {
            self.dist[node.index()]
        } else {
            f64::INFINITY
        }
    }

    /// Records a tentative distance alongside the discovery mark.
    pub(crate) fn set_distance(&mut self, node: NodeId, d: f64, parent: Option<(NodeId, LinkId)>) {
        self.mark_seen(node, parent);
        self.dist[node.index()] = d;
    }

    /// Walks predecessors from `dst` back to `src`, returning the
    /// forward `(nodes, links)` of the tree path. `dst` must have been
    /// reached in the current search.
    pub(crate) fn extract(&self, src: NodeId, dst: NodeId) -> (Vec<NodeId>, Vec<LinkId>) {
        let mut nodes = vec![dst];
        let mut links = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (prev, link) = self.parent[cur.index()].expect("reached nodes have parents");
            nodes.push(prev);
            links.push(link);
            cur = prev;
        }
        nodes.reverse();
        links.reverse();
        (nodes, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_invalidate_in_constant_time() {
        let mut s = RoutingScratch::new();
        s.begin(4);
        s.mark_seen(NodeId::new(2), None);
        s.mark_done(NodeId::new(2));
        s.set_distance(NodeId::new(3), 1.5, Some((NodeId::new(2), LinkId::new(0))));
        assert!(s.is_seen(NodeId::new(2)));
        assert!(s.is_done(NodeId::new(2)));
        assert_eq!(s.distance(NodeId::new(3)), 1.5);
        // A new search sees none of it without any buffer clearing.
        s.begin(4);
        assert!(!s.is_seen(NodeId::new(2)));
        assert!(!s.is_done(NodeId::new(2)));
        assert_eq!(s.distance(NodeId::new(3)), f64::INFINITY);
    }

    #[test]
    fn buffers_grow_to_largest_topology() {
        let mut s = RoutingScratch::new();
        s.begin(2);
        s.begin(10);
        s.mark_seen(NodeId::new(9), None);
        assert!(s.is_seen(NodeId::new(9)));
        // Shrinking the node count must not shrink the buffers.
        s.begin(3);
        assert!(!s.is_seen(NodeId::new(9)));
    }
}
