//! Deterministic breadth-first shortest-path trees (hop metric).

use crate::{LinkId, NodeId, Path, Topology};
use std::collections::VecDeque;

/// A breadth-first shortest-path tree rooted at one source node.
///
/// Distances are hop counts; the predecessor of each node is the
/// lowest-id node among all shortest predecessors, making extracted paths
/// deterministic — the "fixed path" assumption of §3.
#[derive(Debug, Clone)]
pub struct BfsTree {
    root: NodeId,
    dist: Vec<Option<u32>>,
    parent: Vec<Option<(NodeId, LinkId)>>,
}

impl BfsTree {
    /// The root (source) node of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Hop distance from the root to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// Extracts the tree path from the root to `dest`.
    ///
    /// Returns `None` when `dest` is unreachable or out of range. The path
    /// is trivial when `dest` is the root itself.
    pub fn path_to(&self, topo: &Topology, dest: NodeId) -> Option<Path> {
        if dest.index() >= self.dist.len() {
            return None;
        }
        self.dist[dest.index()]?;
        let mut nodes = vec![dest];
        let mut links = Vec::new();
        let mut cur = dest;
        while cur != self.root {
            let (prev, link) = self.parent[cur.index()].expect("reachable non-root has parent");
            nodes.push(prev);
            links.push(link);
            cur = prev;
        }
        nodes.reverse();
        links.reverse();
        Some(Path::new(topo, nodes, links).expect("BFS tree produces consistent paths"))
    }
}

/// Builds the deterministic BFS shortest-path tree rooted at `root`.
///
/// Neighbours are visited in ascending node-id order (the adjacency lists of
/// [`Topology`] are sorted), so the tree — and every path extracted from it —
/// is a pure function of the topology.
///
/// # Panics
///
/// Panics if `root` is not a node of `topo`.
pub fn bfs_tree(topo: &Topology, root: NodeId) -> BfsTree {
    assert!(topo.contains_node(root), "root {root} not in topology");
    let n = topo.node_count();
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    dist[root.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &(v, link) in topo.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                parent[v.index()] = Some((u, link));
                queue.push_back(v);
            }
        }
    }
    BfsTree { root, dist, parent }
}

/// Convenience: the deterministic shortest path from `src` to `dst`.
///
/// Returns `None` if `dst` is unreachable.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
    bfs_tree(topo, src).path_to(topo, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, TopologyBuilder};

    fn diamond() -> Topology {
        // 0 - 1 - 3 and 0 - 2 - 3: two equal-length routes.
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (0, 2), (1, 3), (2, 3)], Bandwidth::from_mbps(1))
            .unwrap();
        b.build()
    }

    #[test]
    fn distances_match_hand_computation() {
        let topo = diamond();
        let tree = bfs_tree(&topo, NodeId::new(0));
        assert_eq!(tree.distance(NodeId::new(0)), Some(0));
        assert_eq!(tree.distance(NodeId::new(1)), Some(1));
        assert_eq!(tree.distance(NodeId::new(2)), Some(1));
        assert_eq!(tree.distance(NodeId::new(3)), Some(2));
    }

    #[test]
    fn ties_break_toward_lowest_id() {
        let topo = diamond();
        let p = shortest_path(&topo, NodeId::new(0), NodeId::new(3)).unwrap();
        // Via node 1, not node 2.
        assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn path_to_root_is_trivial() {
        let topo = diamond();
        let p = shortest_path(&topo, NodeId::new(2), NodeId::new(2)).unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let topo = b.build();
        assert!(shortest_path(&topo, NodeId::new(0), NodeId::new(2)).is_none());
        let tree = bfs_tree(&topo, NodeId::new(0));
        assert_eq!(tree.distance(NodeId::new(2)), None);
        assert!(tree.path_to(&topo, NodeId::new(99)).is_none());
    }

    #[test]
    fn tree_root_recorded() {
        let topo = diamond();
        assert_eq!(bfs_tree(&topo, NodeId::new(3)).root(), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn bad_root_panics() {
        let topo = diamond();
        let _ = bfs_tree(&topo, NodeId::new(9));
    }

    #[test]
    fn paths_are_shortest() {
        // On a 3x3 grid-ish topology, verify path length == distance for all pairs.
        let mut b = TopologyBuilder::new(9);
        b.links_uniform(
            [
                (0, 1),
                (1, 2),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (0, 3),
                (3, 6),
                (1, 4),
                (4, 7),
                (2, 5),
                (5, 8),
            ],
            Bandwidth::from_mbps(1),
        )
        .unwrap();
        let topo = b.build();
        for s in topo.nodes() {
            let tree = bfs_tree(&topo, s);
            for d in topo.nodes() {
                let p = tree.path_to(&topo, d).unwrap();
                assert_eq!(p.hops() as u32, tree.distance(d).unwrap());
                assert_eq!(p.source(), s);
                assert_eq!(p.destination(), d);
            }
        }
    }
}
