//! Precomputed fixed routes from every source to every group member.

use crate::routing::bfs_tree;
use crate::{AnycastGroup, NodeId, Path, Topology};
use std::collections::HashMap;

/// The fixed-route table assumed by §3: for every `(source, member)` pair,
/// one deterministic shortest path.
///
/// Route distances feed the `1/D_i` terms of the weighted selection
/// algorithms; the paths themselves are what the reservation engine walks.
///
/// ```rust
/// use anycast_net::{topologies, AnycastGroup, NodeId, RouteTable};
///
/// # fn main() -> Result<(), anycast_net::NetError> {
/// let topo = topologies::mci();
/// let group = AnycastGroup::new("A", [0u32, 4, 8, 12, 16].map(NodeId::new))?;
/// let routes = RouteTable::shortest_paths(&topo, &group);
/// let dists = routes.distances(NodeId::new(1));
/// assert_eq!(dists.len(), group.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    group: AnycastGroup,
    /// `routes[source][member_index]`
    routes: HashMap<NodeId, Vec<Path>>,
}

impl RouteTable {
    /// Builds shortest-path routes from *every* node of `topo` to every
    /// member of `group`.
    ///
    /// # Panics
    ///
    /// Panics if some member is unreachable from some node — the paper
    /// assumes a connected, fault-free network; partial tables for faulty
    /// networks are built with [`RouteTable::try_shortest_paths`].
    pub fn shortest_paths(topo: &Topology, group: &AnycastGroup) -> Self {
        Self::try_shortest_paths(topo, group).expect(
            "topology must be connected so every source reaches every group member; \
             use try_shortest_paths for partial networks",
        )
    }

    /// Builds shortest-path routes, returning `None` if any `(source,
    /// member)` pair is disconnected.
    pub fn try_shortest_paths(topo: &Topology, group: &AnycastGroup) -> Option<Self> {
        let mut routes = HashMap::with_capacity(topo.node_count());
        for src in topo.nodes() {
            let tree = bfs_tree(topo, src);
            let mut paths = Vec::with_capacity(group.len());
            for &m in group.members() {
                paths.push(tree.path_to(topo, m)?);
            }
            routes.insert(src, paths);
        }
        Some(RouteTable {
            group: group.clone(),
            routes,
        })
    }

    /// The anycast group this table routes toward.
    pub fn group(&self) -> &AnycastGroup {
        &self.group
    }

    /// All routes from `source`, indexed by member index.
    ///
    /// # Panics
    ///
    /// Panics if `source` was not a node of the topology the table was
    /// built from.
    pub fn routes_from(&self, source: NodeId) -> &[Path] {
        self.routes
            .get(&source)
            .map(Vec::as_slice)
            .unwrap_or_else(|| panic!("no routes recorded for source {source}"))
    }

    /// The fixed route from `source` to a specific member node.
    ///
    /// Returns `None` when `member` is not in the group or `source` unknown.
    pub fn route(&self, source: NodeId, member: NodeId) -> Option<&Path> {
        let idx = self.group.member_index(member)?;
        self.routes.get(&source).map(|paths| &paths[idx])
    }

    /// Hop distances `D_i` from `source` to every member, in member order.
    ///
    /// # Panics
    ///
    /// Panics if `source` was not a node of the topology.
    pub fn distances(&self, source: NodeId) -> Vec<u32> {
        self.routes_from(source)
            .iter()
            .map(|p| p.hops() as u32)
            .collect()
    }

    /// Member index of the member with the shortest route from `source`
    /// (the SP baseline's choice). Ties break toward the lower member index.
    ///
    /// # Panics
    ///
    /// Panics if `source` was not a node of the topology.
    pub fn nearest_member(&self, source: NodeId) -> usize {
        let paths = self.routes_from(source);
        let mut best = 0;
        for (i, p) in paths.iter().enumerate().skip(1) {
            if p.hops() < paths[best].hops() {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, NetError, TopologyBuilder};

    fn line5_group() -> (Topology, AnycastGroup) {
        let mut b = TopologyBuilder::new(5);
        b.links_uniform([(0, 1), (1, 2), (2, 3), (3, 4)], Bandwidth::from_mbps(1))
            .unwrap();
        let g = AnycastGroup::new("A", [NodeId::new(0), NodeId::new(4)]).unwrap();
        (b.build(), g)
    }

    #[test]
    fn distances_in_member_order() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert_eq!(table.distances(NodeId::new(1)), vec![1, 3]);
        assert_eq!(table.distances(NodeId::new(4)), vec![4, 0]);
    }

    #[test]
    fn nearest_member_matches_distances() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert_eq!(table.nearest_member(NodeId::new(1)), 0);
        assert_eq!(table.nearest_member(NodeId::new(3)), 1);
        // Equidistant: tie toward lower member index.
        assert_eq!(table.nearest_member(NodeId::new(2)), 0);
    }

    #[test]
    fn route_lookup_by_member_node() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        let p = table.route(NodeId::new(2), NodeId::new(4)).unwrap();
        assert_eq!(p.destination(), NodeId::new(4));
        assert_eq!(p.hops(), 2);
        assert!(table.route(NodeId::new(2), NodeId::new(3)).is_none());
    }

    #[test]
    fn group_accessor() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert_eq!(table.group(), &g);
    }

    #[test]
    fn member_as_source_has_trivial_route() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert!(table
            .route(NodeId::new(0), NodeId::new(0))
            .unwrap()
            .is_trivial());
    }

    #[test]
    fn disconnected_topology_yields_none() {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let topo = b.build();
        let g = AnycastGroup::new("A", [NodeId::new(2)]).unwrap();
        assert!(RouteTable::try_shortest_paths(&topo, &g).is_none());
    }

    #[test]
    fn empty_group_is_impossible() {
        assert_eq!(
            AnycastGroup::new("A", std::iter::empty()).unwrap_err(),
            NetError::EmptyGroup
        );
    }
}
