//! Precomputed fixed routes from every source to every group member.

use crate::routing::bfs_tree;
use crate::routing::oracle::RouteSet;
use crate::{AnycastGroup, NodeId, Path, Topology};
use std::collections::HashMap;

/// The fixed-route table assumed by §3: for every `(source, member)` pair,
/// one deterministic shortest path.
///
/// Route distances feed the `1/D_i` terms of the weighted selection
/// algorithms; the paths themselves are what the reservation engine walks.
/// This is the eager reference implementation; the on-demand
/// [`RouteOracle`](crate::RouteOracle) produces bit-identical routes with
/// a bounded memory footprint for datacenter-scale topologies.
///
/// Every lookup takes an `Option`/`Result` form: a source outside the
/// topology the table was built from yields `None` (or a typed error via
/// [`RouteProvider`](crate::RouteProvider)) rather than a panic, so
/// chaos-partitioned topologies cannot die mid-run.
///
/// ```rust
/// use anycast_net::{topologies, AnycastGroup, NodeId, RouteTable};
///
/// # fn main() -> Result<(), anycast_net::NetError> {
/// let topo = topologies::mci();
/// let group = AnycastGroup::new("A", [0u32, 4, 8, 12, 16].map(NodeId::new))?;
/// let routes = RouteTable::shortest_paths(&topo, &group);
/// let dists = routes.distances(NodeId::new(1)).unwrap();
/// assert_eq!(dists.len(), group.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RouteTable {
    group: AnycastGroup,
    /// `routes[source][member_index]`; shared sets so handing routes to
    /// worker threads or trait consumers never copies paths.
    routes: HashMap<NodeId, RouteSet>,
}

impl RouteTable {
    /// Builds shortest-path routes from *every* node of `topo` to every
    /// member of `group`.
    ///
    /// # Panics
    ///
    /// Panics if some member is unreachable from some node — the paper
    /// assumes a connected, fault-free network; partial tables for faulty
    /// networks are built with [`RouteTable::try_shortest_paths`].
    pub fn shortest_paths(topo: &Topology, group: &AnycastGroup) -> Self {
        Self::try_shortest_paths(topo, group).expect(
            "topology must be connected so every source reaches every group member; \
             use try_shortest_paths for partial networks",
        )
    }

    /// Builds shortest-path routes, returning `None` if any `(source,
    /// member)` pair is disconnected.
    pub fn try_shortest_paths(topo: &Topology, group: &AnycastGroup) -> Option<Self> {
        let mut routes = HashMap::with_capacity(topo.node_count());
        for src in topo.nodes() {
            let tree = bfs_tree(topo, src);
            let mut paths = Vec::with_capacity(group.len());
            for &m in group.members() {
                paths.push(tree.path_to(topo, m)?);
            }
            routes.insert(src, RouteSet::from(paths));
        }
        Some(RouteTable {
            group: group.clone(),
            routes,
        })
    }

    /// The anycast group this table routes toward.
    pub fn group(&self) -> &AnycastGroup {
        &self.group
    }

    /// All routes from `source`, indexed by member index.
    ///
    /// Returns `None` when `source` was not a node of the topology the
    /// table was built from (mirroring [`RouteTable::route`]).
    pub fn routes_from(&self, source: NodeId) -> Option<&[Path]> {
        self.routes.get(&source).map(|set| &set[..])
    }

    /// The shared route set from `source`, or `None` for unknown sources.
    pub fn route_set(&self, source: NodeId) -> Option<RouteSet> {
        self.routes.get(&source).cloned()
    }

    /// The fixed route from `source` to a specific member node.
    ///
    /// Returns `None` when `member` is not in the group or `source` unknown.
    pub fn route(&self, source: NodeId, member: NodeId) -> Option<&Path> {
        let idx = self.group.member_index(member)?;
        self.routes.get(&source).map(|paths| &paths[idx])
    }

    /// Hop distances `D_i` from `source` to every member, written into
    /// `out` (cleared first) following the `weights::*_into` convention so
    /// admission hot paths reuse one buffer instead of allocating per
    /// decision.
    ///
    /// Returns `None` (leaving `out` cleared) for unknown sources.
    pub fn distances_into(&self, source: NodeId, out: &mut Vec<u32>) -> Option<()> {
        out.clear();
        let paths = self.routes_from(source)?;
        out.extend(paths.iter().map(|p| p.hops() as u32));
        Some(())
    }

    /// Allocating convenience wrapper over [`RouteTable::distances_into`].
    pub fn distances(&self, source: NodeId) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        self.distances_into(source, &mut out)?;
        Some(out)
    }

    /// Member index of the member with the shortest route from `source`
    /// (the SP baseline's choice). Ties break toward the lower member index.
    ///
    /// Returns `None` when `source` was not a node of the topology.
    pub fn nearest_member(&self, source: NodeId) -> Option<usize> {
        let paths = self.routes_from(source)?;
        let mut best = 0;
        for (i, p) in paths.iter().enumerate().skip(1) {
            if p.hops() < paths[best].hops() {
                best = i;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bandwidth, NetError, TopologyBuilder};

    fn line5_group() -> (Topology, AnycastGroup) {
        let mut b = TopologyBuilder::new(5);
        b.links_uniform([(0, 1), (1, 2), (2, 3), (3, 4)], Bandwidth::from_mbps(1))
            .unwrap();
        let g = AnycastGroup::new("A", [NodeId::new(0), NodeId::new(4)]).unwrap();
        (b.build(), g)
    }

    #[test]
    fn distances_in_member_order() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert_eq!(table.distances(NodeId::new(1)).unwrap(), vec![1, 3]);
        assert_eq!(table.distances(NodeId::new(4)).unwrap(), vec![4, 0]);
    }

    #[test]
    fn nearest_member_matches_distances() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert_eq!(table.nearest_member(NodeId::new(1)), Some(0));
        assert_eq!(table.nearest_member(NodeId::new(3)), Some(1));
        // Equidistant: tie toward lower member index.
        assert_eq!(table.nearest_member(NodeId::new(2)), Some(0));
    }

    #[test]
    fn route_lookup_by_member_node() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        let p = table.route(NodeId::new(2), NodeId::new(4)).unwrap();
        assert_eq!(p.destination(), NodeId::new(4));
        assert_eq!(p.hops(), 2);
        assert!(table.route(NodeId::new(2), NodeId::new(3)).is_none());
    }

    #[test]
    fn group_accessor() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert_eq!(table.group(), &g);
    }

    #[test]
    fn member_as_source_has_trivial_route() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        assert!(table
            .route(NodeId::new(0), NodeId::new(0))
            .unwrap()
            .is_trivial());
    }

    #[test]
    fn unknown_source_is_none_everywhere() {
        let (topo, g) = line5_group();
        let table = RouteTable::shortest_paths(&topo, &g);
        let foreign = NodeId::new(99);
        assert!(table.routes_from(foreign).is_none());
        assert!(table.route_set(foreign).is_none());
        assert!(table.route(foreign, NodeId::new(0)).is_none());
        assert!(table.distances(foreign).is_none());
        assert!(table.nearest_member(foreign).is_none());
        let mut buf = vec![7u32];
        assert!(table.distances_into(foreign, &mut buf).is_none());
        assert!(buf.is_empty(), "distances_into clears the buffer first");
    }

    #[test]
    fn disconnected_topology_yields_none() {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let topo = b.build();
        let g = AnycastGroup::new("A", [NodeId::new(2)]).unwrap();
        assert!(RouteTable::try_shortest_paths(&topo, &g).is_none());
    }

    #[test]
    fn empty_group_is_impossible() {
        assert_eq!(
            AnycastGroup::new("A", std::iter::empty()).unwrap_err(),
            NetError::EmptyGroup
        );
    }
}
