//! On-demand route computation behind a bounded, epoch-stamped cache.
//!
//! [`RouteTable`] precomputes a path from *every* node to every group
//! member, which is perfect for paper-scale meshes but allocates
//! `node_count × group_len` paths up front — at datacenter scale (a
//! `k = 34` fat tree has ~11k nodes) that is tens of thousands of paths
//! of which a typical scenario touches a few hundred. [`RouteOracle`]
//! instead computes a source's routes the first time they are asked for
//! (reusing the epoch-stamped [`RoutingScratch`] BFS, so the steady-state
//! hot path performs no allocation) and keeps them in a bounded
//! least-recently-used cache.
//!
//! Cache entries are invalidated with the same stamp discipline as the
//! sharded [`LinkStateTable`](crate::LinkStateTable): the oracle keeps a
//! per-link change stamp plus a per-shard upper bound
//! ([`LINKS_PER_SHARD`] links per stripe), advanced only when
//! [`note_link_change`](RouteOracle::note_link_change) reports a fault
//! event. A lookup whose cached entry predates the latest change first
//! screens whole shards before touching per-link stamps, so a chaos link
//! flap re-validates untouched sources in O(path links / 64) and only
//! recomputes the sources whose cached paths actually cross a flapped
//! link.
//!
//! Because routes are a pure function of the immutable [`Topology`]
//! (faults live in the link-state ledger, not the graph), a recompute
//! always reproduces exactly the paths the precomputed table holds —
//! [`RouteBook`] exploits that to make the two implementations
//! bit-identical and interchangeable behind [`RouteProvider`].

use crate::routing::scratch::RoutingScratch;
use crate::routing::table::RouteTable;
use crate::{AnycastGroup, LinkId, NetError, NodeId, Path, Topology, LINKS_PER_SHARD};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A source's routes to every group member, in member order.
///
/// Shared and cheaply clonable so cached routes survive eviction while a
/// caller still holds them, and so batched evaluation can hand the same
/// set to worker threads without copying paths.
pub type RouteSet = Arc<[Path]>;

/// Default bound on resident [`RouteOracle`] cache entries.
pub const DEFAULT_ROUTE_CACHE_CAPACITY: usize = 4096;

/// How an experiment obtains its per-`(source, member)` routes.
///
/// This is an execution knob, not a model parameter: both modes produce
/// bit-identical results (see [`RouteBook`]); they differ only in memory
/// footprint and when the BFS work happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RouteMode {
    /// Materialise the full [`RouteTable`] up front (the §3 reference
    /// implementation; O(nodes × members) paths resident).
    #[default]
    Precomputed,
    /// Compute routes on demand through a [`RouteOracle`] with at most
    /// `capacity` resident sources.
    OnDemand {
        /// Bound on resident cache entries (clamped to at least 1).
        capacity: usize,
    },
}

impl RouteMode {
    /// The on-demand mode with the default cache bound.
    pub fn on_demand() -> Self {
        RouteMode::OnDemand {
            capacity: DEFAULT_ROUTE_CACHE_CAPACITY,
        }
    }
}

/// Counters describing how a [`RouteOracle`] cache behaved over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteCacheStats {
    /// Lookups served from the cache (including re-validated entries).
    pub hits: u64,
    /// Lookups that ran a BFS because no valid entry existed.
    pub misses: u64,
    /// Hits that had to re-screen their links after a topology-change
    /// epoch bump before being declared valid.
    pub revalidations: u64,
    /// Entries discarded because a changed link lay on a cached path.
    pub invalidations: u64,
    /// Entries discarded to respect the capacity bound.
    pub evictions: u64,
    /// High-water mark of resident entries.
    pub peak_entries: usize,
}

impl RouteCacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`; `1.0` for
    /// an untouched cache so derived metrics stay finite.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set into `self` (peak is max-merged).
    pub fn absorb(&mut self, other: &RouteCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.revalidations += other.revalidations;
        self.invalidations += other.invalidations;
        self.evictions += other.evictions;
        self.peak_entries = self.peak_entries.max(other.peak_entries);
    }
}

/// One interface over both route implementations.
///
/// Consumers (admission controllers, baselines, the experiment loop)
/// depend on this trait rather than on [`RouteTable`] directly, so the
/// precomputed table and the on-demand oracle are interchangeable.
/// Lookups take `&mut self` because the oracle mutates its cache; the
/// table implementation ignores the mutability.
pub trait RouteProvider {
    /// The anycast group being routed toward.
    fn group(&self) -> &AnycastGroup;

    /// Routes from `source` to every group member, in member order.
    ///
    /// Errors with [`NetError::UnknownNode`] when `source` is not a node
    /// of `topo` and [`NetError::NoRoute`] when some member is
    /// unreachable — it never panics, so chaos-partitioned topologies
    /// surface a typed error instead of dying mid-run.
    fn routes(&mut self, topo: &Topology, source: NodeId) -> Result<RouteSet, NetError>;

    /// Reports that `link`'s state changed (failed or restored) so cached
    /// routes crossing it can be revalidated. No-op for implementations
    /// without a cache.
    fn note_link_change(&mut self, _link: LinkId) {}

    /// Cache behaviour counters, when the implementation has a cache.
    fn cache_stats(&self) -> Option<RouteCacheStats> {
        None
    }

    /// Hop distances `D_i` from `source` in member order, written into
    /// `out` (cleared first) following the `weights::*_into` convention.
    fn distances_into(
        &mut self,
        topo: &Topology,
        source: NodeId,
        out: &mut Vec<u32>,
    ) -> Result<(), NetError> {
        let routes = self.routes(topo, source)?;
        out.clear();
        out.extend(routes.iter().map(|p| p.hops() as u32));
        Ok(())
    }

    /// Allocating convenience form of
    /// [`distances_into`](RouteProvider::distances_into).
    fn distances(&mut self, topo: &Topology, source: NodeId) -> Result<Vec<u32>, NetError> {
        let mut out = Vec::new();
        self.distances_into(topo, source, &mut out)?;
        Ok(out)
    }

    /// Member index with the shortest route from `source` (the SP
    /// baseline's choice); ties break toward the lower member index.
    fn nearest_member(&mut self, topo: &Topology, source: NodeId) -> Result<usize, NetError> {
        let routes = self.routes(topo, source)?;
        let mut best = 0;
        for (i, p) in routes.iter().enumerate().skip(1) {
            if p.hops() < routes[best].hops() {
                best = i;
            }
        }
        Ok(best)
    }
}

/// Computes the member-order route set from `source` with a reusable
/// scratch, producing exactly the paths `bfs_tree` + `path_to` would:
/// neighbours are visited in ascending node-id order, so predecessors —
/// and therefore extracted paths — are identical. The sweep stops as
/// soon as every member has been discovered (discovered predecessors
/// never change afterwards, so early exit cannot alter a path).
fn compute_route_set(
    topo: &Topology,
    group: &AnycastGroup,
    source: NodeId,
    scratch: &mut RoutingScratch,
) -> Result<RouteSet, NetError> {
    if !topo.contains_node(source) {
        return Err(NetError::UnknownNode(source));
    }
    scratch.begin(topo.node_count());
    scratch.mark_seen(source, None);
    scratch.queue.push_back(source);
    let mut remaining = group.len();
    if group.member_index(source).is_some() {
        remaining -= 1;
    }
    while remaining > 0 {
        let Some(u) = scratch.queue.pop_front() else {
            break;
        };
        for &(v, link) in topo.neighbors(u) {
            if !scratch.is_seen(v) {
                scratch.mark_seen(v, Some((u, link)));
                if group.member_index(v).is_some() {
                    remaining -= 1;
                }
                scratch.queue.push_back(v);
            }
        }
    }
    let mut paths = Vec::with_capacity(group.len());
    for &m in group.members() {
        if !topo.contains_node(m) || !scratch.is_seen(m) {
            return Err(NetError::NoRoute(source, m));
        }
        let (nodes, links) = scratch.extract(source, m);
        paths.push(Path::new(topo, nodes, links)?);
    }
    Ok(paths.into())
}

/// Whether any link of any cached path changed after `since`, screening
/// whole [`LINKS_PER_SHARD`]-link stripes before per-link stamps.
fn paths_changed_since(
    link_stamps: &[u64],
    shard_stamps: &[u64],
    routes: &[Path],
    since: u64,
) -> bool {
    routes.iter().any(|p| {
        p.links().iter().any(|&l| {
            let idx = l.index();
            shard_stamps
                .get(idx / LINKS_PER_SHARD)
                .is_some_and(|&s| s > since)
                && link_stamps.get(idx).is_some_and(|&s| s > since)
        })
    })
}

#[derive(Debug, Clone)]
struct CacheEntry {
    routes: RouteSet,
    /// Oracle epoch up to which this entry is known valid.
    stamp: u64,
    /// Unique recency counter (ties impossible, so eviction is
    /// deterministic regardless of hash-map iteration order).
    last_used: u64,
}

/// On-demand routes behind a bounded, epoch-stamped LRU cache.
///
/// See the [module docs](self) for the invalidation discipline. All
/// lookups go through [`RouteProvider::routes`]; construction is cheap
/// (no BFS until the first lookup).
///
/// ```rust
/// use anycast_net::{topologies, AnycastGroup, NodeId, RouteOracle, RouteProvider, RouteTable};
///
/// # fn main() -> Result<(), anycast_net::NetError> {
/// let topo = topologies::mci();
/// let group = AnycastGroup::new("A", [0u32, 4, 8, 12, 16].map(NodeId::new))?;
/// let mut oracle = RouteOracle::new(group.clone(), 64);
/// let table = RouteTable::shortest_paths(&topo, &group);
/// let on_demand = oracle.routes(&topo, NodeId::new(1))?;
/// assert_eq!(&on_demand[..], table.routes_from(NodeId::new(1)).unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RouteOracle {
    group: AnycastGroup,
    capacity: usize,
    /// Bumped once per reported link change; entries stamped `== epoch`
    /// are valid without any screening.
    epoch: u64,
    /// Per-link epoch of the last reported change (0 = never changed).
    link_stamps: Vec<u64>,
    /// Per-stripe upper bound over `link_stamps`, mirroring the
    /// [`LinkStateTable`](crate::LinkStateTable) shard layout.
    shard_stamps: Vec<u64>,
    entries: HashMap<NodeId, CacheEntry>,
    clock: u64,
    scratch: RoutingScratch,
    stats: RouteCacheStats,
}

impl RouteOracle {
    /// Creates an oracle for `group` holding at most `capacity` sources
    /// (clamped to at least 1). No routes are computed until first use.
    pub fn new(group: AnycastGroup, capacity: usize) -> Self {
        RouteOracle {
            group,
            capacity: capacity.max(1),
            epoch: 0,
            link_stamps: Vec::new(),
            shard_stamps: Vec::new(),
            entries: HashMap::new(),
            clock: 0,
            scratch: RoutingScratch::new(),
            stats: RouteCacheStats::default(),
        }
    }

    /// Creates an oracle with [`DEFAULT_ROUTE_CACHE_CAPACITY`].
    pub fn with_default_capacity(group: AnycastGroup) -> Self {
        Self::new(group, DEFAULT_ROUTE_CACHE_CAPACITY)
    }

    /// The capacity bound this oracle was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident cache entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache behaviour counters so far.
    pub fn stats(&self) -> RouteCacheStats {
        self.stats
    }
}

impl RouteProvider for RouteOracle {
    fn group(&self) -> &AnycastGroup {
        &self.group
    }

    fn routes(&mut self, topo: &Topology, source: NodeId) -> Result<RouteSet, NetError> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.entries.get_mut(&source) {
            let fresh = entry.stamp == self.epoch || {
                let changed = paths_changed_since(
                    &self.link_stamps,
                    &self.shard_stamps,
                    &entry.routes,
                    entry.stamp,
                );
                if !changed {
                    entry.stamp = self.epoch;
                    self.stats.revalidations += 1;
                }
                !changed
            };
            if fresh {
                entry.last_used = clock;
                self.stats.hits += 1;
                return Ok(entry.routes.clone());
            }
            self.stats.invalidations += 1;
            self.entries.remove(&source);
        }
        self.stats.misses += 1;
        let routes = compute_route_set(topo, &self.group, source, &mut self.scratch)?;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&s, _)| s)
                .expect("capacity >= 1 implies a resident entry to evict");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        self.entries.insert(
            source,
            CacheEntry {
                routes: routes.clone(),
                stamp: self.epoch,
                last_used: clock,
            },
        );
        self.stats.peak_entries = self.stats.peak_entries.max(self.entries.len());
        Ok(routes)
    }

    fn note_link_change(&mut self, link: LinkId) {
        self.epoch += 1;
        let idx = link.index();
        if idx >= self.link_stamps.len() {
            self.link_stamps.resize(idx + 1, 0);
        }
        self.link_stamps[idx] = self.epoch;
        let shard = idx / LINKS_PER_SHARD;
        if shard >= self.shard_stamps.len() {
            self.shard_stamps.resize(shard + 1, 0);
        }
        self.shard_stamps[shard] = self.epoch;
    }

    fn cache_stats(&self) -> Option<RouteCacheStats> {
        Some(self.stats)
    }
}

impl RouteProvider for RouteTable {
    fn group(&self) -> &AnycastGroup {
        RouteTable::group(self)
    }

    fn routes(&mut self, _topo: &Topology, source: NodeId) -> Result<RouteSet, NetError> {
        self.route_set(source).ok_or(NetError::UnknownNode(source))
    }
}

/// Either route implementation behind one concrete type, so the
/// experiment loop can hold a `Vec<RouteBook>` without trait objects.
// A run holds one book per anycast group (a handful), so the size
// difference between the variants is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RouteBook {
    /// The precomputed §3 reference table.
    Table(RouteTable),
    /// The bounded on-demand cache.
    Oracle(RouteOracle),
}

impl RouteBook {
    /// Builds the implementation selected by `mode`.
    ///
    /// # Panics
    ///
    /// In `Precomputed` mode this materialises the full table and, like
    /// [`RouteTable::shortest_paths`], panics when the topology is
    /// disconnected. `OnDemand` construction never runs a BFS.
    pub fn for_mode(mode: RouteMode, topo: &Topology, group: &AnycastGroup) -> Self {
        match mode {
            RouteMode::Precomputed => RouteBook::Table(RouteTable::shortest_paths(topo, group)),
            RouteMode::OnDemand { capacity } => {
                RouteBook::Oracle(RouteOracle::new(group.clone(), capacity))
            }
        }
    }
}

impl RouteProvider for RouteBook {
    fn group(&self) -> &AnycastGroup {
        match self {
            RouteBook::Table(t) => RouteProvider::group(t),
            RouteBook::Oracle(o) => RouteProvider::group(o),
        }
    }

    fn routes(&mut self, topo: &Topology, source: NodeId) -> Result<RouteSet, NetError> {
        match self {
            RouteBook::Table(t) => t.routes(topo, source),
            RouteBook::Oracle(o) => o.routes(topo, source),
        }
    }

    fn note_link_change(&mut self, link: LinkId) {
        match self {
            RouteBook::Table(t) => t.note_link_change(link),
            RouteBook::Oracle(o) => o.note_link_change(link),
        }
    }

    fn cache_stats(&self) -> Option<RouteCacheStats> {
        match self {
            RouteBook::Table(t) => t.cache_stats(),
            RouteBook::Oracle(o) => o.cache_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topologies, Bandwidth, TopologyBuilder};

    fn mci_group() -> (Topology, AnycastGroup) {
        let topo = topologies::mci();
        let group = AnycastGroup::new("A", [0u32, 4, 8, 12, 16].map(NodeId::new)).unwrap();
        (topo, group)
    }

    #[test]
    fn oracle_matches_table_on_every_source() {
        let (topo, group) = mci_group();
        let table = RouteTable::shortest_paths(&topo, &group);
        let mut oracle = RouteOracle::new(group.clone(), 8);
        for s in topo.nodes() {
            let on_demand = oracle.routes(&topo, s).unwrap();
            assert_eq!(&on_demand[..], table.routes_from(s).unwrap(), "source {s}");
        }
    }

    #[test]
    fn repeated_lookup_hits_the_cache() {
        let (topo, group) = mci_group();
        let mut oracle = RouteOracle::new(group, 8);
        let s = NodeId::new(3);
        let a = oracle.routes(&topo, s).unwrap();
        let b = oracle.routes(&topo, s).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must reuse the cached set"
        );
        let stats = oracle.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn capacity_bound_is_respected_and_eviction_is_lru() {
        let (topo, group) = mci_group();
        let mut oracle = RouteOracle::new(group, 2);
        oracle.routes(&topo, NodeId::new(1)).unwrap();
        oracle.routes(&topo, NodeId::new(2)).unwrap();
        // Touch 1 so 2 is the LRU victim.
        oracle.routes(&topo, NodeId::new(1)).unwrap();
        oracle.routes(&topo, NodeId::new(3)).unwrap();
        assert_eq!(oracle.len(), 2);
        assert_eq!(oracle.stats().evictions, 1);
        // 1 survives (hit), 2 was evicted (miss).
        let before = oracle.stats().misses;
        oracle.routes(&topo, NodeId::new(1)).unwrap();
        assert_eq!(oracle.stats().misses, before);
        oracle.routes(&topo, NodeId::new(2)).unwrap();
        assert_eq!(oracle.stats().misses, before + 1);
    }

    #[test]
    fn link_change_invalidates_only_crossing_sources() {
        let (topo, group) = mci_group();
        let mut oracle = RouteOracle::new(group.clone(), 64);
        let table = RouteTable::shortest_paths(&topo, &group);
        let crossing = NodeId::new(1);
        let link = table.routes_from(crossing).unwrap()[0].links()[0];
        // A source whose paths avoid `link` entirely.
        let avoiding = topo
            .nodes()
            .find(|&s| {
                table
                    .routes_from(s)
                    .unwrap()
                    .iter()
                    .all(|p| !p.uses_link(link))
            })
            .expect("some source avoids the link");
        oracle.routes(&topo, crossing).unwrap();
        oracle.routes(&topo, avoiding).unwrap();
        oracle.note_link_change(link);
        oracle.routes(&topo, avoiding).unwrap();
        let stats = oracle.stats();
        assert_eq!(stats.invalidations, 0, "avoiding source revalidates");
        assert_eq!(stats.revalidations, 1);
        oracle.routes(&topo, crossing).unwrap();
        assert_eq!(
            oracle.stats().invalidations,
            1,
            "crossing source recomputes"
        );
        // Recomputed routes are identical (the topology never changed).
        let again = oracle.routes(&topo, crossing).unwrap();
        assert_eq!(&again[..], table.routes_from(crossing).unwrap());
    }

    #[test]
    fn unknown_source_and_unreachable_member_are_typed_errors() {
        let (topo, group) = mci_group();
        let mut oracle = RouteOracle::new(group, 8);
        assert_eq!(
            oracle.routes(&topo, NodeId::new(999)).unwrap_err(),
            NetError::UnknownNode(NodeId::new(999))
        );
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(1))
            .unwrap();
        let island = b.build();
        let g = AnycastGroup::new("B", [NodeId::new(2)]).unwrap();
        let mut o = RouteOracle::new(g, 8);
        assert_eq!(
            o.routes(&island, NodeId::new(0)).unwrap_err(),
            NetError::NoRoute(NodeId::new(0), NodeId::new(2))
        );
    }

    #[test]
    fn results_are_independent_of_capacity() {
        let (topo, group) = mci_group();
        let table = RouteTable::shortest_paths(&topo, &group);
        // A recurring access pattern with re-visits, across tiny caches.
        let pattern: Vec<NodeId> = [1u32, 5, 9, 1, 13, 5, 1, 17, 9, 2]
            .iter()
            .map(|&i| NodeId::new(i))
            .collect();
        for capacity in [1usize, 2, 5, 64] {
            let mut oracle = RouteOracle::new(group.clone(), capacity);
            for &s in &pattern {
                let routes = oracle.routes(&topo, s).unwrap();
                assert_eq!(
                    &routes[..],
                    table.routes_from(s).unwrap(),
                    "capacity {capacity}, source {s}"
                );
            }
            assert!(oracle.len() <= capacity);
            assert!(oracle.stats().peak_entries <= capacity);
        }
    }

    #[test]
    fn provider_distances_and_nearest_match_table() {
        let (topo, group) = mci_group();
        let table = RouteTable::shortest_paths(&topo, &group);
        let mut oracle = RouteOracle::new(group, 8);
        let mut buf = Vec::new();
        for s in topo.nodes() {
            oracle.distances_into(&topo, s, &mut buf).unwrap();
            assert_eq!(buf, table.distances(s).unwrap());
            assert_eq!(
                oracle.nearest_member(&topo, s).unwrap(),
                table.nearest_member(s).unwrap()
            );
        }
    }

    #[test]
    fn route_book_dispatches_both_ways() {
        let (topo, group) = mci_group();
        let mut table = RouteBook::for_mode(RouteMode::Precomputed, &topo, &group);
        let mut oracle = RouteBook::for_mode(RouteMode::OnDemand { capacity: 8 }, &topo, &group);
        assert_eq!(RouteProvider::group(&table), &group);
        assert_eq!(RouteProvider::group(&oracle), &group);
        assert!(table.cache_stats().is_none());
        assert!(oracle.cache_stats().is_some());
        let s = NodeId::new(7);
        assert_eq!(
            &table.routes(&topo, s).unwrap()[..],
            &oracle.routes(&topo, s).unwrap()[..]
        );
        // note_link_change is a no-op on the table, an epoch bump on the oracle.
        table.note_link_change(LinkId::new(0));
        oracle.note_link_change(LinkId::new(0));
    }

    #[test]
    fn stats_hit_rate_and_absorb() {
        let mut a = RouteCacheStats::default();
        assert_eq!(a.hit_rate(), 1.0);
        a.hits = 3;
        a.misses = 1;
        a.peak_entries = 5;
        let b = RouteCacheStats {
            hits: 1,
            misses: 1,
            revalidations: 1,
            invalidations: 1,
            evictions: 1,
            peak_entries: 9,
        };
        a.absorb(&b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 2);
        assert_eq!(a.peak_entries, 9);
        assert!((a.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn route_mode_default_is_the_reference_table() {
        assert_eq!(RouteMode::default(), RouteMode::Precomputed);
        assert_eq!(
            RouteMode::on_demand(),
            RouteMode::OnDemand {
                capacity: DEFAULT_ROUTE_CACHE_CAPACITY
            }
        );
    }
}
