//! Maximum-bottleneck ("widest") paths over the residual network.

use crate::{Bandwidth, LinkStateTable, NodeId, Path, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Finds a path from `src` to `dst` maximising the minimum available
/// bandwidth along the path (the *route bandwidth* `B_i` of eq. 11).
///
/// Among equally wide paths the search prefers fewer hops, then lower node
/// ids, so results are deterministic. This is not used by the paper's own
/// systems (which keep fixed routes) but serves the ablation benches and
/// examples exploring how much headroom dynamic routing would add beyond
/// GDI's feasibility search.
///
/// Returns `None` when `dst` is unreachable; the trivial path (with
/// unbounded width) when `src == dst`.
///
/// # Panics
///
/// Panics if `src` is not a node of `topo`.
pub fn widest_path(
    topo: &Topology,
    links: &LinkStateTable,
    src: NodeId,
    dst: NodeId,
) -> Option<(Path, Bandwidth)> {
    assert!(topo.contains_node(src), "source {src} not in topology");
    if !topo.contains_node(dst) {
        return None;
    }
    if src == dst {
        return Some((Path::trivial(src), Bandwidth::from_bps(u64::MAX)));
    }
    let n = topo.node_count();
    // (width, neg hops) lexicographic maximisation via BinaryHeap of
    // (width, Reverse(hops), Reverse(node), node).
    let mut best_width = vec![Bandwidth::ZERO; n];
    let mut best_hops = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    best_width[src.index()] = Bandwidth::from_bps(u64::MAX);
    best_hops[src.index()] = 0;
    heap.push((Bandwidth::from_bps(u64::MAX), Reverse(0u32), Reverse(src)));
    while let Some((width, Reverse(hops), Reverse(u))) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u == dst {
            break;
        }
        for &(v, link) in topo.neighbors(u) {
            if done[v.index()] {
                continue;
            }
            let w = width.min(links.available(link));
            let h = hops + 1;
            if w > best_width[v.index()] || (w == best_width[v.index()] && h < best_hops[v.index()])
            {
                best_width[v.index()] = w;
                best_hops[v.index()] = h;
                parent[v.index()] = Some((u, link));
                heap.push((w, Reverse(h), Reverse(v)));
            }
        }
    }
    if best_width[dst.index()].is_zero() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut plinks = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (prev, l) = parent[cur.index()]?;
        nodes.push(prev);
        plinks.push(l);
        cur = prev;
    }
    nodes.reverse();
    plinks.reverse();
    let path = Path::new(topo, nodes, plinks).expect("widest search produces consistent paths");
    Some((path, best_width[dst.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkId, TopologyBuilder};

    fn diamond() -> Topology {
        // 0-1 (l0), 0-2 (l1), 1-3 (l2), 2-3 (l3)
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(0, 1), (0, 2), (1, 3), (2, 3)], Bandwidth::from_mbps(100))
            .unwrap();
        b.build()
    }

    #[test]
    fn picks_wider_route() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        // Narrow the upper route to 10 Mb/s.
        state
            .reserve(LinkId::new(0), Bandwidth::from_mbps(90))
            .unwrap();
        let (p, width) = widest_path(&topo, &state, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(width, Bandwidth::from_mbps(100));
    }

    #[test]
    fn width_is_bottleneck() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        state
            .reserve(LinkId::new(1), Bandwidth::from_mbps(40))
            .unwrap();
        state
            .reserve(LinkId::new(0), Bandwidth::from_mbps(70))
            .unwrap();
        let (_, width) = widest_path(&topo, &state, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(width, Bandwidth::from_mbps(60));
    }

    #[test]
    fn equal_width_prefers_fewer_hops() {
        // 0-1-2 (two hops) vs 0-2 (one hop), equal capacities.
        let mut b = TopologyBuilder::new(3);
        b.links_uniform([(0, 1), (1, 2), (0, 2)], Bandwidth::from_mbps(50))
            .unwrap();
        let topo = b.build();
        let state = LinkStateTable::from_topology(&topo);
        let (p, width) = widest_path(&topo, &state, NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(p.hops(), 1);
        assert_eq!(width, Bandwidth::from_mbps(50));
    }

    #[test]
    fn fully_saturated_is_none() {
        let topo = diamond();
        let mut state = LinkStateTable::from_topology(&topo);
        for l in 0..4 {
            state
                .reserve(LinkId::new(l), Bandwidth::from_mbps(100))
                .unwrap();
        }
        assert!(widest_path(&topo, &state, NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn trivial_path_unbounded() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        let (p, w) = widest_path(&topo, &state, NodeId::new(1), NodeId::new(1)).unwrap();
        assert!(p.is_trivial());
        assert_eq!(w, Bandwidth::from_bps(u64::MAX));
    }

    #[test]
    fn unknown_destination_is_none() {
        let topo = diamond();
        let state = LinkStateTable::from_topology(&topo);
        assert!(widest_path(&topo, &state, NodeId::new(0), NodeId::new(9)).is_none());
    }
}
