//! Routing: fixed shortest paths plus the dynamic searches used by GDI.
//!
//! The paper assumes "to one source, there is a fixed path to each member in
//! an anycast group" obtained via existing routing protocols (§3). We
//! reproduce that with deterministic breadth-first shortest-path trees
//! (minimum hop count, ties broken toward the lowest-id predecessor), cached
//! in a [`RouteTable`].
//!
//! The GDI baseline (§5.1) additionally needs *dynamic* searches over the
//! residual network: [`filtered_shortest_path`] finds the shortest path
//! using only links with enough available bandwidth, and [`widest_path`]
//! finds the maximum-bottleneck path (an extension used by examples and
//! ablations).
//!
//! The dynamic searches run once per group member per admission request, so
//! hot callers hold a [`RoutingScratch`] and use the `_with` variants
//! ([`filtered_shortest_path_with`], [`dijkstra_path_with`]) to reuse search
//! buffers across calls instead of reallocating them.

mod bfs;
mod dijkstra;
mod filtered;
mod oracle;
mod scratch;
mod table;
mod widest;
mod yen;

pub use bfs::{bfs_tree, shortest_path, BfsTree};
pub use dijkstra::{dijkstra_path, dijkstra_path_with};
pub use filtered::{filtered_shortest_path, filtered_shortest_path_with};
pub use oracle::{
    RouteBook, RouteCacheStats, RouteMode, RouteOracle, RouteProvider, RouteSet,
    DEFAULT_ROUTE_CACHE_CAPACITY,
};
pub use scratch::RoutingScratch;
pub use table::RouteTable;
pub use widest::widest_path;
pub use yen::k_shortest_paths;
