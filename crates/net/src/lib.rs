//! Network substrate for the anycast admission-control study.
//!
//! This crate models the network of §3 of *Distributed Admission Control for
//! Anycast Flows with QoS Requirements* (Xuan & Jia, ICDCS 2001):
//!
//! * a [`Topology`] of nodes connected by undirected links, each with a
//!   bandwidth [`capacity`](Link::capacity);
//! * a [`LinkStateTable`] ledger tracking the *available bandwidth* `AB_l`
//!   of every link as flows reserve and release capacity;
//! * [`AnycastGroup`]s — the sets of designated recipients that share an
//!   anycast address;
//! * fixed per-(source, member) routes computed by deterministic
//!   shortest-path [`routing`], plus the dynamic searches (filtered BFS,
//!   widest path) needed by the GDI baseline.
//!
//! # Example
//!
//! ```rust
//! use anycast_net::{topologies, AnycastGroup, LinkStateTable, NodeId, RouteTable, Bandwidth};
//!
//! # fn main() -> Result<(), anycast_net::NetError> {
//! let topo = topologies::mci();
//! let group = AnycastGroup::new("mirrors", [0u32, 4, 8, 12, 16].map(NodeId::new))?;
//! let routes = RouteTable::shortest_paths(&topo, &group);
//! let mut links = LinkStateTable::with_uniform_fraction(&topo, Bandwidth::from_mbps(100), 0.2);
//!
//! let path = routes.route(NodeId::new(1), NodeId::new(8)).expect("route exists");
//! links.reserve_path(path, Bandwidth::from_bps(64_000))?;
//! assert!(links.min_available_on(path) < Bandwidth::from_mbps(20));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod error;
mod group;
mod ids;
pub mod io;
mod link_state;
pub mod metrics;
mod path;
pub mod routing;
pub mod topologies;
mod topology;

pub use bandwidth::Bandwidth;
pub use error::NetError;
pub use group::AnycastGroup;
pub use ids::{LinkId, NodeId};
pub use link_state::{LinkSnapshot, LinkStateTable, LinkSummary, ShardedSnapshot, LINKS_PER_SHARD};
pub use path::Path;
pub use routing::{
    RouteBook, RouteCacheStats, RouteMode, RouteOracle, RouteProvider, RouteSet, RouteTable,
    DEFAULT_ROUTE_CACHE_CAPACITY,
};
pub use topology::{Link, Topology, TopologyBuilder};
