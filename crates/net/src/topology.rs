//! Network topology: nodes connected by undirected capacity-bearing links.

use crate::{Bandwidth, LinkId, NetError, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected link between two nodes with a bandwidth capacity.
///
/// Links are the unit of admission in the paper: a flow is admitted only if
/// every link on its route has enough *available bandwidth* (§3). The
/// capacity stored here is the raw physical capacity; the share reserved for
/// anycast traffic is carved out by
/// [`LinkStateTable::with_uniform_fraction`](crate::LinkStateTable::with_uniform_fraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    a: NodeId,
    b: NodeId,
    capacity: Bandwidth,
}

impl Link {
    /// The link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The lower-numbered endpoint.
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// The higher-numbered endpoint.
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Physical capacity of the link.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Given one endpoint, returns the other.
    ///
    /// Returns `None` if `from` is not an endpoint of this link.
    pub fn other_end(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns `true` if `n` is one of the endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }
}

/// Incrementally builds a [`Topology`].
///
/// ```rust
/// use anycast_net::{TopologyBuilder, Bandwidth, NodeId};
///
/// # fn main() -> Result<(), anycast_net::NetError> {
/// let mut b = TopologyBuilder::new(3);
/// b.link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(100))?;
/// b.link(NodeId::new(1), NodeId::new(2), Bandwidth::from_mbps(100))?;
/// let topo = b.build();
/// assert_eq!(topo.node_count(), 3);
/// assert_eq!(topo.link_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    node_count: usize,
    links: Vec<Link>,
    seen: BTreeSet<(NodeId, NodeId)>,
}

impl TopologyBuilder {
    /// Starts a topology with `node_count` nodes (ids `0..node_count`) and
    /// no links.
    pub fn new(node_count: usize) -> Self {
        TopologyBuilder {
            node_count,
            links: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Adds an undirected link between `a` and `b` with the given capacity.
    ///
    /// Returns the new link's id.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] if either endpoint is out of range;
    /// * [`NetError::SelfLoop`] if `a == b`;
    /// * [`NetError::DuplicateLink`] if the unordered pair was already linked.
    pub fn link(&mut self, a: NodeId, b: NodeId, capacity: Bandwidth) -> Result<LinkId, NetError> {
        if a.index() >= self.node_count {
            return Err(NetError::UnknownNode(a));
        }
        if b.index() >= self.node_count {
            return Err(NetError::UnknownNode(b));
        }
        if a == b {
            return Err(NetError::SelfLoop(a));
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if !self.seen.insert((lo, hi)) {
            return Err(NetError::DuplicateLink(lo, hi));
        }
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link {
            id,
            a: lo,
            b: hi,
            capacity,
        });
        Ok(id)
    }

    /// Adds every edge in `pairs` with the same `capacity`.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`TopologyBuilder::link`].
    pub fn links_uniform<I>(&mut self, pairs: I, capacity: Bandwidth) -> Result<(), NetError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        for (a, b) in pairs {
            self.link(NodeId::new(a), NodeId::new(b), capacity)?;
        }
        Ok(())
    }

    /// Finalises the topology. Adjacency lists are sorted by neighbour id so
    /// that all traversals are deterministic.
    pub fn build(self) -> Topology {
        let mut adjacency: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); self.node_count];
        for link in &self.links {
            adjacency[link.a.index()].push((link.b, link.id));
            adjacency[link.b.index()].push((link.a, link.id));
        }
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }
        Topology {
            links: self.links,
            adjacency,
        }
    }
}

/// An immutable network topology: a set of nodes and undirected links.
///
/// The topology is pure structure; mutable bandwidth bookkeeping lives in
/// [`LinkStateTable`](crate::LinkStateTable) so that one topology can be
/// shared by many concurrent simulation runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId::new)
    }

    /// Iterates over all links in id order.
    pub fn links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter()
    }

    /// Looks up a link by id.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownLink`] if out of range.
    pub fn link(&self, id: LinkId) -> Result<&Link, NetError> {
        self.links.get(id.index()).ok_or(NetError::UnknownLink(id))
    }

    /// Returns `true` if `n` is a valid node of this topology.
    pub fn contains_node(&self, n: NodeId) -> bool {
        n.index() < self.adjacency.len()
    }

    /// Neighbours of `n` with the connecting link, sorted by neighbour id.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this topology.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.index()]
    }

    /// Degree (number of incident links) of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this topology.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// The link joining `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        if !self.contains_node(a) {
            return None;
        }
        self.adjacency[a.index()]
            .iter()
            .find(|(nbr, _)| *nbr == b)
            .map(|(_, l)| *l)
    }

    /// Returns `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        let mut b = TopologyBuilder::new(3);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::from_mbps(10))
            .unwrap();
        b.link(NodeId::new(2), NodeId::new(1), Bandwidth::from_mbps(10))
            .unwrap();
        b.build()
    }

    #[test]
    fn builder_assigns_dense_link_ids() {
        let topo = line3();
        let ids: Vec<usize> = topo.links().map(|l| l.id().index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn links_are_stored_with_lower_endpoint_first() {
        let topo = line3();
        let l = topo.link(LinkId::new(1)).unwrap();
        assert_eq!(l.a(), NodeId::new(1));
        assert_eq!(l.b(), NodeId::new(2));
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = TopologyBuilder::new(2);
        assert_eq!(
            b.link(NodeId::new(1), NodeId::new(1), Bandwidth::ZERO),
            Err(NetError::SelfLoop(NodeId::new(1)))
        );
    }

    #[test]
    fn duplicate_links_rejected_in_either_direction() {
        let mut b = TopologyBuilder::new(2);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        assert_eq!(
            b.link(NodeId::new(1), NodeId::new(0), Bandwidth::ZERO),
            Err(NetError::DuplicateLink(NodeId::new(0), NodeId::new(1)))
        );
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut b = TopologyBuilder::new(2);
        assert_eq!(
            b.link(NodeId::new(0), NodeId::new(5), Bandwidth::ZERO),
            Err(NetError::UnknownNode(NodeId::new(5)))
        );
    }

    #[test]
    fn neighbors_sorted_by_id() {
        let mut b = TopologyBuilder::new(4);
        b.links_uniform([(1, 3), (1, 0), (1, 2)], Bandwidth::from_mbps(1))
            .unwrap();
        let topo = b.build();
        let nbrs: Vec<u32> = topo
            .neighbors(NodeId::new(1))
            .iter()
            .map(|(n, _)| n.raw())
            .collect();
        assert_eq!(nbrs, vec![0, 2, 3]);
        assert_eq!(topo.degree(NodeId::new(1)), 3);
        assert_eq!(topo.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn link_between_finds_edges_both_ways() {
        let topo = line3();
        assert_eq!(
            topo.link_between(NodeId::new(0), NodeId::new(1)),
            Some(LinkId::new(0))
        );
        assert_eq!(
            topo.link_between(NodeId::new(1), NodeId::new(0)),
            Some(LinkId::new(0))
        );
        assert_eq!(topo.link_between(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(topo.link_between(NodeId::new(9), NodeId::new(0)), None);
    }

    #[test]
    fn other_end_and_touches() {
        let topo = line3();
        let l = topo.link(LinkId::new(0)).unwrap();
        assert_eq!(l.other_end(NodeId::new(0)), Some(NodeId::new(1)));
        assert_eq!(l.other_end(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(l.other_end(NodeId::new(2)), None);
        assert!(l.touches(NodeId::new(0)));
        assert!(!l.touches(NodeId::new(2)));
    }

    #[test]
    fn connectivity() {
        assert!(line3().is_connected());
        let b = TopologyBuilder::new(3);
        assert!(!b.build().is_connected());
        assert!(TopologyBuilder::new(0).build().is_connected());
        assert!(TopologyBuilder::new(1).build().is_connected());
    }

    #[test]
    fn unknown_link_lookup_errors() {
        let topo = line3();
        assert_eq!(
            topo.link(LinkId::new(99)).unwrap_err(),
            NetError::UnknownLink(LinkId::new(99))
        );
    }
}
