//! Structural graph metrics, used by topology ablations and diagnostics.

use crate::routing::bfs_tree;
use crate::Topology;

/// Summary statistics of a topology's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected links.
    pub links: usize,
    /// Mean node degree `2·|E|/|V|`.
    pub mean_degree: f64,
    /// Smallest node degree.
    pub min_degree: usize,
    /// Largest node degree.
    pub max_degree: usize,
    /// Longest shortest path (hops); `None` when disconnected.
    pub diameter: Option<u32>,
    /// Mean shortest-path length over ordered distinct pairs; `None` when
    /// disconnected or fewer than two nodes.
    pub mean_distance: Option<f64>,
}

/// Computes structural metrics for a topology.
///
/// Runs one BFS per node, so cost is `O(V·(V+E))` — instantaneous at
/// backbone scale, and only used offline.
///
/// ```rust
/// use anycast_net::metrics::analyze;
/// use anycast_net::topologies;
///
/// let m = analyze(&topologies::mci());
/// assert_eq!(m.nodes, 19);
/// assert_eq!(m.links, 32);
/// assert_eq!(m.diameter, Some(4));
/// ```
pub fn analyze(topo: &Topology) -> TopologyMetrics {
    let nodes = topo.node_count();
    let links = topo.link_count();
    let degrees: Vec<usize> = topo.nodes().map(|n| topo.degree(n)).collect();
    let mean_degree = if nodes == 0 {
        0.0
    } else {
        2.0 * links as f64 / nodes as f64
    };
    let mut diameter: Option<u32> = Some(0);
    let mut sum_dist = 0u64;
    let mut pairs = 0u64;
    'outer: for s in topo.nodes() {
        let tree = bfs_tree(topo, s);
        for d in topo.nodes() {
            if s == d {
                continue;
            }
            match tree.distance(d) {
                Some(dist) => {
                    diameter = diameter.map(|cur| cur.max(dist));
                    sum_dist += u64::from(dist);
                    pairs += 1;
                }
                None => {
                    diameter = None;
                    break 'outer;
                }
            }
        }
    }
    TopologyMetrics {
        nodes,
        links,
        mean_degree,
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        diameter,
        mean_distance: if diameter.is_some() && pairs > 0 {
            Some(sum_dist as f64 / pairs as f64)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topologies, Bandwidth, NodeId, TopologyBuilder};

    #[test]
    fn ring_metrics_closed_form() {
        let m = analyze(&topologies::ring(6, Bandwidth::from_mbps(1)));
        assert_eq!(m.nodes, 6);
        assert_eq!(m.links, 6);
        assert_eq!(m.mean_degree, 2.0);
        assert_eq!((m.min_degree, m.max_degree), (2, 2));
        assert_eq!(m.diameter, Some(3));
        // Distances from any node on C6: 1,1,2,2,3 → mean 9/5.
        assert!((m.mean_distance.unwrap() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn star_metrics() {
        let m = analyze(&topologies::star(5, Bandwidth::from_mbps(1)));
        assert_eq!(m.diameter, Some(2));
        assert_eq!(m.min_degree, 1);
        assert_eq!(m.max_degree, 4);
    }

    #[test]
    fn disconnected_has_no_diameter() {
        let mut b = TopologyBuilder::new(4);
        b.link(NodeId::new(0), NodeId::new(1), Bandwidth::ZERO)
            .unwrap();
        let m = analyze(&b.build());
        assert_eq!(m.diameter, None);
        assert_eq!(m.mean_distance, None);
    }

    #[test]
    fn mci_metrics_match_design_doc() {
        let m = analyze(&topologies::mci());
        assert_eq!(m.nodes, 19);
        assert_eq!(m.links, 32);
        assert!((m.mean_degree - 64.0 / 19.0).abs() < 1e-12);
        assert_eq!(m.diameter, Some(4));
        assert!(m.mean_distance.unwrap() < 3.0);
    }

    #[test]
    fn singleton_topology() {
        let m = analyze(&TopologyBuilder::new(1).build());
        assert_eq!(m.diameter, Some(0));
        assert_eq!(m.mean_distance, None);
        assert_eq!(m.mean_degree, 0.0);
    }
}
